//! Characterize your *own* workload: write a kernel against the tinyisa
//! assembler, run it on the tracing VM, and get the same 47-metric
//! characterization the 122 built-in benchmarks get.
//!
//! The kernel below is a toy histogram builder: it scans a byte buffer and
//! increments counters — a load/store/branch mix with a small working set.
//!
//! Run with: `cargo run --release --example custom_workload`

use mica_suite::isa::regs::*;
use mica_suite::mica::metrics;
use mica_suite::prelude::*;

fn main() {
    // --- write the kernel ---
    let mut a = Asm::new();
    a.li(S0, 0x10_0000); // input buffer
    a.li(S1, 0x20_0000); // 256 counters (u64)
    a.li(S2, 65_536); // buffer length
    let outer = a.label();
    a.bind(outer);
    let loop_ = a.label();
    a.li(T0, 0);
    a.bind(loop_);
    a.add(T1, S0, T0);
    a.ld1(T2, T1, 0); // byte
    a.slli(T2, T2, 3);
    a.add(T2, S1, T2);
    a.ld8(T3, T2, 0); // counter
    a.addi(T3, T3, 1);
    a.st8(T3, T2, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S2, loop_);
    a.jmp(outer); // steady-state loop; fuel decides when to stop

    // --- set up data and run under the characterization suite ---
    let mut vm = Vm::new(a.assemble().expect("kernel assembles"));
    for i in 0..65_536u64 {
        // Skewed byte distribution: mostly small values.
        vm.mem_mut().write_u8(0x10_0000 + i, ((i * i) % 61) as u8);
    }
    let mut suite = CharacterizationSuite::new();
    vm.run(&mut suite, 500_000).expect("kernel runs");
    let v = suite.finish();

    println!("histogram kernel, {} instructions:", suite.total_instructions());
    println!("  loads:              {:5.1}%", 100.0 * v.get(metrics::PCT_LOADS));
    println!("  stores:             {:5.1}%", 100.0 * v.get(metrics::PCT_STORES));
    println!("  control transfers:  {:5.1}%", 100.0 * v.get(metrics::PCT_CONTROL));
    println!("  ILP (256-window):   {:5.2}", v.get(metrics::ILP_256));
    println!("  D-WSS (32B blocks): {:5.0}", v.get(metrics::D_WSS_BLOCKS));
    println!("  GAg predictability: {:5.3}", v.get(metrics::PPM_GAG));

    // And on the simulated hardware:
    let mut vm2 = Vm::new({
        // Rebuild: the first VM has consumed its state.
        let mut a = Asm::new();
        a.li(T0, 0);
        let l = a.label();
        a.bind(l);
        a.addi(T0, T0, 1);
        a.jmp(l);
        a.assemble().expect("assembles")
    });
    let mut hpc = HpcSimulator::new();
    vm2.run(&mut hpc, 100_000).expect("runs");
    println!(
        "\n(for comparison, an empty spin loop reaches EV67 IPC {:.2})",
        hpc.finish().ipc_ev67
    );
}

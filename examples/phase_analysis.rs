//! Phase analysis: compute a MICA vector per execution interval and locate
//! phase changes microarchitecture-independently — the phase-behavior idea
//! of the SimPoint line of work the paper builds on, applied with MICA
//! metrics instead of code signatures.
//!
//! The FFT benchmark is a natural subject: its butterfly stages are
//! FP-dense with strided access, while its bit-reversal pass is
//! integer/branch work with scattered accesses.
//!
//! Run with: `cargo run --release --example phase_analysis`

use mica_suite::mica::{metrics, PhaseProfiler};
use mica_suite::prelude::*;

fn main() {
    let table = benchmark_table();
    let spec = table.iter().find(|b| b.program == "FFT").expect("FFT in table");
    let mut vm = spec.build_vm().expect("builds");

    let interval = 50_000u64;
    let mut profiler = PhaseProfiler::new(interval);
    vm.run(&mut profiler, 1_200_000).expect("runs");
    let phases = profiler.into_phases();
    let transitions = PhaseProfiler::transition_profile(&phases);

    println!("{} intervals of {} instructions from {}\n", phases.len(), interval, spec.name());
    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>10}",
        "ivl", "pct_fp", "pct_ld", "pct_br", "transition"
    );
    for (i, p) in phases.iter().enumerate() {
        let t = if i == 0 { String::from("-") } else { format!("{:.2}", transitions[i - 1]) };
        println!(
            "{i:>4} {:>8.3} {:>8.3} {:>8.3} {t:>10}",
            p.get(metrics::PCT_FP),
            p.get(metrics::PCT_LOADS),
            p.get(metrics::PCT_CONTROL),
        );
    }

    // Locate the strongest phase change.
    if let Some((at, peak)) = transitions
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
    {
        println!(
            "\nstrongest phase change between intervals {at} and {}: distance {peak:.2}",
            at + 1
        );
        println!(
            "(the FFT alternates butterfly passes — high pct_fp — with its\n\
             integer bit-reversal permutation: visible without any simulator)"
        );
    }
}

//! Compare a handful of benchmarks the way the paper compares suites:
//! z-score the characteristics, compute pairwise Euclidean distances, and
//! report who is similar to whom — in both workload spaces, exposing the
//! hardware-counter pitfall on a small scale.
//!
//! Run with: `cargo run --release --example compare_benchmarks`

use mica_suite::prelude::*;
use mica_suite::stats::pairwise_distances;

fn main() {
    let programs = ["CRC32", "sha", "mcf", "gzip", "FFT", "swim"];
    let table = benchmark_table();
    let specs: Vec<_> = programs
        .iter()
        .map(|p| table.iter().find(|b| &b.program == p).expect("benchmark exists").clone())
        .collect();

    let budget = 150_000;
    println!("profiling {} benchmarks ({budget} instructions each)...", specs.len());
    let mica_rows: Vec<Vec<f64>> = specs
        .iter()
        .map(|s| characterize(s, budget).expect("runs").into_values())
        .collect();
    let hpc_rows: Vec<Vec<f64>> = specs
        .iter()
        .map(|s| profile_hpc(s, budget).expect("runs").counter_vector())
        .collect();

    let mica = pairwise_distances(&zscore_normalize(&DataSet::from_rows(mica_rows)));
    let hpc = pairwise_distances(&zscore_normalize(&DataSet::from_rows(hpc_rows)));

    println!("\npairwise distances (microarchitecture-independent / hardware counters):");
    print!("{:>8}", "");
    for p in &programs {
        print!("{p:>14}");
    }
    println!();
    for (i, pi) in programs.iter().enumerate() {
        print!("{pi:>8}");
        for (j, _) in programs.iter().enumerate() {
            if i == j {
                print!("{:>14}", "-");
            } else {
                print!("{:>14}", format!("{:.1}/{:.1}", mica.get(i, j), hpc.get(i, j)));
            }
        }
        println!();
    }

    // Most and least similar pair by inherent behavior.
    let (mut best, mut worst) = ((0, 1, f64::INFINITY), (0, 1, 0.0f64));
    for (i, j, d) in mica.iter_pairs() {
        if d < best.2 {
            best = (i, j, d);
        }
        if d > worst.2 {
            worst = (i, j, d);
        }
    }
    println!(
        "\nmost similar inherent behavior:  {} and {} (distance {:.2})",
        programs[best.0], programs[best.1], best.2
    );
    println!(
        "most dissimilar inherent behavior: {} and {} (distance {:.2})",
        programs[worst.0], programs[worst.1], worst.2
    );
}

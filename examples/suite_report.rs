//! Section VI at the suite level: load (or collect) the full 122-benchmark
//! profile cache, cluster hierarchically in the 8 key dimensions, and
//! report how each emerging suite relates to SPEC CPU2000 — the question
//! the paper set out to answer.
//!
//! Run with: `cargo run --release --example suite_report`
//! (respects `MICA_SCALE` / `MICA_RESULTS_DIR`)

use mica_suite::experiments::analysis::mica_dataset;
use mica_suite::experiments::profile::load_or_profile_all;
use mica_suite::experiments::{results_dir, scale};
use mica_suite::stats::{
    hierarchical_cluster, pairwise_distances, select_features_k, silhouette, zscore_normalize,
    GaConfig,
};

fn main() {
    let outcome = load_or_profile_all(&results_dir().join("profiles.json"), scale())
        .expect("profiling succeeds");
    outcome.announce();
    let set = outcome.set;
    let mica = mica_dataset(&set);
    let ga = select_features_k(&mica, 8, GaConfig::default());
    let z = zscore_normalize(&mica).select_columns(&ga.selected);
    let d = pairwise_distances(&z);

    // Hierarchical clustering, cut at the same granularity a user would
    // choose for suite subsetting.
    let dend = hierarchical_cluster(&d);
    let k = 16;
    let labels = dend.cut(k);
    println!(
        "hierarchical (average-linkage) clustering at K = {k}: silhouette {:.3}",
        silhouette(&d, &labels)
    );

    // Per-suite: how close is each benchmark to its nearest SPEC benchmark?
    let spec_idx: Vec<usize> = set
        .records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.suite == "SPEC2000")
        .map(|(i, _)| i)
        .collect();
    println!("\nmean distance to the nearest SPEC CPU2000 benchmark, per suite:");
    let suites = ["BioInfoMark", "BioMetricsWorkload", "CommBench", "MediaBench", "MiBench"];
    let mut ranked: Vec<(f64, &str)> = suites
        .iter()
        .map(|&suite| {
            let members: Vec<usize> = set
                .records
                .iter()
                .enumerate()
                .filter(|(_, r)| r.suite == suite)
                .map(|(i, _)| i)
                .collect();
            let mean = members
                .iter()
                .map(|&i| {
                    spec_idx.iter().map(|&j| d.get(i, j)).fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / members.len() as f64;
            (mean, suite)
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    for (mean, suite) in &ranked {
        println!("  {suite:<20} {mean:>6.2}");
    }
    println!(
        "\n(paper's conclusion: BioInfoMark / BioMetricsWorkload / CommBench are the\n\
         dissimilar ones; MediaBench and MiBench mostly overlap SPEC CPU2000)"
    );

    // Which benchmarks share no cluster with any SPEC benchmark?
    let spec_clusters: std::collections::BTreeSet<usize> =
        spec_idx.iter().map(|&i| labels[i]).collect();
    println!("\nbenchmarks in clusters containing no SPEC CPU2000 member:");
    for (i, r) in set.records.iter().enumerate() {
        if r.suite != "SPEC2000" && !spec_clusters.contains(&labels[i]) {
            println!("  {}", r.name);
        }
    }
}

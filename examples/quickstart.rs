//! Quickstart: characterize one benchmark with the 47 microarchitecture-
//! independent metrics and its simulated hardware counters.
//!
//! Run with: `cargo run --release --example quickstart`

use mica_suite::prelude::*;

fn main() {
    // Pick a benchmark out of the 122-instance table.
    let table = benchmark_table();
    let spec = table.iter().find(|b| b.program == "dijkstra").expect("dijkstra is in the table");
    println!("benchmark: {}", spec.name());
    println!("paper instruction count: {} M", spec.paper_icount_millions);

    // Microarchitecture-independent characterization (one pass over the
    // dynamic instruction stream).
    let budget = 200_000;
    let vector = characterize(spec, budget).expect("benchmark runs");
    println!("\nall 47 characteristics:\n{vector}");

    // Microarchitecture-dependent profile on the simulated EV56/EV67.
    let hpc = profile_hpc(spec, budget).expect("benchmark runs");
    println!("simulated hardware counters:");
    println!("  IPC (EV56, in-order dual-issue):  {:.3}", hpc.ipc_ev56);
    println!("  IPC (EV67, out-of-order 4-wide):  {:.3}", hpc.ipc_ev67);
    println!("  branch misprediction rate:        {:.4}", hpc.branch_mispredict_rate);
    println!("  L1D / L1I / L2 miss rates:        {:.4} / {:.4} / {:.4}",
        hpc.l1d_miss_rate, hpc.l1i_miss_rate, hpc.l2_miss_rate);
    println!("  D-TLB miss rate:                  {:.4}", hpc.dtlb_miss_rate);
}

//! The extended characteristics beyond Table II: branch-behavior detail
//! and the memory reuse-distance distribution (the categories the authors'
//! released MICA tool added). Shows how they separate benchmarks the base
//! working-set metrics describe only coarsely.
//!
//! Run with: `cargo run --release --example extended_metrics`

use mica_suite::mica::{ExtendedSuite, EXTENDED_METRIC_NAMES};
use mica_suite::prelude::*;

fn main() {
    let table = benchmark_table();
    let programs = ["sha", "mcf", "swim", "gzip", "dijkstra"];

    println!("{:<36}", "extended characteristic");
    for p in &programs {
        print!("{p:>10}");
    }
    println!();

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for p in &programs {
        let spec = table.iter().find(|b| &b.program == p).expect("exists");
        let mut vm = spec.build_vm().expect("builds");
        let mut suite = ExtendedSuite::new();
        vm.run(&mut suite, 150_000).expect("runs");
        rows.push(suite.finish_extended().to_vec());
    }
    for (m, name) in EXTENDED_METRIC_NAMES.iter().enumerate() {
        print!("{name:<36}");
        for r in &rows {
            print!("{:>10.3}", r[m]);
        }
        println!();
    }

    println!(
        "\nReading the rows: sha's tiny state reuses almost immediately and is\n\
         nearly all-warm (cold fraction ~0.03), while mcf's pointer chase\n\
         touches a fresh 16 MiB node stream — roughly every fifth access is a\n\
         block never seen before (cold fraction ~0.22), which no cache size\n\
         fixes. The branch rows split them on a different axis: swim's long\n\
         vectorizable loops give huge basic blocks and near-zero transition\n\
         rate; dijkstra's scan is short-blocked and flicker-prone. All of it\n\
         is measured without choosing any particular cache or predictor."
    );
}

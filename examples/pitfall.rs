//! The paper's core argument in miniature: find two benchmarks whose
//! *hardware performance counters* look alike while their *inherent
//! behavior* differs — the false positives of Table III.
//!
//! Run with: `cargo run --release --example pitfall`

use mica_suite::prelude::*;
use mica_suite::stats::pairwise_distances;

fn main() {
    // A spread of programs across suites.
    let programs =
        ["bzip2", "blast", "mcf", "gcc", "sha", "dijkstra", "qsort", "CRC32", "patricia", "ispell"];
    let table = benchmark_table();
    let specs: Vec<_> = programs
        .iter()
        .map(|p| table.iter().find(|b| &b.program == p).expect("exists").clone())
        .collect();

    println!("profiling {} benchmarks in both workload spaces...", specs.len());
    let budget = 150_000;
    let mica_rows: Vec<Vec<f64>> =
        specs.iter().map(|s| characterize(s, budget).expect("runs").into_values()).collect();
    let hpc_rows: Vec<Vec<f64>> =
        specs.iter().map(|s| profile_hpc(s, budget).expect("runs").counter_vector()).collect();

    let mica = pairwise_distances(&zscore_normalize(&DataSet::from_rows(mica_rows)));
    let hpc = pairwise_distances(&zscore_normalize(&DataSet::from_rows(hpc_rows)));
    let r = pearson(mica.values(), hpc.values());
    println!("distance correlation between the two spaces: {r:.3}");

    // Rank pairs by "pitfall score": small counter distance, large inherent
    // distance.
    let mut pairs: Vec<(usize, usize, f64, f64)> =
        mica.iter_pairs().map(|(i, j, m)| (i, j, m, hpc.get(i, j))).collect();
    pairs.sort_by(|a, b| {
        let score_a = a.2 / (a.3 + 0.1);
        let score_b = b.2 / (b.3 + 0.1);
        score_b.partial_cmp(&score_a).expect("finite")
    });

    println!("\ntop deceptive pairs (similar counters, dissimilar programs):");
    println!("{:<22} {:>12} {:>12}", "pair", "HPC dist", "MICA dist");
    for &(i, j, m, h) in pairs.iter().take(3) {
        println!("{:<22} {h:>12.2} {m:>12.2}", format!("{} vs {}", programs[i], programs[j]));
    }
    println!("\ntop honestly-similar pairs (close in both spaces):");
    pairs.sort_by(|a, b| (a.2 + a.3).partial_cmp(&(b.2 + b.3)).expect("finite"));
    for &(i, j, m, h) in pairs.iter().take(3) {
        println!("{:<22} {h:>12.2} {m:>12.2}", format!("{} vs {}", programs[i], programs[j]));
    }
    println!(
        "\nConclusion (the paper's): judging benchmark similarity from hardware\n\
         counters alone can mislead — characterize inherent behavior instead."
    );
}

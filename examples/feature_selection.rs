//! Reduce the 47-metric space to a handful of key characteristics, the
//! paper's Section V: correlation elimination vs the genetic algorithm,
//! evaluated by how well the reduced space preserves pairwise benchmark
//! distances.
//!
//! Run with: `cargo run --release --example feature_selection`

use mica_suite::mica::METRICS;
use mica_suite::prelude::*;
use mica_suite::stats::{pairwise_distances, select_features_k};

fn main() {
    // Profile a representative slice of the table (every 4th benchmark)
    // to keep the example quick.
    let table = benchmark_table();
    let specs: Vec<_> = table.iter().step_by(4).collect();
    println!("profiling {} benchmarks...", specs.len());
    let rows: Vec<Vec<f64>> = specs
        .iter()
        .map(|s| characterize(s, 100_000).expect("runs").into_values())
        .collect();
    let ds = DataSet::from_rows(rows);
    let z = zscore_normalize(&ds);
    let full = pairwise_distances(&z);

    // Correlation elimination down to 8 metrics.
    let ce = correlation_elimination(&ds, 8);
    let ce_dist = pairwise_distances(&z.select_columns(&ce));
    let ce_rho = pearson(full.values(), ce_dist.values());

    // Genetic algorithm, fixed to 8 metrics.
    let ga = select_features_k(&ds, 8, GaConfig { generations: 120, ..GaConfig::default() });

    println!("\ncorrelation elimination kept (rho = {ce_rho:.3}):");
    for c in &ce {
        println!("  {:>2}. {}", METRICS[*c].number, METRICS[*c].name);
    }
    println!("\ngenetic algorithm kept (rho = {:.3}):", ga.rho);
    for c in &ga.selected {
        println!("  {:>2}. {}", METRICS[*c].number, METRICS[*c].name);
    }
    println!(
        "\nGA {} CE at preserving the workload-space geometry ({:.3} vs {ce_rho:.3})",
        if ga.rho > ce_rho { "beats" } else { "does not beat" },
        ga.rho
    );
    println!(
        "speedup implication: measuring 8 instead of 47 characteristics is the\n\
         paper's ~3x profiling-time reduction."
    );
}

//! Facade crate for the MICA reproduction suite.
//!
//! Re-exports the public API of every crate in the workspace so examples and
//! downstream users can depend on a single package:
//!
//! - [`isa`] — the tinyisa execution substrate (assembler, VM, trace events).
//! - [`workloads`] — the 122 benchmark instances from 6 suites.
//! - [`mica`] — the 47 microarchitecture-independent characteristics.
//! - [`uarch`] — simulated hardware-performance-counter profiling.
//! - [`stats`] — normalization, distances, feature selection, clustering.
//! - [`experiments`] — the per-table/per-figure regeneration pipelines.
//!
//! # Quickstart
//!
//! ```
//! use mica_suite::prelude::*;
//!
//! // Pick one benchmark out of the 122 and characterize it.
//! let spec = benchmark_table()
//!     .iter()
//!     .find(|b| b.program == "bitcount")
//!     .unwrap()
//!     .clone();
//! let vector = characterize(&spec, 50_000).expect("benchmark runs");
//! assert_eq!(vector.values().len(), 47);
//! ```

pub use mica_core as mica;
pub use mica_experiments as experiments;
pub use mica_stats as stats;
pub use mica_workloads as workloads;
pub use tinyisa as isa;
pub use uarch_sim as uarch;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use mica_core::{CharacterizationSuite, MetricId, MicaVector, METRICS, NUM_METRICS};
    pub use mica_experiments::profile::{characterize, profile_hpc, ProfileError};
    pub use mica_stats::{
        correlation_elimination, kmeans, pearson, zscore_normalize, DataSet, GaConfig,
        GeneticSelector,
    };
    pub use mica_workloads::{benchmark_table, BenchmarkSpec, Suite};
    pub use tinyisa::{Asm, DynInst, InstClass, TraceSink, Vm};
    pub use uarch_sim::{HpcProfile, HpcSimulator};
}

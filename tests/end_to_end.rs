//! End-to-end integration: benchmarks from the table run through both
//! characterizations, and the results obey cross-crate invariants.

use mica_suite::prelude::*;

fn spec(program: &str) -> BenchmarkSpec {
    benchmark_table().into_iter().find(|b| b.program == program).expect("benchmark exists")
}

#[test]
fn full_pipeline_for_representative_benchmarks() {
    // One representative per suite.
    for program in ["blast", "csu", "rtr", "epic", "qsort", "mcf"] {
        let s = benchmark_table()
            .into_iter()
            .find(|b| b.program == program)
            .unwrap_or_else(|| panic!("{program} in table"));
        let v = characterize(&s, 60_000).unwrap_or_else(|e| panic!("{program}: {e}"));
        let p = profile_hpc(&s, 60_000).unwrap_or_else(|e| panic!("{program}: {e}"));

        // Mix fractions sum to 1 in both characterizations and agree.
        let mica_mix: f64 = v.values()[..6].iter().sum();
        assert!((mica_mix - 1.0).abs() < 1e-9, "{program}: mica mix sums to {mica_mix}");
        let hpc_mix: f64 = p.mix.iter().sum();
        assert!((hpc_mix - 1.0).abs() < 1e-9, "{program}");
        for (a, b) in v.values()[..6].iter().zip(&p.mix) {
            assert!((a - b).abs() < 1e-12, "{program}: mix disagrees between sinks");
        }

        // IPC sanity: idealized ILP must dominate the real machines.
        let ilp256 = v.values()[9];
        assert!(ilp256 >= p.ipc_ev67 - 1e-9, "{program}: ideal ILP {ilp256} < ev67 {}", p.ipc_ev67);
        assert!(p.ipc_ev56 <= 2.0 + 1e-9 && p.ipc_ev67 <= 4.0 + 1e-9, "{program}");

        // All rates in range.
        for r in [
            p.branch_mispredict_rate,
            p.l1d_miss_rate,
            p.l1i_miss_rate,
            p.l2_miss_rate,
            p.dtlb_miss_rate,
        ] {
            assert!((0.0..=1.0).contains(&r), "{program}: rate {r}");
        }
    }
}

#[test]
fn characterization_is_deterministic() {
    let s = spec("sha");
    let a = characterize(&s, 40_000).unwrap();
    let b = characterize(&s, 40_000).unwrap();
    assert_eq!(a, b);
}

#[test]
fn mcf_has_larger_data_working_set_than_sha() {
    use mica_suite::mica::metrics;
    let mcf = characterize(&spec("mcf"), 80_000).unwrap();
    let sha = characterize(&spec("sha"), 80_000).unwrap();
    assert!(
        mcf.get(metrics::D_WSS_PAGES) > 10.0 * sha.get(metrics::D_WSS_PAGES),
        "mcf pages {} vs sha pages {}",
        mcf.get(metrics::D_WSS_PAGES),
        sha.get(metrics::D_WSS_PAGES)
    );
}

#[test]
fn pointer_chasing_tanks_real_ipc_but_not_mix() {
    let mcf = profile_hpc(&spec("mcf"), 80_000).unwrap();
    let sha = profile_hpc(&spec("sha"), 80_000).unwrap();
    assert!(mcf.ipc_ev67 < sha.ipc_ev67, "dependent misses hurt the OoO machine");
    assert!(mcf.l1d_miss_rate > sha.l1d_miss_rate + 0.05);
}

#[test]
fn fp_benchmarks_have_fp_work_and_int_benchmarks_do_not() {
    use mica_suite::mica::metrics;
    for fp_prog in ["swim", "wupwise", "FFT"] {
        let v = characterize(&spec(fp_prog), 50_000).unwrap();
        assert!(v.get(metrics::PCT_FP) > 0.1, "{fp_prog}: {}", v.get(metrics::PCT_FP));
    }
    for int_prog in ["bzip2", "crafty", "CRC32"] {
        let v = characterize(&spec(int_prog), 50_000).unwrap();
        assert!(v.get(metrics::PCT_FP) < 0.01, "{int_prog}: {}", v.get(metrics::PCT_FP));
    }
}

#[test]
fn sibling_inputs_are_closer_than_strangers() {
    use mica_suite::stats::pairwise_distances;
    // bzip2's three inputs should sit closer to each other than to mcf.
    let table = benchmark_table();
    let mut rows = Vec::new();
    let mut names = Vec::new();
    for b in table.iter().filter(|b| b.program == "bzip2" || b.program == "mcf") {
        rows.push(characterize(b, 60_000).unwrap().into_values());
        names.push(b.name());
    }
    assert_eq!(rows.len(), 4);
    let d = pairwise_distances(&zscore_normalize(&DataSet::from_rows(rows)));
    let mcf_idx = names.iter().position(|n| n.contains("mcf")).unwrap();
    let bzip: Vec<usize> = (0..4).filter(|&i| i != mcf_idx).collect();
    let intra = d.get(bzip[0], bzip[1]).max(d.get(bzip[0], bzip[2])).max(d.get(bzip[1], bzip[2]));
    let inter = bzip.iter().map(|&i| d.get(i, mcf_idx)).fold(f64::INFINITY, f64::min);
    assert!(intra < inter, "bzip2 inputs (max intra {intra:.2}) vs mcf (min inter {inter:.2})");
}

#[test]
fn recorded_trace_replays_to_identical_characterization() {
    use mica_suite::isa::TraceRecorder;
    let s = spec("CRC32");

    // Live analysis.
    let live = characterize(&s, 30_000).unwrap();

    // Record once, replay into a fresh suite — the "instrument once,
    // analyze many" workflow; also exercise the binary codec.
    let mut vm = s.build_vm().unwrap();
    let mut rec = TraceRecorder::new();
    vm.run(&mut rec, 30_000).unwrap();
    let trace = rec.into_trace();
    let decoded = mica_suite::isa::Trace::from_bytes(&trace.to_bytes()).unwrap();

    let mut suite = CharacterizationSuite::new();
    decoded.replay(&mut suite);
    assert_eq!(suite.finish(), live, "replayed trace must characterize identically");

    let mut hpc = HpcSimulator::new();
    decoded.replay(&mut hpc);
    let via_trace = hpc.finish();
    let direct = profile_hpc(&s, 30_000).unwrap();
    assert_eq!(via_trace, direct, "machine simulation from the trace matches live");
}

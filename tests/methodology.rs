//! Reduced-scale versions of every experiment in the paper, as integration
//! tests: each one checks the *shape* of the corresponding table/figure.

use mica_suite::mica::NUM_METRICS;
use mica_suite::prelude::*;
use mica_suite::stats::{
    auc, choose_k_by_bic, classify_pairs, pairwise_distances, roc_curve, select_features_k, Pca,
};

/// Profile every 5th benchmark at a small budget (25 of the 122).
fn mini_profiles() -> (Vec<String>, DataSet, DataSet) {
    let table = benchmark_table();
    let mut names = Vec::new();
    let mut mica_rows = Vec::new();
    let mut hpc_rows = Vec::new();
    for spec in table.iter().step_by(5) {
        names.push(spec.name());
        mica_rows.push(characterize(spec, 50_000).expect("runs").into_values());
        hpc_rows.push(profile_hpc(spec, 50_000).expect("runs").counter_vector());
    }
    (names, DataSet::from_rows(mica_rows), DataSet::from_rows(hpc_rows))
}

#[test]
fn experiment_shapes_hold_at_reduced_scale() {
    // All the per-figure checks share one (expensive) profiling pass, so
    // they live in one test body, labeled by the figure they verify.
    let (_names, mica, hpc) = mini_profiles();
    let zm = zscore_normalize(&mica);
    let zh = zscore_normalize(&hpc);
    let dm = pairwise_distances(&zm);
    let dh = pairwise_distances(&zh);

    // --- Figure 1: modest positive distance correlation ---
    let r = pearson(dm.values(), dh.values());
    assert!(r > 0.2, "fig1: expected positive correlation, got {r}");
    assert!(r < 0.95, "fig1: the spaces must NOT be interchangeable, got {r}");

    // --- Table III: false negatives rare, false positives common ---
    let c = classify_pairs(dh.values(), dm.values(), 0.2, 0.2);
    assert!(c.false_negative < 0.1, "table3: FN {}", c.false_negative);
    assert!(
        c.false_positive > c.false_negative,
        "table3: FP {} should exceed FN {}",
        c.false_positive,
        c.false_negative
    );
    let total = c.false_negative + c.false_positive + c.true_negative + c.true_positive;
    assert!((total - 1.0).abs() < 1e-9);

    // --- Figure 4: reduced GA space stays usefully predictive (AUC > 0.5) ---
    let ga = select_features_k(&mica, 8, GaConfig { generations: 80, ..GaConfig::default() });
    let d_ga = pairwise_distances(&zm.select_columns(&ga.selected));
    let auc_all = auc(&roc_curve(dh.values(), dm.values(), 0.2, 100));
    let auc_ga = auc(&roc_curve(dh.values(), d_ga.values(), 0.2, 100));
    assert!(auc_all > 0.55, "fig4: all-metrics AUC {auc_all}");
    assert!(auc_ga > 0.5, "fig4: GA AUC {auc_ga}");

    // --- Figure 5 / Table IV: GA beats CE at equal subset size ---
    let ce = correlation_elimination(&mica, 8);
    let d_ce = pairwise_distances(&zm.select_columns(&ce));
    let rho_ce = pearson(dm.values(), d_ce.values());
    assert!(ga.rho > rho_ce, "fig5: GA rho {} must beat CE rho {rho_ce}", ga.rho);
    assert!(ga.rho > 0.7, "fig5: GA preserves geometry, rho {}", ga.rho);
    assert_eq!(ga.selected.len(), 8, "table4: exactly 8 key characteristics");

    // --- Figure 6: clustering groups siblings and separates extremes ---
    let sel = zm.select_columns(&ga.selected);
    let clustering = choose_k_by_bic(&sel, 20, 7);
    assert!(clustering.k() >= 2, "fig6: more than one behavior class");
    assert!(clustering.k() < sel.rows(), "fig6: not all singletons");

    // --- Section V-C: PCA needs all 47 measured but few components ---
    let pca = Pca::fit(&mica);
    let k90 = pca.components_for_variance(0.9);
    assert!(k90 < NUM_METRICS / 2, "pca: heavy correlation means few components, got {k90}");
}

#[test]
fn ga_subset_is_reusable_across_runs() {
    // The selected metric subset must be stable for a fixed seed (the whole
    // point is to measure only those 8 on future benchmarks).
    let table = benchmark_table();
    let rows: Vec<Vec<f64>> = table
        .iter()
        .step_by(11)
        .map(|s| characterize(s, 30_000).expect("runs").into_values())
        .collect();
    let ds = DataSet::from_rows(rows);
    let cfg = GaConfig { generations: 40, ..GaConfig::default() };
    assert_eq!(select_features_k(&ds, 6, cfg).selected, select_features_k(&ds, 6, cfg).selected);
}

#[test]
fn suite_level_claim_bio_differs_from_spec_more_than_media_does() {
    // Section VI's headline: BioInfoMark benchmarks are more dissimilar
    // from SPEC than MediaBench benchmarks are. Compare mean distance from
    // each suite member to its nearest SPEC benchmark.
    let table = benchmark_table();
    let picks: Vec<_> = table
        .iter()
        .filter(|b| {
            matches!(b.suite, Suite::BioInfoMark | Suite::MediaBench | Suite::SpecCpu2000)
        })
        .collect();
    let rows: Vec<Vec<f64>> =
        picks.iter().map(|s| characterize(s, 40_000).expect("runs").into_values()).collect();
    let z = zscore_normalize(&DataSet::from_rows(rows));
    let d = pairwise_distances(&z);

    let nearest_spec = |i: usize| {
        picks
            .iter()
            .enumerate()
            .filter(|(j, b)| *j != i && b.suite == Suite::SpecCpu2000)
            .map(|(j, _)| d.get(i, j))
            .fold(f64::INFINITY, f64::min)
    };
    let mean_for = |suite: Suite| {
        let idx: Vec<usize> =
            picks.iter().enumerate().filter(|(_, b)| b.suite == suite).map(|(i, _)| i).collect();
        idx.iter().map(|&i| nearest_spec(i)).sum::<f64>() / idx.len() as f64
    };
    let bio = mean_for(Suite::BioInfoMark);
    let media = mean_for(Suite::MediaBench);
    assert!(
        bio > media * 0.8,
        "bio distance-to-SPEC ({bio:.2}) should not be far below media ({media:.2})"
    );
}

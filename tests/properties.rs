//! Property-based tests spanning the crates: randomly generated tinyisa
//! programs and randomly generated data sets must uphold the analyzers' and
//! the statistics toolkit's invariants.

use mica_suite::isa::{Asm, Reg, RunExit, Vm};
use mica_suite::mica::{CharacterizationSuite, NUM_METRICS};
use mica_suite::prelude::*;
use mica_suite::stats::pairwise_distances;
use mica_suite::uarch::HpcSimulator;
use proptest::prelude::*;

/// A tiny instruction menu for random straight-line program generation.
#[derive(Debug, Clone)]
enum RandOp {
    Alu { d: u8, a: u8, b: u8, which: u8 },
    Imm { d: u8, a: u8, imm: i32 },
    Mul { d: u8, a: u8, b: u8 },
    Fp { d: u8, a: u8, b: u8, which: u8 },
    Load { d: u8, base_page: u8, off: u16 },
    Store { s: u8, base_page: u8, off: u16 },
}

fn rand_op() -> impl Strategy<Value = RandOp> {
    prop_oneof![
        (1u8..30, 0u8..30, 0u8..30, 0u8..6).prop_map(|(d, a, b, which)| RandOp::Alu { d, a, b, which }),
        (1u8..30, 0u8..30, -1000i32..1000).prop_map(|(d, a, imm)| RandOp::Imm { d, a, imm }),
        (1u8..30, 0u8..30, 0u8..30).prop_map(|(d, a, b)| RandOp::Mul { d, a, b }),
        (0u8..12, 0u8..12, 0u8..12, 0u8..4).prop_map(|(d, a, b, which)| RandOp::Fp { d, a, b, which }),
        (1u8..30, 0u8..8, 0u16..4000).prop_map(|(d, base_page, off)| RandOp::Load { d, base_page, off }),
        (0u8..30, 0u8..8, 0u16..4000).prop_map(|(s, base_page, off)| RandOp::Store { s, base_page, off }),
    ]
}

/// Assemble a random body inside a counted loop so every program runs long
/// enough to exercise the analyzers yet always terminates by fuel.
fn build_program(ops: &[RandOp]) -> Vm {
    let mut a = Asm::new();
    // Base registers x24..x31 point at distinct pages.
    for p in 0..8u8 {
        a.li(Reg(24 - p % 8), 0x20_0000 + (p as i64) * 4096);
    }
    let outer = a.label();
    a.bind(outer);
    for op in ops {
        match *op {
            RandOp::Alu { d, a: ra, b, which } => {
                let (rd, r1, r2) = (Reg(d % 16 + 1), Reg(ra % 16), Reg(b % 16));
                match which {
                    0 => a.add(rd, r1, r2),
                    1 => a.sub(rd, r1, r2),
                    2 => a.xor(rd, r1, r2),
                    3 => a.and(rd, r1, r2),
                    4 => a.or(rd, r1, r2),
                    _ => a.slt(rd, r1, r2),
                }
            }
            RandOp::Imm { d, a: ra, imm } => a.addi(Reg(d % 16 + 1), Reg(ra % 16), imm as i64),
            RandOp::Mul { d, a: ra, b } => a.mul(Reg(d % 16 + 1), Reg(ra % 16), Reg(b % 16)),
            RandOp::Fp { d, a: fa, b, which } => {
                use mica_suite::isa::FReg;
                let (fd, f1, f2) = (FReg(d % 12), FReg(fa % 12), FReg(b % 12));
                match which {
                    0 => a.fadd(fd, f1, f2),
                    1 => a.fsub(fd, f1, f2),
                    2 => a.fmul(fd, f1, f2),
                    _ => a.fmax(fd, f1, f2),
                }
            }
            RandOp::Load { d, base_page, off } => {
                a.ld8(Reg(d % 16 + 1), Reg(24 - base_page % 8), (off & !7) as i64)
            }
            RandOp::Store { s, base_page, off } => {
                a.st8(Reg(s % 16), Reg(24 - base_page % 8), (off & !7) as i64)
            }
        }
    }
    // Loop forever; the test controls duration with fuel.
    a.jmp(outer);
    Vm::new(a.assemble().expect("generated program assembles"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_produce_valid_characterizations(
        ops in proptest::collection::vec(rand_op(), 4..60),
        fuel in 2_000u64..20_000,
    ) {
        let mut vm = build_program(&ops);
        let mut suite = CharacterizationSuite::new();
        let exit = vm.run(&mut suite, fuel).expect("random straight-line code cannot fault");
        prop_assert_eq!(exit, RunExit::FuelExhausted);
        let v = suite.finish();

        // 47 finite values.
        prop_assert_eq!(v.values().len(), NUM_METRICS);
        for &x in v.values() {
            prop_assert!(x.is_finite() && x >= 0.0);
        }
        // Mix sums to 1.
        let mix: f64 = v.values()[..6].iter().sum();
        prop_assert!((mix - 1.0).abs() < 1e-9);
        // ILP monotone in window size and at least 1 (unit-latency machine
        // retires at least one instruction per cycle along the chain).
        let ilp = &v.values()[6..10];
        for w in ilp.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9);
        }
        prop_assert!(ilp[0] >= 1.0 - 1e-9);
        // All CDFs monotone: dependency distances and the four stride sets.
        for range in [12..19, 23..28, 28..33, 33..38, 38..43] {
            let slice = &v.values()[range];
            for w in slice.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-9, "CDF not monotone: {slice:?}");
            }
        }
        // Probabilities bounded.
        for &p in v.values()[12..19].iter().chain(&v.values()[23..43]) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
        // PPM accuracies bounded.
        for &acc in &v.values()[43..47] {
            prop_assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn random_programs_produce_valid_hpc_profiles(
        ops in proptest::collection::vec(rand_op(), 4..40),
    ) {
        let mut vm = build_program(&ops);
        let mut sim = HpcSimulator::new();
        vm.run(&mut sim, 8_000).expect("runs");
        let p = sim.finish();
        prop_assert!(p.ipc_ev56 > 0.0 && p.ipc_ev56 <= 2.0 + 1e-9);
        prop_assert!(p.ipc_ev67 > 0.0 && p.ipc_ev67 <= 4.0 + 1e-9);
        for r in [p.branch_mispredict_rate, p.l1d_miss_rate, p.l1i_miss_rate,
                  p.l2_miss_rate, p.dtlb_miss_rate] {
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn vm_is_deterministic(ops in proptest::collection::vec(rand_op(), 4..40)) {
        let run = |ops: &[RandOp]| {
            let mut vm = build_program(ops);
            let mut suite = CharacterizationSuite::new();
            vm.run(&mut suite, 6_000).expect("runs");
            suite.finish()
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }

    #[test]
    fn distance_matrix_properties(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 5), 3..12),
    ) {
        let ds = DataSet::from_rows(rows);
        let z = zscore_normalize(&ds);
        let d = pairwise_distances(&z);
        let n = ds.rows();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!(d.get(i, j) >= 0.0);
                    prop_assert!((d.get(i, j) - d.get(j, i)).abs() < 1e-12);
                    for k in 0..n {
                        if k != i && k != j {
                            prop_assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-9);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn subset_distances_never_exceed_full_distances(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 6), 4..10),
        keep in proptest::collection::btree_set(0usize..6, 1..6),
    ) {
        let ds = DataSet::from_rows(rows);
        let keep: Vec<usize> = keep.into_iter().collect();
        let full = pairwise_distances(&ds);
        let sub = pairwise_distances(&ds.select_columns(&keep));
        for ((_, _, f), (_, _, s)) in full.iter_pairs().zip(sub.iter_pairs()) {
            prop_assert!(s <= f + 1e-9, "dropping dimensions cannot grow a Euclidean distance");
        }
    }
}

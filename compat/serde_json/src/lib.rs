//! Offline stand-in for `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! in-repo serde stand-in's value tree. The writer is deterministic: a
//! given value tree always renders to the same bytes (object fields keep
//! insertion order, floats print their shortest round-trip form), which the
//! workspace's determinism tests rely on.

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Render `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the value trees the stand-in produces; the `Result`
/// mirrors the upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render `value` as indented JSON.
///
/// # Errors
///
/// Never fails; see [`to_string`].
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::U64(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::I64(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::F64(x)) => write_f64(out, *x),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

/// Shortest round-trip float formatting; integral floats keep a `.0` suffix
/// so they parse back as `F64`, preserving `Number` variant round-trips.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if float {
            Number::F64(text.parse().map_err(|_| Error::new(format!("bad number `{text}`")))?)
        } else if let Some(rest) = text.strip_prefix('-') {
            let _ = rest;
            Number::I64(text.parse().map_err(|_| Error::new(format!("bad number `{text}`")))?)
        } else {
            Number::U64(text.parse().map_err(|_| Error::new(format!("bad number `{text}`")))?)
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v: u64 = from_str(&to_string(&123u64).unwrap()).unwrap();
        assert_eq!(v, 123);
        let v: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(v, 1.5);
        let v: String = from_str(&to_string(&"a \"b\"\n".to_string()).unwrap()).unwrap();
        assert_eq!(v, "a \"b\"\n");
        let v: Vec<i64> = from_str(&to_string(&vec![-1i64, 0, 9]).unwrap()).unwrap();
        assert_eq!(v, vec![-1, 0, 9]);
    }

    #[test]
    fn u64_max_round_trips() {
        let v: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(v, u64::MAX);
    }

    #[test]
    fn float_shortest_form_round_trips() {
        for x in [0.1f64, 1.0 / 3.0, 1e300, -2.5e-9, 42.0] {
            let v: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(v.to_bits(), x.to_bits(), "{x} must round-trip exactly");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("{").is_err());
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v: Vec<Vec<f64>> = from_str(" [ [1.0, 2.0] , [ ] ] ").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.0], vec![]]);
    }
}

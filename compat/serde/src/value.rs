//! The JSON-shaped value tree all (de)serialization goes through.

/// A JSON number, kept wide enough to round-trip every integer the
/// workspace stores (`u64` instruction counts exceed `f64`'s 53-bit
/// mantissa).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (finite; non-finite floats serialize as `Value::Null`).
    F64(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Exact conversion to `u64`, when representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Exact conversion to `i64`, when representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v)
                if v >= i64::MIN as f64 && v <= i64::MAX as f64 && v.fract() == 0.0 =>
            {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// A JSON document fragment.
///
/// Objects preserve insertion order (a `Vec`, not a map), which keeps
/// serialization deterministic: the same struct always renders to the same
/// string — a property the determinism tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also used for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name for the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The fields when `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements when `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up an object field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace ships a
//! minimal serialization framework with the same surface its code uses:
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::{to_string,
//! from_str}`. Instead of upstream serde's visitor architecture, types
//! convert to and from a small JSON-shaped [`Value`] tree; the `serde_json`
//! sibling crate renders and parses that tree.
//!
//! The `derive` feature exists for manifest compatibility; the derive
//! macros are always available.

pub use serde_derive::{Deserialize, Serialize};

mod error;
mod impls;
pub mod value;

pub use error::DeError;
pub use value::{Number, Value};

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Represent `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

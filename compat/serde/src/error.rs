//! Deserialization errors.

use std::fmt;

/// Why a [`crate::Value`] tree could not be turned back into a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a free-form message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// A required object field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError { message: format!("missing field `{field}` while deserializing {ty}") }
    }

    /// The value had the wrong shape (e.g. a string where a number belongs).
    pub fn type_mismatch(expected: &str, got: &crate::Value) -> Self {
        DeError { message: format!("expected {expected}, got {}", got.kind()) }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

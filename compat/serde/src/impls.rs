//! `Serialize`/`Deserialize` implementations for primitives and containers.

use crate::{DeError, Deserialize, Number, Serialize, Value};

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| DeError::type_mismatch(stringify!($t), v)),
                    _ => Err(DeError::type_mismatch(stringify!($t), v)),
                }
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::Number(Number::U64(x as u64))
                } else {
                    Value::Number(Number::I64(x))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| DeError::type_mismatch(stringify!($t), v)),
                    _ => Err(DeError::type_mismatch(stringify!($t), v)),
                }
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() {
                    Value::Number(Number::F64(x))
                } else {
                    // JSON has no NaN/inf; mirror serde_json and emit null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::type_mismatch(stringify!($t), v)),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::type_mismatch("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::type_mismatch("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// A [`Value`] is its own representation, so `serde_json::from_str::<Value>`
/// parses arbitrary JSON for schema-agnostic inspection (the observability
/// tests validate trace files this way).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::type_mismatch("array", v))?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new(format!("array of length {N} failed to convert")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::type_mismatch("array", v))?;
        if items.len() != 2 {
            return Err(DeError::new(format!("expected a pair, got {} elements", items.len())));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::type_mismatch("object", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        let big: u64 = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn arrays_enforce_length() {
        let v = [1.0f64, 2.0].to_value();
        assert!(<[f64; 3]>::from_value(&v).is_err());
        assert_eq!(<[f64; 2]>::from_value(&v).unwrap(), [1.0, 2.0]);
    }
}

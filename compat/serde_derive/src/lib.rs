//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-repo serde
//! stand-in.
//!
//! Implemented directly on the `proc_macro` token API (no `syn`/`quote`,
//! which are registry crates this offline build cannot fetch). Supports the
//! shapes the workspace actually derives on:
//!
//! - structs with named fields → JSON objects, field order preserved;
//! - single-field tuple structs (newtypes) → the inner value, transparent;
//! - multi-field tuple structs → JSON arrays;
//! - enums whose variants all carry no data → the variant name as a string.
//!
//! Field types never need to be parsed: the generated code calls
//! `Serialize::to_value` / `Deserialize::from_value` and lets type
//! inference resolve the implementation from the struct definition.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes of type definitions the derives understand.
enum Shape {
    Named { name: String, fields: Vec<String> },
    Tuple { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Advance past outer attributes (`#[...]`, including doc comments).
fn skip_attributes(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("malformed attribute after `#`: {other:?}"),
        }
    }
}

/// Advance past a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Field names of a named-field struct body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        // Grouped tokens ((), [], {}) arrive as single trees, so only `<`/`>`
        // need explicit depth tracking.
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Arity of a tuple-struct body.
fn parse_tuple_arity(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut saw_token = false;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    arity += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    arity + usize::from(saw_token)
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("expected variant name in enum {enum_name}, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            Some(other) => panic!(
                "derive only supports unit variants; variant `{}` of {enum_name} carries data ({other:?})",
                variants.last().unwrap()
            ),
        }
    }
    variants
}

/// Parse a `struct`/`enum` item into its [`Shape`].
fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };

    // Reject generics: none of the workspace's serialized types are
    // generic, and supporting them would need bound rewriting.
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize) stand-in does not support generic type {name}");
        }
    }

    match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named { name, fields: parse_named_fields(g.stream()) }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple { name, arity: parse_tuple_arity(g.stream()) }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = parse_unit_variants(g.stream(), &name);
            Shape::UnitEnum { name, variants }
        }
        (k, other) => panic!("unsupported item for derive: {k} {name} {other:?}"),
    }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> =
                (0..arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    body.parse().expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         v.field(\"{f}\").ok_or_else(|| \
                         ::serde::DeError::missing_field(\"{name}\", \"{f}\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if v.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(\
                                 ::serde::DeError::type_mismatch(\"object\", v));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         ::serde::DeError::new(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let items = v.as_array().ok_or_else(|| \
                             ::serde::DeError::type_mismatch(\"array\", v))?;\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {},\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             _ => ::std::result::Result::Err(\
                                 ::serde::DeError::type_mismatch(\"string\", v)),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    body.parse().expect("generated Deserialize impl parses")
}

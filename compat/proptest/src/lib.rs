//! Offline stand-in for `proptest`.
//!
//! The build container cannot fetch crates.io, so the workspace ships the
//! `proptest` API subset its tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, `any::<T>()`,
//! `collection::{vec, btree_set}`, `prop_oneof!`, and the `proptest!` test
//! macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the panic message of the assertion that tripped) and a
//! deterministic per-test RNG seed derived from the test name, so failures
//! reproduce across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Just, Strategy, TestRng, Union};

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A deterministic RNG for one named test (FNV-1a over the name).
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::ProptestConfig;
}

/// Define property tests: each `fn` runs its body for `cases` random
/// samples of its `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases $cfg; $($rest)*);
    };
    (@cases $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::{Strategy, TestRng};
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A collection size specification: an exact size or a range of sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Smallest allowed size, inclusive.
    lo: usize,
    /// Largest allowed size, inclusive.
    hi: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set; retry with a generous attempt budget so
        // small element domains still reach the target size.
        for _ in 0..target.saturating_mul(64).max(256) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.sample(rng));
        }
        assert!(
            set.len() >= self.size.lo,
            "btree_set strategy could not reach the minimum size {} (element domain too small?)",
            self.size.lo
        );
        set
    }
}

/// A `BTreeSet` whose size is drawn from `size` and whose elements are
/// drawn from `element` (resampling on duplicates).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for_test;

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = rng_for_test("vec_respects_size_forms");
        for _ in 0..50 {
            assert_eq!(vec(0u8..5, 3).sample(&mut rng).len(), 3);
            let n = vec(0u8..5, 2..7).sample(&mut rng).len();
            assert!((2..7).contains(&n));
            let n = vec(0u8..5, 4..=4).sample(&mut rng).len();
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn btree_set_reaches_requested_size() {
        let mut rng = rng_for_test("btree_set_reaches_requested_size");
        for _ in 0..50 {
            let s = btree_set(0usize..6, 1..6).sample(&mut rng);
            assert!((1..6).contains(&s.len()));
            assert!(s.iter().all(|&x| x < 6));
        }
    }
}

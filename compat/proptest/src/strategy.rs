//! The [`Strategy`] trait and the strategies the workspace's tests use.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG threaded through sampling.
pub type TestRng = StdRng;

/// A recipe for random values of one type.
///
/// Unlike upstream proptest there is no shrinking: `sample` draws one value
/// directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from every sampled value and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Finite values spanning many magnitudes (upstream proptest also
    /// avoids NaN/inf by default).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exponent: i32 = rng.gen_range(-64i32..64);
        mantissa * (exponent as f64).exp2()
    }
}

/// Strategy over the whole (default) domain of `T`.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for_test;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = rng_for_test("ranges_and_maps_compose");
        let strat = (0u8..4, 10i64..20).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((10..24).contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = rng_for_test("flat_map_threads_dependent_values");
        let strat = (2usize..6).prop_flat_map(|n| crate::collection::vec(0u8..10, n..=n));
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = rng_for_test("union_hits_every_arm");
        let strat = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}

//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `sample_size`, `throughput`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple wall-clock harness: warm up, time `sample_size` samples,
//! report median / mean / min, and per-element throughput when configured.
//!
//! No statistical regression analysis, plots, or saved baselines; output
//! goes to stdout, one line per benchmark.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `body` repeatedly and record the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Override the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let sample_size = self.sample_size;
        run_benchmark(&name.into(), sample_size, None, f);
    }
}

/// A named group sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Report throughput alongside timings.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// End the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Calibrate an iteration count targeting ~20 ms per sample, then time
/// `sample_size` samples and print a summary line.
fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up / calibration: grow iters until one sample is slow enough to
    // time reliably.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    let target = 0.02f64;
    let iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];

    let mut line = format!(
        "{name:<50} median {} mean {} min {} ({} samples x {iters} iters)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min),
        samples.len(),
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!("  [{:.1} Melem/s]", n as f64 / median / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!("  [{:.1} MiB/s]", n as f64 / median / (1024.0 * 1024.0)));
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("test");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.5).ends_with(" s"));
        assert!(fmt_time(2.5e-3).ends_with(" ms"));
        assert!(fmt_time(2.5e-6).ends_with(" us"));
        assert!(fmt_time(2.5e-9).ends_with(" ns"));
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace ships
//! the small API subset it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator behind `StdRng` is xoshiro256++ seeded through SplitMix64.
//! It is *not* stream-compatible with upstream `rand`'s ChaCha12-based
//! `StdRng`, but every consumer in this workspace only relies on the stream
//! being deterministic for a given seed, which this guarantees on every
//! platform.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Sample one uniformly distributed value.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample_standard(rng) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample_standard(rng) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// A uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should differ: {same} collisions");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
            let x: i64 = rng.gen_range(-16i64..16);
            assert!((-16..16).contains(&x));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "samples should spread across [0, 1)");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}

//! Differential testing: the VM's integer ALU semantics are checked against
//! an independent host-side interpreter over randomly generated straight-
//! line programs. Any divergence in wrapping, shifting, sign handling or
//! comparison semantics fails here.

use proptest::prelude::*;
use tinyisa::{regs::*, Asm, CountingSink, Reg, Vm};

#[derive(Debug, Clone, Copy)]
enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Mulh,
    Div,
    Rem,
}

const OPS: [AluOp; 14] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Div,
    AluOp::Rem,
];

/// The oracle: plain-Rust semantics, written independently of the VM.
fn oracle(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b as u32),
        AluOp::Srl => a.wrapping_shr(b as u32),
        AluOp::Sra => ((a as i64).wrapping_shr(b as u32)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => ((a as u128).wrapping_mul(b as u128) >> 64) as u64,
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                (a as i64).wrapping_rem(b as i64) as u64
            }
        }
    }
}

fn emit(a: &mut Asm, op: AluOp, d: Reg, x: Reg, y: Reg) {
    match op {
        AluOp::Add => a.add(d, x, y),
        AluOp::Sub => a.sub(d, x, y),
        AluOp::And => a.and(d, x, y),
        AluOp::Or => a.or(d, x, y),
        AluOp::Xor => a.xor(d, x, y),
        AluOp::Sll => a.sll(d, x, y),
        AluOp::Srl => a.srl(d, x, y),
        AluOp::Sra => a.sra(d, x, y),
        AluOp::Slt => a.slt(d, x, y),
        AluOp::Sltu => a.sltu(d, x, y),
        AluOp::Mul => a.mul(d, x, y),
        AluOp::Mulh => a.mulh(d, x, y),
        AluOp::Div => a.div(d, x, y),
        AluOp::Rem => a.rem(d, x, y),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alu_matches_host_oracle(
        seeds in proptest::collection::vec(any::<u64>(), 4),
        prog in proptest::collection::vec((0usize..14, 1u8..16, 0u8..16, 0u8..16), 1..40),
    ) {
        // Build the program: seed registers x1..x4, then the random body.
        let mut a = Asm::new();
        for (i, &v) in seeds.iter().enumerate() {
            a.li(Reg(i as u8 + 1), v as i64);
        }
        for &(op, d, x, y) in &prog {
            emit(&mut a, OPS[op], Reg(d), Reg(x % 16), Reg(y % 16));
        }
        a.halt();
        let mut vm = Vm::new(a.assemble().expect("assembles"));
        let mut sink = CountingSink::default();
        vm.run(&mut sink, 1_000_000).expect("runs to halt");

        // Replay on the oracle.
        let mut regs = [0u64; 16];
        for (i, &v) in seeds.iter().enumerate() {
            regs[i + 1] = v;
        }
        for &(op, d, x, y) in &prog {
            let v = oracle(OPS[op], regs[(x % 16) as usize], regs[(y % 16) as usize]);
            if d != 0 {
                regs[d as usize] = v;
            }
        }
        for (i, &expect) in regs.iter().enumerate() {
            prop_assert_eq!(vm.reg(Reg(i as u8)), expect, "register x{} diverged", i);
        }
    }

    #[test]
    fn memory_round_trips_any_width(
        addr in 0x1000u64..0x10_0000,
        value in any::<u64>(),
        width_sel in 0usize..4,
    ) {
        let widths = [1u64, 2, 4, 8];
        let w = widths[width_sel];
        let mut a = Asm::new();
        a.li(T0, addr as i64);
        a.li(T1, value as i64);
        match w {
            1 => { a.st1(T1, T0, 0); a.ld1(T2, T0, 0); }
            2 => { a.st2(T1, T0, 0); a.ld2(T2, T0, 0); }
            4 => { a.st4(T1, T0, 0); a.ld4(T2, T0, 0); }
            _ => { a.st8(T1, T0, 0); a.ld8(T2, T0, 0); }
        }
        a.halt();
        let mut vm = Vm::new(a.assemble().expect("assembles"));
        vm.run(&mut CountingSink::default(), 100).expect("runs");
        let mask = if w == 8 { u64::MAX } else { (1u64 << (w * 8)) - 1 };
        prop_assert_eq!(vm.reg(T2), value & mask, "width {} load zero-extends the stored bytes", w);
    }

    #[test]
    fn fp_ops_match_host_semantics(
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
    ) {
        let mut a = Asm::new();
        a.fli(F0, x);
        a.fli(F1, y);
        a.fadd(F2, F0, F1);
        a.fsub(F3, F0, F1);
        a.fmul(F4, F0, F1);
        a.fdiv(F5, F0, F1);
        a.fmin(F6, F0, F1);
        a.fmax(F7, F0, F1);
        a.halt();
        let mut vm = Vm::new(a.assemble().expect("assembles"));
        vm.run(&mut CountingSink::default(), 100).expect("runs");
        prop_assert_eq!(vm.freg(F2), x + y);
        prop_assert_eq!(vm.freg(F3), x - y);
        prop_assert_eq!(vm.freg(F4), x * y);
        prop_assert_eq!(vm.freg(F5).to_bits(), (x / y).to_bits());
        prop_assert_eq!(vm.freg(F6), x.min(y));
        prop_assert_eq!(vm.freg(F7), x.max(y));
    }
}

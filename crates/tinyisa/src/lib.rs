//! A small Alpha-like 64-bit load/store RISC ISA with an assembler and a
//! tracing virtual machine.
//!
//! This crate is the execution substrate for the MICA reproduction: the
//! original paper instrumented Alpha binaries with ATOM; here, workloads are
//! written against [`Asm`] (a label-resolving assembler builder), executed by
//! [`Vm`], and every retired instruction is delivered as a [`DynInst`] event
//! to a [`TraceSink`] observer — the moral equivalent of an ATOM analysis
//! routine.
//!
//! # Example
//!
//! Count retired instructions of a loop summing `0..10`:
//!
//! ```
//! use tinyisa::{Asm, Vm, CountingSink, regs::*};
//!
//! # fn main() -> Result<(), tinyisa::AsmError> {
//! let mut a = Asm::new();
//! let (head, done) = (a.label(), a.label());
//! a.li(T0, 0); // i
//! a.li(T1, 0); // sum
//! a.bind(head);
//! a.slti(T2, T0, 10);
//! a.beq(T2, ZERO, done);
//! a.add(T1, T1, T0);
//! a.addi(T0, T0, 1);
//! a.jmp(head);
//! a.bind(done);
//! a.halt();
//! let prog = a.assemble()?;
//!
//! let mut sink = CountingSink::default();
//! let mut vm = Vm::new(prog);
//! vm.run(&mut sink, 1_000_000).unwrap();
//! assert_eq!(vm.reg(T1), 45);
//! assert!(sink.retired() > 40);
//! # Ok(())
//! # }
//! ```

mod asm;
mod disasm;
mod inst;
mod mem;
mod trace;
mod vm;

pub use asm::{Asm, AsmError, Label, Program};
pub use disasm::disassemble_op;
pub use inst::{
    CtrlInfo, DynInst, FCmpOp, Flow, InstClass, MemAccess, MemWidth, Op, RegRef, StaticMemRef,
};
pub use mem::Memory;
pub use trace::{Trace, TraceError, TraceRecorder};
pub use vm::{CountingSink, RunExit, TraceSink, Vm, VmError, BATCH_CAPACITY, BATCH_WATERMARK};

/// An integer (general-purpose) architectural register, `x0`..`x31`.
///
/// `x0` ([`regs::ZERO`]) is hardwired to zero: writes are discarded and reads
/// do not appear as register dependencies in [`DynInst`] events, matching how
/// the Alpha `r31` behaves under ATOM-style analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

/// A floating-point architectural register, `f0`..`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(pub u8);

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl std::fmt::Display for FReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Number of integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point registers.
pub const NUM_FP_REGS: usize = 32;
/// Bytes per (fixed-width) instruction; used when assigning PCs.
pub const INST_BYTES: u64 = 4;

/// Conventional register names.
///
/// The ABI is purely conventional — nothing in the VM enforces it — but the
/// workload kernels follow it: `A0..A5` arguments, `T0..T9` temporaries,
/// `S0..S11` saved, `SP` stack pointer, `RA` link register written by `call`.
pub mod regs {
    use super::{FReg, Reg};

    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    pub const A0: Reg = Reg(1);
    pub const A1: Reg = Reg(2);
    pub const A2: Reg = Reg(3);
    pub const A3: Reg = Reg(4);
    pub const A4: Reg = Reg(5);
    pub const A5: Reg = Reg(6);
    pub const T0: Reg = Reg(7);
    pub const T1: Reg = Reg(8);
    pub const T2: Reg = Reg(9);
    pub const T3: Reg = Reg(10);
    pub const T4: Reg = Reg(11);
    pub const T5: Reg = Reg(12);
    pub const T6: Reg = Reg(13);
    pub const T7: Reg = Reg(14);
    pub const T8: Reg = Reg(15);
    pub const T9: Reg = Reg(16);
    pub const S0: Reg = Reg(17);
    pub const S1: Reg = Reg(18);
    pub const S2: Reg = Reg(19);
    pub const S3: Reg = Reg(20);
    pub const S4: Reg = Reg(21);
    pub const S5: Reg = Reg(22);
    pub const S6: Reg = Reg(23);
    pub const S7: Reg = Reg(24);
    pub const S8: Reg = Reg(25);
    pub const S9: Reg = Reg(26);
    pub const S10: Reg = Reg(27);
    pub const S11: Reg = Reg(28);
    pub const GP: Reg = Reg(29);
    /// Conventional stack pointer.
    pub const SP: Reg = Reg(30);
    /// Link register, written by `call`.
    pub const RA: Reg = Reg(31);

    pub const F0: FReg = FReg(0);
    pub const F1: FReg = FReg(1);
    pub const F2: FReg = FReg(2);
    pub const F3: FReg = FReg(3);
    pub const F4: FReg = FReg(4);
    pub const F5: FReg = FReg(5);
    pub const F6: FReg = FReg(6);
    pub const F7: FReg = FReg(7);
    pub const F8: FReg = FReg(8);
    pub const F9: FReg = FReg(9);
    pub const F10: FReg = FReg(10);
    pub const F11: FReg = FReg(11);
    pub const F12: FReg = FReg(12);
    pub const F13: FReg = FReg(13);
    pub const F14: FReg = FReg(14);
    pub const F15: FReg = FReg(15);
}

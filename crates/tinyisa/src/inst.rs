//! Instruction definitions and the retired-instruction event type.

use crate::{FReg, Reg};

/// Width of a scalar memory access, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    B1,
    B2,
    B4,
    B8,
}

impl MemWidth {
    /// Size of the access in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// Comparison predicate used by [`Op::Fcmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpOp {
    Lt,
    Le,
    Eq,
}

/// A static instruction.
///
/// Branch/jump/call targets are indices into the program's instruction
/// vector; they are produced by [`crate::Asm`], which resolves labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    // --- integer ALU (three-register) ---
    Add(Reg, Reg, Reg),
    Sub(Reg, Reg, Reg),
    And(Reg, Reg, Reg),
    Or(Reg, Reg, Reg),
    Xor(Reg, Reg, Reg),
    Sll(Reg, Reg, Reg),
    Srl(Reg, Reg, Reg),
    Sra(Reg, Reg, Reg),
    /// Set-if-less-than, signed: `dst = (a < b) as u64`.
    Slt(Reg, Reg, Reg),
    /// Set-if-less-than, unsigned.
    Sltu(Reg, Reg, Reg),
    // --- integer ALU (immediate) ---
    Addi(Reg, Reg, i64),
    Andi(Reg, Reg, i64),
    Ori(Reg, Reg, i64),
    Xori(Reg, Reg, i64),
    Slli(Reg, Reg, u8),
    Srli(Reg, Reg, u8),
    Srai(Reg, Reg, u8),
    Slti(Reg, Reg, i64),
    /// Load immediate: `dst = imm`. No register sources.
    Li(Reg, i64),
    // --- integer multiply / divide (classified as `IntMul`) ---
    Mul(Reg, Reg, Reg),
    /// Upper 64 bits of the unsigned 128-bit product.
    Mulh(Reg, Reg, Reg),
    /// Signed division; division by zero yields `u64::MAX` (no trap).
    Div(Reg, Reg, Reg),
    /// Signed remainder; remainder by zero yields the dividend.
    Rem(Reg, Reg, Reg),
    // --- floating point ---
    Fadd(FReg, FReg, FReg),
    Fsub(FReg, FReg, FReg),
    Fmul(FReg, FReg, FReg),
    Fdiv(FReg, FReg, FReg),
    Fsqrt(FReg, FReg),
    Fabs(FReg, FReg),
    Fneg(FReg, FReg),
    Fmin(FReg, FReg, FReg),
    Fmax(FReg, FReg, FReg),
    /// Load floating-point immediate. No register sources.
    Fli(FReg, f64),
    /// Move between FP registers.
    Fmov(FReg, FReg),
    /// Convert signed integer to double: `fd = xs as f64`.
    Fcvtif(FReg, Reg),
    /// Convert double to signed integer (truncating): `xd = fs as i64`.
    Fcvtfi(Reg, FReg),
    /// FP compare writing 0/1 to an integer register.
    Fcmp(Reg, FReg, FReg, FCmpOp),
    // --- memory ---
    /// Zero-extending load: `dst = mem[base + off]`.
    Ld(Reg, Reg, i64, MemWidth),
    /// Store: `mem[base + off] = src`.
    St(Reg, Reg, i64, MemWidth),
    /// Load a 64-bit double into an FP register.
    Ldf(FReg, Reg, i64),
    /// Store a 64-bit double from an FP register.
    Stf(FReg, Reg, i64),
    // --- control ---
    Beq(Reg, Reg, usize),
    Bne(Reg, Reg, usize),
    Blt(Reg, Reg, usize),
    Bge(Reg, Reg, usize),
    Bltu(Reg, Reg, usize),
    Bgeu(Reg, Reg, usize),
    /// Unconditional direct jump.
    Jmp(usize),
    /// Indirect jump to the byte address in a register.
    Jr(Reg),
    /// Direct call: writes the return byte address to `RA` and jumps.
    Call(usize),
    /// Indirect call through a register.
    Callr(Reg),
    /// Return: jump to the byte address in `RA`.
    Ret,
    /// Stop the machine.
    Halt,
}

/// Coarse class of a retired instruction, as used by the instruction-mix
/// characterization (loads, stores, control transfers, arithmetic, integer
/// multiplies, floating point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Integer ALU and move operations.
    IntAlu,
    /// Integer multiply, divide, remainder.
    IntMul,
    /// Floating-point operations (including converts and FP compares).
    Fp,
    /// Memory loads (integer or FP).
    Load,
    /// Memory stores (integer or FP).
    Store,
    /// Conditional branches.
    Branch,
    /// Unconditional jumps, calls and returns.
    Jump,
}

impl InstClass {
    /// True for any control transfer (branch or jump/call/return).
    pub fn is_control(self) -> bool {
        matches!(self, InstClass::Branch | InstClass::Jump)
    }
}

/// A reference to an architectural register in a [`DynInst`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRef {
    Int(u8),
    Fp(u8),
}

impl RegRef {
    /// A dense index over the unified register file: integer registers map to
    /// `0..32`, FP registers to `32..64`.
    pub fn unified(self) -> usize {
        match self {
            RegRef::Int(r) => r as usize,
            RegRef::Fp(r) => 32 + r as usize,
        }
    }
}

impl From<Reg> for RegRef {
    fn from(r: Reg) -> Self {
        RegRef::Int(r.0)
    }
}

impl From<FReg> for RegRef {
    fn from(r: FReg) -> Self {
        RegRef::Fp(r.0)
    }
}

/// A data-memory access performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores.
    pub is_store: bool,
}

/// Control-flow outcome of a retired control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtrlInfo {
    /// Whether the transfer was taken (always true for jumps).
    pub taken: bool,
    /// Byte address of the target (the fall-through address for a not-taken
    /// branch).
    pub target: u64,
    /// True for conditional branches, false for jumps/calls/returns.
    pub conditional: bool,
}

/// One retired dynamic instruction, as observed by a [`crate::TraceSink`].
///
/// Reads of the hardwired-zero register `x0` are omitted from `srcs`, and
/// writes to it are omitted from `dst` — `x0` carries no data dependence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Byte address of the instruction.
    pub pc: u64,
    /// Coarse class, for the instruction-mix characterization.
    pub class: InstClass,
    /// Destination register, if any.
    pub dst: Option<RegRef>,
    /// Source registers (up to three; `None` entries are trailing).
    pub srcs: [Option<RegRef>; 3],
    /// Data-memory access, if this is a load or store.
    pub mem: Option<MemAccess>,
    /// Control-flow outcome, if this is a control transfer.
    pub ctrl: Option<CtrlInfo>,
}

impl DynInst {
    /// Iterate over the (non-`None`) source registers.
    pub fn sources(&self) -> impl Iterator<Item = RegRef> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Number of register input operands.
    pub fn num_sources(&self) -> usize {
        self.srcs.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B2.bytes(), 2);
        assert_eq!(MemWidth::B4.bytes(), 4);
        assert_eq!(MemWidth::B8.bytes(), 8);
    }

    #[test]
    fn unified_register_indices_are_disjoint() {
        assert_eq!(RegRef::Int(0).unified(), 0);
        assert_eq!(RegRef::Int(31).unified(), 31);
        assert_eq!(RegRef::Fp(0).unified(), 32);
        assert_eq!(RegRef::Fp(31).unified(), 63);
    }

    #[test]
    fn control_classes() {
        assert!(InstClass::Branch.is_control());
        assert!(InstClass::Jump.is_control());
        assert!(!InstClass::Load.is_control());
        assert!(!InstClass::IntAlu.is_control());
    }

    #[test]
    fn dyn_inst_sources() {
        let d = DynInst {
            pc: 0,
            class: InstClass::IntAlu,
            dst: Some(RegRef::Int(1)),
            srcs: [Some(RegRef::Int(2)), Some(RegRef::Fp(3)), None],
            mem: None,
            ctrl: None,
        };
        assert_eq!(d.num_sources(), 2);
        let v: Vec<_> = d.sources().collect();
        assert_eq!(v, vec![RegRef::Int(2), RegRef::Fp(3)]);
    }
}

//! Instruction definitions and the retired-instruction event type.

use crate::{FReg, Reg};

/// Width of a scalar memory access, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    B1,
    B2,
    B4,
    B8,
}

impl MemWidth {
    /// Size of the access in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// Comparison predicate used by [`Op::Fcmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpOp {
    Lt,
    Le,
    Eq,
}

/// A static instruction.
///
/// Branch/jump/call targets are indices into the program's instruction
/// vector; they are produced by [`crate::Asm`], which resolves labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    // --- integer ALU (three-register) ---
    Add(Reg, Reg, Reg),
    Sub(Reg, Reg, Reg),
    And(Reg, Reg, Reg),
    Or(Reg, Reg, Reg),
    Xor(Reg, Reg, Reg),
    Sll(Reg, Reg, Reg),
    Srl(Reg, Reg, Reg),
    Sra(Reg, Reg, Reg),
    /// Set-if-less-than, signed: `dst = (a < b) as u64`.
    Slt(Reg, Reg, Reg),
    /// Set-if-less-than, unsigned.
    Sltu(Reg, Reg, Reg),
    // --- integer ALU (immediate) ---
    Addi(Reg, Reg, i64),
    Andi(Reg, Reg, i64),
    Ori(Reg, Reg, i64),
    Xori(Reg, Reg, i64),
    Slli(Reg, Reg, u8),
    Srli(Reg, Reg, u8),
    Srai(Reg, Reg, u8),
    Slti(Reg, Reg, i64),
    /// Load immediate: `dst = imm`. No register sources.
    Li(Reg, i64),
    // --- integer multiply / divide (classified as `IntMul`) ---
    Mul(Reg, Reg, Reg),
    /// Upper 64 bits of the unsigned 128-bit product.
    Mulh(Reg, Reg, Reg),
    /// Signed division; division by zero yields `u64::MAX` (no trap).
    Div(Reg, Reg, Reg),
    /// Signed remainder; remainder by zero yields the dividend.
    Rem(Reg, Reg, Reg),
    // --- floating point ---
    Fadd(FReg, FReg, FReg),
    Fsub(FReg, FReg, FReg),
    Fmul(FReg, FReg, FReg),
    Fdiv(FReg, FReg, FReg),
    Fsqrt(FReg, FReg),
    Fabs(FReg, FReg),
    Fneg(FReg, FReg),
    Fmin(FReg, FReg, FReg),
    Fmax(FReg, FReg, FReg),
    /// Load floating-point immediate. No register sources.
    Fli(FReg, f64),
    /// Move between FP registers.
    Fmov(FReg, FReg),
    /// Convert signed integer to double: `fd = xs as f64`.
    Fcvtif(FReg, Reg),
    /// Convert double to signed integer (truncating): `xd = fs as i64`.
    Fcvtfi(Reg, FReg),
    /// FP compare writing 0/1 to an integer register.
    Fcmp(Reg, FReg, FReg, FCmpOp),
    // --- memory ---
    /// Zero-extending load: `dst = mem[base + off]`.
    Ld(Reg, Reg, i64, MemWidth),
    /// Store: `mem[base + off] = src`.
    St(Reg, Reg, i64, MemWidth),
    /// Load a 64-bit double into an FP register.
    Ldf(FReg, Reg, i64),
    /// Store a 64-bit double from an FP register.
    Stf(FReg, Reg, i64),
    // --- control ---
    Beq(Reg, Reg, usize),
    Bne(Reg, Reg, usize),
    Blt(Reg, Reg, usize),
    Bge(Reg, Reg, usize),
    Bltu(Reg, Reg, usize),
    Bgeu(Reg, Reg, usize),
    /// Unconditional direct jump.
    Jmp(usize),
    /// Indirect jump to the byte address in a register.
    Jr(Reg),
    /// Direct call: writes the return byte address to `RA` and jumps.
    Call(usize),
    /// Indirect call through a register.
    Callr(Reg),
    /// Return: jump to the byte address in `RA`.
    Ret,
    /// Stop the machine.
    Halt,
}

/// Static control-flow behavior of an instruction, as exposed by
/// [`Op::flow`] for CFG construction.
///
/// Direct targets are instruction indices (label-resolved by
/// [`crate::Asm`]); indirect transfers carry no target — a static analysis
/// must model them conservatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flow {
    /// Falls through to the next instruction.
    Next,
    /// Conditional branch: transfers to the target index or falls through.
    Branch(usize),
    /// Unconditional direct jump.
    Jump(usize),
    /// Direct call: writes the return address to `RA`, transfers to the
    /// target; control eventually comes back via [`Flow::Ret`].
    Call(usize),
    /// Indirect jump through a register.
    IndirectJump,
    /// Indirect call through a register (also writes `RA`).
    IndirectCall,
    /// Return through `RA`.
    Ret,
    /// Stops the machine; no successor.
    Halt,
}

impl Flow {
    /// The direct target index, if this is a direct transfer.
    pub fn direct_target(self) -> Option<usize> {
        match self {
            Flow::Branch(t) | Flow::Jump(t) | Flow::Call(t) => Some(t),
            _ => None,
        }
    }

    /// True if execution can continue at the next instruction (fall-through
    /// or a not-taken branch; a call's fall-through is its *return site*,
    /// reached via `ret`, so it does not count here).
    pub fn falls_through(self) -> bool {
        matches!(self, Flow::Next | Flow::Branch(_))
    }
}

/// A statically-known memory reference, as exposed by [`Op::mem_ref`]:
/// the effective address is `base + offset` at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticMemRef {
    /// Base address register.
    pub base: Reg,
    /// Constant byte offset added to the base.
    pub offset: i64,
    /// Access width.
    pub width: MemWidth,
    /// True for stores.
    pub is_store: bool,
}

/// Filter the hardwired-zero register out of a source/destination slot,
/// matching the [`DynInst`] convention.
fn reg_ref(r: Reg) -> Option<RegRef> {
    if r.0 == 0 {
        None
    } else {
        Some(RegRef::Int(r.0))
    }
}

impl Op {
    /// Static control-flow behavior of this instruction.
    pub fn flow(&self) -> Flow {
        match *self {
            Op::Beq(_, _, t)
            | Op::Bne(_, _, t)
            | Op::Blt(_, _, t)
            | Op::Bge(_, _, t)
            | Op::Bltu(_, _, t)
            | Op::Bgeu(_, _, t) => Flow::Branch(t),
            Op::Jmp(t) => Flow::Jump(t),
            Op::Call(t) => Flow::Call(t),
            Op::Jr(_) => Flow::IndirectJump,
            Op::Callr(_) => Flow::IndirectCall,
            Op::Ret => Flow::Ret,
            Op::Halt => Flow::Halt,
            _ => Flow::Next,
        }
    }

    /// The architectural register this instruction writes, if any.
    ///
    /// Mirrors the [`DynInst::dst`] convention exactly: writes to the
    /// hardwired-zero `x0` are reported as `None` (they carry no data
    /// dependence), and `call`/`callr` report their `RA` write.
    pub fn def(&self) -> Option<RegRef> {
        match *self {
            Op::Add(d, ..)
            | Op::Sub(d, ..)
            | Op::And(d, ..)
            | Op::Or(d, ..)
            | Op::Xor(d, ..)
            | Op::Sll(d, ..)
            | Op::Srl(d, ..)
            | Op::Sra(d, ..)
            | Op::Slt(d, ..)
            | Op::Sltu(d, ..)
            | Op::Addi(d, ..)
            | Op::Andi(d, ..)
            | Op::Ori(d, ..)
            | Op::Xori(d, ..)
            | Op::Slli(d, ..)
            | Op::Srli(d, ..)
            | Op::Srai(d, ..)
            | Op::Slti(d, ..)
            | Op::Li(d, ..)
            | Op::Mul(d, ..)
            | Op::Mulh(d, ..)
            | Op::Div(d, ..)
            | Op::Rem(d, ..)
            | Op::Fcvtfi(d, ..)
            | Op::Fcmp(d, ..)
            | Op::Ld(d, ..) => reg_ref(d),
            Op::Fadd(d, ..)
            | Op::Fsub(d, ..)
            | Op::Fmul(d, ..)
            | Op::Fdiv(d, ..)
            | Op::Fsqrt(d, ..)
            | Op::Fabs(d, ..)
            | Op::Fneg(d, ..)
            | Op::Fmin(d, ..)
            | Op::Fmax(d, ..)
            | Op::Fli(d, ..)
            | Op::Fmov(d, ..)
            | Op::Fcvtif(d, ..)
            | Op::Ldf(d, ..) => Some(d.into()),
            Op::Call(_) | Op::Callr(_) => Some(RegRef::Int(31)),
            Op::St(..)
            | Op::Stf(..)
            | Op::Beq(..)
            | Op::Bne(..)
            | Op::Blt(..)
            | Op::Bge(..)
            | Op::Bltu(..)
            | Op::Bgeu(..)
            | Op::Jmp(_)
            | Op::Jr(_)
            | Op::Ret
            | Op::Halt => None,
        }
    }

    /// The architectural registers this instruction reads.
    ///
    /// Mirrors the [`DynInst::srcs`] convention exactly: same slot order as
    /// the VM reports, reads of `x0` omitted, `ret` reports its `RA` read,
    /// and `None` entries are trailing.
    pub fn uses(&self) -> [Option<RegRef>; 3] {
        let none = [None, None, None];
        match *self {
            Op::Add(_, a, b)
            | Op::Sub(_, a, b)
            | Op::And(_, a, b)
            | Op::Or(_, a, b)
            | Op::Xor(_, a, b)
            | Op::Sll(_, a, b)
            | Op::Srl(_, a, b)
            | Op::Sra(_, a, b)
            | Op::Slt(_, a, b)
            | Op::Sltu(_, a, b)
            | Op::Mul(_, a, b)
            | Op::Mulh(_, a, b)
            | Op::Div(_, a, b)
            | Op::Rem(_, a, b) => [reg_ref(a), reg_ref(b), None],
            Op::Addi(_, a, _)
            | Op::Andi(_, a, _)
            | Op::Ori(_, a, _)
            | Op::Xori(_, a, _)
            | Op::Slli(_, a, _)
            | Op::Srli(_, a, _)
            | Op::Srai(_, a, _)
            | Op::Slti(_, a, _) => [reg_ref(a), None, None],
            Op::Li(..) | Op::Fli(..) | Op::Jmp(_) | Op::Call(_) | Op::Halt => none,
            Op::Fadd(_, a, b)
            | Op::Fsub(_, a, b)
            | Op::Fmul(_, a, b)
            | Op::Fdiv(_, a, b)
            | Op::Fmin(_, a, b)
            | Op::Fmax(_, a, b) => [Some(a.into()), Some(b.into()), None],
            Op::Fsqrt(_, a) | Op::Fabs(_, a) | Op::Fneg(_, a) | Op::Fmov(_, a) => {
                [Some(a.into()), None, None]
            }
            Op::Fcvtif(_, a) => [reg_ref(a), None, None],
            Op::Fcvtfi(_, a) => [Some(a.into()), None, None],
            Op::Fcmp(_, a, b, _) => [Some(a.into()), Some(b.into()), None],
            Op::Ld(_, base, ..) | Op::Ldf(_, base, ..) => [reg_ref(base), None, None],
            Op::St(s, base, ..) => [reg_ref(s), reg_ref(base), None],
            Op::Stf(s, base, ..) => [Some(s.into()), reg_ref(base), None],
            Op::Beq(a, b, _)
            | Op::Bne(a, b, _)
            | Op::Blt(a, b, _)
            | Op::Bge(a, b, _)
            | Op::Bltu(a, b, _)
            | Op::Bgeu(a, b, _) => [reg_ref(a), reg_ref(b), None],
            Op::Jr(r) | Op::Callr(r) => [reg_ref(r), None, None],
            Op::Ret => [Some(RegRef::Int(31)), None, None],
        }
    }

    /// The coarse [`InstClass`] this instruction retires as.
    ///
    /// Mirrors the class the VM stamps on the corresponding [`DynInst`]
    /// exactly (parity-tested against execution), so a static analysis can
    /// compute the instruction-mix of a region without running it.
    pub fn class(&self) -> InstClass {
        match *self {
            Op::Add(..)
            | Op::Sub(..)
            | Op::And(..)
            | Op::Or(..)
            | Op::Xor(..)
            | Op::Sll(..)
            | Op::Srl(..)
            | Op::Sra(..)
            | Op::Slt(..)
            | Op::Sltu(..)
            | Op::Addi(..)
            | Op::Andi(..)
            | Op::Ori(..)
            | Op::Xori(..)
            | Op::Slli(..)
            | Op::Srli(..)
            | Op::Srai(..)
            | Op::Slti(..)
            | Op::Li(..)
            | Op::Halt => InstClass::IntAlu,
            Op::Mul(..) | Op::Mulh(..) | Op::Div(..) | Op::Rem(..) => InstClass::IntMul,
            Op::Fadd(..)
            | Op::Fsub(..)
            | Op::Fmul(..)
            | Op::Fdiv(..)
            | Op::Fsqrt(..)
            | Op::Fabs(..)
            | Op::Fneg(..)
            | Op::Fmin(..)
            | Op::Fmax(..)
            | Op::Fli(..)
            | Op::Fmov(..)
            | Op::Fcvtif(..)
            | Op::Fcvtfi(..)
            | Op::Fcmp(..) => InstClass::Fp,
            Op::Ld(..) | Op::Ldf(..) => InstClass::Load,
            Op::St(..) | Op::Stf(..) => InstClass::Store,
            Op::Beq(..) | Op::Bne(..) | Op::Blt(..) | Op::Bge(..) | Op::Bltu(..)
            | Op::Bgeu(..) => InstClass::Branch,
            Op::Jmp(_) | Op::Jr(_) | Op::Call(_) | Op::Callr(_) | Op::Ret => InstClass::Jump,
        }
    }

    /// The data-memory reference this instruction performs, if any.
    pub fn mem_ref(&self) -> Option<StaticMemRef> {
        match *self {
            Op::Ld(_, base, offset, width) => {
                Some(StaticMemRef { base, offset, width, is_store: false })
            }
            Op::St(_, base, offset, width) => {
                Some(StaticMemRef { base, offset, width, is_store: true })
            }
            Op::Ldf(_, base, offset) => {
                Some(StaticMemRef { base, offset, width: MemWidth::B8, is_store: false })
            }
            Op::Stf(_, base, offset) => {
                Some(StaticMemRef { base, offset, width: MemWidth::B8, is_store: true })
            }
            _ => None,
        }
    }
}

/// Coarse class of a retired instruction, as used by the instruction-mix
/// characterization (loads, stores, control transfers, arithmetic, integer
/// multiplies, floating point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Integer ALU and move operations.
    IntAlu,
    /// Integer multiply, divide, remainder.
    IntMul,
    /// Floating-point operations (including converts and FP compares).
    Fp,
    /// Memory loads (integer or FP).
    Load,
    /// Memory stores (integer or FP).
    Store,
    /// Conditional branches.
    Branch,
    /// Unconditional jumps, calls and returns.
    Jump,
}

impl InstClass {
    /// Every class, in declaration order. [`InstClass::index`] is the
    /// position in this array, so per-class counter banks (the PMU's event
    /// counters, mix tables) can be plain fixed-size arrays.
    pub const ALL: [InstClass; 7] = [
        InstClass::IntAlu,
        InstClass::IntMul,
        InstClass::Fp,
        InstClass::Load,
        InstClass::Store,
        InstClass::Branch,
        InstClass::Jump,
    ];

    /// True for any control transfer (branch or jump/call/return).
    pub fn is_control(self) -> bool {
        matches!(self, InstClass::Branch | InstClass::Jump)
    }

    /// Stable name, identical to the `Debug` rendering — the key used by
    /// artifact files (`static_mix`, heat-map class counts), so static and
    /// dynamic reports join without a rename table.
    pub const fn name(self) -> &'static str {
        match self {
            InstClass::IntAlu => "IntAlu",
            InstClass::IntMul => "IntMul",
            InstClass::Fp => "Fp",
            InstClass::Load => "Load",
            InstClass::Store => "Store",
            InstClass::Branch => "Branch",
            InstClass::Jump => "Jump",
        }
    }

    /// Dense index into [`InstClass::ALL`]-ordered counter arrays.
    pub const fn index(self) -> usize {
        match self {
            InstClass::IntAlu => 0,
            InstClass::IntMul => 1,
            InstClass::Fp => 2,
            InstClass::Load => 3,
            InstClass::Store => 4,
            InstClass::Branch => 5,
            InstClass::Jump => 6,
        }
    }
}

/// A reference to an architectural register in a [`DynInst`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRef {
    Int(u8),
    Fp(u8),
}

impl RegRef {
    /// A dense index over the unified register file: integer registers map to
    /// `0..32`, FP registers to `32..64`.
    pub fn unified(self) -> usize {
        match self {
            RegRef::Int(r) => r as usize,
            RegRef::Fp(r) => 32 + r as usize,
        }
    }
}

impl From<Reg> for RegRef {
    fn from(r: Reg) -> Self {
        RegRef::Int(r.0)
    }
}

impl From<FReg> for RegRef {
    fn from(r: FReg) -> Self {
        RegRef::Fp(r.0)
    }
}

/// A data-memory access performed by a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores.
    pub is_store: bool,
}

/// Control-flow outcome of a retired control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtrlInfo {
    /// Whether the transfer was taken (always true for jumps).
    pub taken: bool,
    /// Byte address of the target (the fall-through address for a not-taken
    /// branch).
    pub target: u64,
    /// True for conditional branches, false for jumps/calls/returns.
    pub conditional: bool,
}

/// One retired dynamic instruction, as observed by a [`crate::TraceSink`].
///
/// Reads of the hardwired-zero register `x0` are omitted from `srcs`, and
/// writes to it are omitted from `dst` — `x0` carries no data dependence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Byte address of the instruction.
    pub pc: u64,
    /// Coarse class, for the instruction-mix characterization.
    pub class: InstClass,
    /// Destination register, if any.
    pub dst: Option<RegRef>,
    /// Source registers (up to three; `None` entries are trailing).
    pub srcs: [Option<RegRef>; 3],
    /// Data-memory access, if this is a load or store.
    pub mem: Option<MemAccess>,
    /// Control-flow outcome, if this is a control transfer.
    pub ctrl: Option<CtrlInfo>,
}

impl DynInst {
    /// Iterate over the (non-`None`) source registers.
    pub fn sources(&self) -> impl Iterator<Item = RegRef> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Number of register input operands.
    pub fn num_sources(&self) -> usize {
        self.srcs.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B2.bytes(), 2);
        assert_eq!(MemWidth::B4.bytes(), 4);
        assert_eq!(MemWidth::B8.bytes(), 8);
    }

    #[test]
    fn unified_register_indices_are_disjoint() {
        assert_eq!(RegRef::Int(0).unified(), 0);
        assert_eq!(RegRef::Int(31).unified(), 31);
        assert_eq!(RegRef::Fp(0).unified(), 32);
        assert_eq!(RegRef::Fp(31).unified(), 63);
    }

    #[test]
    fn control_classes() {
        assert!(InstClass::Branch.is_control());
        assert!(InstClass::Jump.is_control());
        assert!(!InstClass::Load.is_control());
        assert!(!InstClass::IntAlu.is_control());
    }

    #[test]
    fn op_flow_classification() {
        use crate::regs::*;
        assert_eq!(Op::Add(T0, T1, T2).flow(), Flow::Next);
        assert_eq!(Op::Beq(T0, T1, 7).flow(), Flow::Branch(7));
        assert_eq!(Op::Jmp(3).flow(), Flow::Jump(3));
        assert_eq!(Op::Call(9).flow(), Flow::Call(9));
        assert_eq!(Op::Jr(T0).flow(), Flow::IndirectJump);
        assert_eq!(Op::Callr(T0).flow(), Flow::IndirectCall);
        assert_eq!(Op::Ret.flow(), Flow::Ret);
        assert_eq!(Op::Halt.flow(), Flow::Halt);
        assert_eq!(Flow::Branch(7).direct_target(), Some(7));
        assert_eq!(Flow::Ret.direct_target(), None);
        assert!(Flow::Next.falls_through());
        assert!(Flow::Branch(0).falls_through());
        assert!(!Flow::Jump(0).falls_through());
        assert!(!Flow::Call(0).falls_through());
        assert!(!Flow::Halt.falls_through());
    }

    #[test]
    fn op_defs_and_uses_follow_dyn_inst_conventions() {
        use crate::regs::*;
        // x0 is filtered from both defs and uses.
        assert_eq!(Op::Li(ZERO, 5).def(), None);
        assert_eq!(Op::Add(T0, ZERO, T1).uses(), [None, Some(RegRef::Int(8)), None]);
        // Calls define RA; ret reads it.
        assert_eq!(Op::Call(0).def(), Some(RegRef::Int(31)));
        assert_eq!(Op::Callr(T0).def(), Some(RegRef::Int(31)));
        assert_eq!(Op::Ret.uses()[0], Some(RegRef::Int(31)));
        // Stores read both the value and the base; loads define.
        assert_eq!(Op::St(T1, T0, 0, MemWidth::B8).def(), None);
        assert_eq!(
            Op::St(T1, T0, 0, MemWidth::B8).uses(),
            [Some(RegRef::Int(8)), Some(RegRef::Int(7)), None]
        );
        assert_eq!(Op::Ld(T1, T0, 0, MemWidth::B4).def(), Some(RegRef::Int(8)));
        // FP ops use the FP register space.
        assert_eq!(Op::Fadd(F2, F0, F1).def(), Some(RegRef::Fp(2)));
        assert_eq!(Op::Fcvtif(F0, T0).uses(), [Some(RegRef::Int(7)), None, None]);
        assert_eq!(Op::Fcvtfi(T0, F0).uses(), [Some(RegRef::Fp(0)), None, None]);
    }

    #[test]
    fn op_mem_ref_widths_and_direction() {
        use crate::regs::*;
        let ld = Op::Ld(T0, T1, 16, MemWidth::B2).mem_ref().unwrap();
        assert_eq!((ld.base, ld.offset, ld.width, ld.is_store), (T1, 16, MemWidth::B2, false));
        let stf = Op::Stf(F0, T1, -8).mem_ref().unwrap();
        assert_eq!((stf.base, stf.offset, stf.width, stf.is_store), (T1, -8, MemWidth::B8, true));
        assert_eq!(Op::Add(T0, T1, T2).mem_ref(), None);
        assert_eq!(Op::Jmp(0).mem_ref(), None);
    }

    #[test]
    fn op_class_covers_every_group() {
        use crate::regs::*;
        assert_eq!(Op::Add(T0, T1, T2).class(), InstClass::IntAlu);
        assert_eq!(Op::Li(T0, 3).class(), InstClass::IntAlu);
        assert_eq!(Op::Halt.class(), InstClass::IntAlu);
        assert_eq!(Op::Mul(T0, T1, T2).class(), InstClass::IntMul);
        assert_eq!(Op::Rem(T0, T1, T2).class(), InstClass::IntMul);
        assert_eq!(Op::Fadd(F0, F1, F2).class(), InstClass::Fp);
        assert_eq!(Op::Fcvtfi(T0, F0).class(), InstClass::Fp);
        assert_eq!(Op::Ld(T0, T1, 0, MemWidth::B8).class(), InstClass::Load);
        assert_eq!(Op::Ldf(F0, T1, 0).class(), InstClass::Load);
        assert_eq!(Op::St(T0, T1, 0, MemWidth::B1).class(), InstClass::Store);
        assert_eq!(Op::Stf(F0, T1, 0).class(), InstClass::Store);
        assert_eq!(Op::Beq(T0, T1, 0).class(), InstClass::Branch);
        assert_eq!(Op::Jmp(0).class(), InstClass::Jump);
        assert_eq!(Op::Ret.class(), InstClass::Jump);
        assert_eq!(Op::Callr(T0).class(), InstClass::Jump);
    }

    #[test]
    fn dyn_inst_sources() {
        let d = DynInst {
            pc: 0,
            class: InstClass::IntAlu,
            dst: Some(RegRef::Int(1)),
            srcs: [Some(RegRef::Int(2)), Some(RegRef::Fp(3)), None],
            mem: None,
            ctrl: None,
        };
        assert_eq!(d.num_sources(), 2);
        let v: Vec<_> = d.sources().collect();
        assert_eq!(v, vec![RegRef::Int(2), RegRef::Fp(3)]);
    }

    #[test]
    fn class_index_and_name_are_consistent_with_all() {
        for (i, c) in InstClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
            assert_eq!(c.name(), format!("{c:?}"), "name must match Debug");
        }
    }
}

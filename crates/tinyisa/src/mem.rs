//! Sparse paged byte-addressable memory.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse, demand-allocated 64-bit address space.
///
/// Pages (4 KiB) are allocated on first write; reads of never-written memory
/// return zeroes without allocating, so touching a huge address range with
/// loads does not consume host memory.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Create an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (written) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let p = self.page_mut(addr);
        p[(addr & OFFSET_MASK) as usize] = val;
    }

    /// Read `n <= 8` bytes little-endian, possibly spanning a page boundary.
    pub fn read_le(&self, addr: u64, n: u64) -> u64 {
        debug_assert!(n <= 8);
        // Fast path: access within a single page.
        let off = (addr & OFFSET_MASK) as usize;
        if off + n as usize <= PAGE_SIZE {
            match self.page(addr) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..n as usize].copy_from_slice(&p[off..off + n as usize]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            let mut v = 0u64;
            for i in 0..n {
                v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
            }
            v
        }
    }

    /// Write the low `n <= 8` bytes of `val` little-endian.
    pub fn write_le(&mut self, addr: u64, n: u64, val: u64) {
        debug_assert!(n <= 8);
        let off = (addr & OFFSET_MASK) as usize;
        if off + n as usize <= PAGE_SIZE {
            let p = self.page_mut(addr);
            p[off..off + n as usize].copy_from_slice(&val.to_le_bytes()[..n as usize]);
        } else {
            for i in 0..n {
                self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
            }
        }
    }

    /// Read a 64-bit IEEE double.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_le(addr, 8))
    }

    /// Write a 64-bit IEEE double.
    pub fn write_f64(&mut self, addr: u64, val: f64) {
        self.write_le(addr, 8, val.to_bits());
    }

    /// Bulk-copy a byte slice into memory (used to set up data segments).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Bulk-read `len` bytes.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero_without_allocating() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0xdead_beef), 0);
        assert_eq!(m.read_le(1 << 40, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn round_trip_widths() {
        let mut m = Memory::new();
        m.write_le(0x1000, 1, 0xab);
        m.write_le(0x1008, 2, 0xcdef);
        m.write_le(0x1010, 4, 0x1234_5678);
        m.write_le(0x1018, 8, 0xdead_beef_cafe_babe);
        assert_eq!(m.read_le(0x1000, 1), 0xab);
        assert_eq!(m.read_le(0x1008, 2), 0xcdef);
        assert_eq!(m.read_le(0x1010, 4), 0x1234_5678);
        assert_eq!(m.read_le(0x1018, 8), 0xdead_beef_cafe_babe);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1fff; // last byte of a page, spans into next
        m.write_le(addr, 8, 0x0102_0304_0506_0708);
        assert_eq!(m.read_le(addr, 8), 0x0102_0304_0506_0708);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = Memory::new();
        m.write_f64(0x2000, -3.25);
        assert_eq!(m.read_f64(0x2000), -3.25);
        m.write_f64(0x2000, f64::INFINITY);
        assert_eq!(m.read_f64(0x2000), f64::INFINITY);
    }

    #[test]
    fn bulk_bytes() {
        let mut m = Memory::new();
        m.write_bytes(0x3000, b"hello world");
        assert_eq!(m.read_bytes(0x3000, 11), b"hello world");
    }

    #[test]
    fn narrow_write_does_not_clobber_neighbors() {
        let mut m = Memory::new();
        m.write_le(0x4000, 8, u64::MAX);
        m.write_le(0x4002, 2, 0);
        assert_eq!(m.read_le(0x4000, 8), 0xffff_ffff_0000_ffff);
    }
}

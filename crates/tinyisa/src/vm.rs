//! The interpreting, tracing virtual machine.

use crate::asm::Program;
use crate::inst::{CtrlInfo, DynInst, FCmpOp, InstClass, MemAccess, MemWidth, Op, RegRef};
use crate::mem::Memory;
use crate::{FReg, Reg, INST_BYTES, NUM_FP_REGS, NUM_INT_REGS};
use std::fmt;

/// Largest block [`Vm::run`] delivers to [`TraceSink::retire_block`].
pub const BATCH_CAPACITY: usize = 256;

/// Fill level past which the next basic-block end (any control-flow
/// instruction) flushes the batch, so blocks tend to align with basic-block
/// boundaries without letting tiny loops degrade delivery to single digits.
pub const BATCH_WATERMARK: usize = 192;

/// Observer of retired instructions — the ATOM-analysis analogue.
///
/// Implementations receive every retired [`DynInst`] in program order.
/// Multiple analyzers are usually fanned out from a single sink.
///
/// Delivery happens at two granularities: [`TraceSink::retire`] hands over
/// one instruction, [`TraceSink::retire_block`] a contiguous run of them.
/// The two are interchangeable — a block is exactly the instructions that
/// `retire` would have seen, in the same order, with nothing added or
/// dropped — so sinks override `retire_block` only as an optimization and
/// must keep it observably identical to the per-instruction loop.
pub trait TraceSink {
    /// Called once per retired dynamic instruction, in order.
    fn retire(&mut self, inst: &DynInst);

    /// Called with a run of consecutively retired instructions, in order.
    ///
    /// The default implementation loops [`TraceSink::retire`], so existing
    /// sinks keep working unchanged. Overrides must leave the sink in a
    /// state indistinguishable from the default (the differential backend
    /// harness in `mica-core` enforces this for the analyzers).
    fn retire_block(&mut self, block: &[DynInst]) {
        for inst in block {
            self.retire(inst);
        }
    }
}

/// A trivial [`TraceSink`] that counts retired instructions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    retired: u64,
}

impl CountingSink {
    /// Number of instructions observed so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

impl TraceSink for CountingSink {
    fn retire(&mut self, _inst: &DynInst) {
        self.retired += 1;
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        self.retired += block.len() as u64;
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn retire(&mut self, inst: &DynInst) {
        (**self).retire(inst);
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        (**self).retire_block(block);
    }
}

/// Why [`Vm::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// A `halt` instruction retired.
    Halted,
    /// The instruction budget was exhausted before `halt`.
    FuelExhausted,
}

/// Runtime errors. The ISA itself is trap-free (division by zero is defined),
/// so the only failure mode is control flow leaving the text segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// An indirect jump or return targeted an address outside the program,
    /// or one not aligned to an instruction boundary.
    BadPc(u64),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadPc(pc) => write!(f, "control transfer to invalid pc {pc:#x}"),
        }
    }
}

impl std::error::Error for VmError {}

/// The virtual machine: architectural register state, memory, and a program.
#[derive(Debug, Clone)]
pub struct Vm {
    prog: Program,
    regs: [u64; NUM_INT_REGS],
    fregs: [f64; NUM_FP_REGS],
    mem: Memory,
    /// Instruction index of the next instruction to execute.
    next: usize,
    retired: u64,
}

/// Link register index (`x31`), written by `call`.
const RA: u8 = 31;

fn src(r: Reg) -> Option<RegRef> {
    if r.0 == 0 {
        None
    } else {
        Some(RegRef::Int(r.0))
    }
}

fn dst(r: Reg) -> Option<RegRef> {
    src(r)
}

impl Vm {
    /// Create a machine positioned at the first instruction of `prog`, with
    /// zeroed registers and empty memory.
    pub fn new(prog: Program) -> Self {
        Vm {
            prog,
            regs: [0; NUM_INT_REGS],
            fregs: [0.0; NUM_FP_REGS],
            mem: Memory::new(),
            next: 0,
            retired: 0,
        }
    }

    /// Read an integer register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.0 as usize]
    }

    /// Write an integer register (writes to `x0` are discarded).
    pub fn set_reg(&mut self, r: Reg, val: u64) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = val;
        }
    }

    /// Read an FP register.
    pub fn freg(&self, r: FReg) -> f64 {
        self.fregs[r.0 as usize]
    }

    /// Write an FP register.
    pub fn set_freg(&mut self, r: FReg, val: f64) {
        self.fregs[r.0 as usize] = val;
    }

    /// The machine's memory (e.g. to read back results).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access (e.g. to set up data segments before running).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Total instructions retired so far across all `run` calls.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Instruction index of the next instruction [`Vm::run`] would execute.
    ///
    /// Together with single-instruction fuel this lets a harness observe
    /// the architectural state *between* retirements — the hook the
    /// abstract-interpretation soundness checker uses to compare claimed
    /// value ranges against actual register contents.
    pub fn next_idx(&self) -> usize {
        self.next
    }

    fn indirect_target(&self, addr: u64) -> Result<usize, VmError> {
        let base = self.prog.base();
        if addr < base || !(addr - base).is_multiple_of(INST_BYTES) {
            return Err(VmError::BadPc(addr));
        }
        let idx = ((addr - base) / INST_BYTES) as usize;
        if idx >= self.prog.len() {
            return Err(VmError::BadPc(addr));
        }
        Ok(idx)
    }

    /// Execute until `halt`, an error, or `fuel` retired instructions.
    ///
    /// Retired instructions are delivered to `sink` in program order.
    /// Delivery is batched: instructions are buffered into blocks of at
    /// most [`BATCH_CAPACITY`] and handed over via
    /// [`TraceSink::retire_block`], with flushes at taken-control-flow
    /// boundaries (once the buffer passes [`BATCH_WATERMARK`]), at `halt`,
    /// at fuel exhaustion, and before any error return — so every executed
    /// instruction reaches the sink exactly once regardless of how the run
    /// ends. The machine can be resumed by calling `run` again after a
    /// [`RunExit::FuelExhausted`].
    ///
    /// # Errors
    ///
    /// [`VmError::BadPc`] if an indirect control transfer leaves the text
    /// segment; also returned if execution falls off the end of the program.
    /// Instructions retired before the fault are flushed to `sink` first
    /// (the faulting instruction itself never retires).
    pub fn run<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        fuel: u64,
    ) -> Result<RunExit, VmError> {
        let mut batch: Vec<DynInst> = Vec::with_capacity(BATCH_CAPACITY);
        let result = self.run_batched(sink, fuel, &mut batch);
        if !batch.is_empty() {
            sink.retire_block(&batch);
        }
        result
    }

    /// The interpreter loop. Buffers retired instructions into `batch`,
    /// flushing to `sink` at capacity and at basic-block ends past the
    /// watermark; the caller flushes whatever remains on any return path.
    fn run_batched<S: TraceSink + ?Sized>(
        &mut self,
        sink: &mut S,
        fuel: u64,
        batch: &mut Vec<DynInst>,
    ) -> Result<RunExit, VmError> {
        let mut remaining = fuel;
        while remaining > 0 {
            if self.next >= self.prog.len() {
                return Err(VmError::BadPc(self.prog.pc_of(self.next)));
            }
            let idx = self.next;
            let pc = self.prog.pc_of(idx);
            let fallthrough = idx + 1;
            let op = self.prog.insts()[idx];

            let mut d = DynInst {
                pc,
                class: InstClass::IntAlu,
                dst: None,
                srcs: [None, None, None],
                mem: None,
                ctrl: None,
            };
            let mut next = fallthrough;
            let mut halted = false;

            macro_rules! alu3 {
                ($d:expr, $a:expr, $b:expr, $f:expr) => {{
                    let v = $f(self.reg($a), self.reg($b));
                    self.set_reg($d, v);
                    d.dst = dst($d);
                    d.srcs = [src($a), src($b), None];
                }};
            }
            macro_rules! alui {
                ($d:expr, $a:expr, $f:expr) => {{
                    let v = $f(self.reg($a));
                    self.set_reg($d, v);
                    d.dst = dst($d);
                    d.srcs = [src($a), None, None];
                }};
            }
            macro_rules! fp3 {
                ($d:expr, $a:expr, $b:expr, $f:expr) => {{
                    let v = $f(self.freg($a), self.freg($b));
                    self.set_freg($d, v);
                    d.class = InstClass::Fp;
                    d.dst = Some($d.into());
                    d.srcs = [Some($a.into()), Some($b.into()), None];
                }};
            }
            macro_rules! fp2 {
                ($d:expr, $a:expr, $f:expr) => {{
                    let v = $f(self.freg($a));
                    self.set_freg($d, v);
                    d.class = InstClass::Fp;
                    d.dst = Some($d.into());
                    d.srcs = [Some($a.into()), None, None];
                }};
            }
            macro_rules! branch {
                ($a:expr, $b:expr, $t:expr, $cond:expr) => {{
                    let taken = $cond(self.reg($a), self.reg($b));
                    d.class = InstClass::Branch;
                    d.srcs = [src($a), src($b), None];
                    let target_pc =
                        if taken { self.prog.pc_of($t) } else { self.prog.pc_of(fallthrough) };
                    d.ctrl = Some(CtrlInfo { taken, target: target_pc, conditional: true });
                    if taken {
                        next = $t;
                    }
                }};
            }

            match op {
                Op::Add(dr, a, b) => alu3!(dr, a, b, |x: u64, y: u64| x.wrapping_add(y)),
                Op::Sub(dr, a, b) => alu3!(dr, a, b, |x: u64, y: u64| x.wrapping_sub(y)),
                Op::And(dr, a, b) => alu3!(dr, a, b, |x, y| x & y),
                Op::Or(dr, a, b) => alu3!(dr, a, b, |x, y| x | y),
                Op::Xor(dr, a, b) => alu3!(dr, a, b, |x, y| x ^ y),
                Op::Sll(dr, a, b) => alu3!(dr, a, b, |x: u64, y: u64| x.wrapping_shl(y as u32)),
                Op::Srl(dr, a, b) => alu3!(dr, a, b, |x: u64, y: u64| x.wrapping_shr(y as u32)),
                Op::Sra(dr, a, b) => {
                    alu3!(dr, a, b, |x: u64, y: u64| ((x as i64).wrapping_shr(y as u32)) as u64)
                }
                Op::Slt(dr, a, b) => alu3!(dr, a, b, |x, y| ((x as i64) < (y as i64)) as u64),
                Op::Sltu(dr, a, b) => alu3!(dr, a, b, |x, y| (x < y) as u64),
                Op::Addi(dr, a, imm) => alui!(dr, a, |x: u64| x.wrapping_add(imm as u64)),
                Op::Andi(dr, a, imm) => alui!(dr, a, |x| x & imm as u64),
                Op::Ori(dr, a, imm) => alui!(dr, a, |x| x | imm as u64),
                Op::Xori(dr, a, imm) => alui!(dr, a, |x| x ^ imm as u64),
                Op::Slli(dr, a, sh) => alui!(dr, a, |x: u64| x.wrapping_shl(sh as u32)),
                Op::Srli(dr, a, sh) => alui!(dr, a, |x: u64| x.wrapping_shr(sh as u32)),
                Op::Srai(dr, a, sh) => {
                    alui!(dr, a, |x: u64| ((x as i64).wrapping_shr(sh as u32)) as u64)
                }
                Op::Slti(dr, a, imm) => alui!(dr, a, |x| ((x as i64) < imm) as u64),
                Op::Li(dr, imm) => {
                    self.set_reg(dr, imm as u64);
                    d.dst = dst(dr);
                }
                Op::Mul(dr, a, b) => {
                    alu3!(dr, a, b, |x: u64, y: u64| x.wrapping_mul(y));
                    d.class = InstClass::IntMul;
                }
                Op::Mulh(dr, a, b) => {
                    alu3!(dr, a, b, |x: u64, y: u64| ((x as u128 * y as u128) >> 64) as u64);
                    d.class = InstClass::IntMul;
                }
                Op::Div(dr, a, b) => {
                    alu3!(dr, a, b, |x: u64, y: u64| {
                        if y == 0 {
                            u64::MAX
                        } else {
                            ((x as i64).wrapping_div(y as i64)) as u64
                        }
                    });
                    d.class = InstClass::IntMul;
                }
                Op::Rem(dr, a, b) => {
                    alu3!(dr, a, b, |x: u64, y: u64| {
                        if y == 0 {
                            x
                        } else {
                            ((x as i64).wrapping_rem(y as i64)) as u64
                        }
                    });
                    d.class = InstClass::IntMul;
                }
                Op::Fadd(fd, a, b) => fp3!(fd, a, b, |x: f64, y: f64| x + y),
                Op::Fsub(fd, a, b) => fp3!(fd, a, b, |x: f64, y: f64| x - y),
                Op::Fmul(fd, a, b) => fp3!(fd, a, b, |x: f64, y: f64| x * y),
                Op::Fdiv(fd, a, b) => fp3!(fd, a, b, |x: f64, y: f64| x / y),
                Op::Fsqrt(fd, a) => fp2!(fd, a, |x: f64| x.sqrt()),
                Op::Fabs(fd, a) => fp2!(fd, a, |x: f64| x.abs()),
                Op::Fneg(fd, a) => fp2!(fd, a, |x: f64| -x),
                Op::Fmin(fd, a, b) => fp3!(fd, a, b, |x: f64, y: f64| x.min(y)),
                Op::Fmax(fd, a, b) => fp3!(fd, a, b, |x: f64, y: f64| x.max(y)),
                Op::Fli(fd, imm) => {
                    self.set_freg(fd, imm);
                    d.class = InstClass::Fp;
                    d.dst = Some(fd.into());
                }
                Op::Fmov(fd, a) => fp2!(fd, a, |x| x),
                Op::Fcvtif(fd, a) => {
                    let v = self.reg(a) as i64 as f64;
                    self.set_freg(fd, v);
                    d.class = InstClass::Fp;
                    d.dst = Some(fd.into());
                    d.srcs = [src(a), None, None];
                }
                Op::Fcvtfi(dr, a) => {
                    let x = self.freg(a);
                    let v = if x.is_nan() { 0 } else { x as i64 as u64 };
                    self.set_reg(dr, v);
                    d.class = InstClass::Fp;
                    d.dst = dst(dr);
                    d.srcs = [Some(a.into()), None, None];
                }
                Op::Fcmp(dr, a, b, cmp) => {
                    let (x, y) = (self.freg(a), self.freg(b));
                    let v = match cmp {
                        FCmpOp::Lt => x < y,
                        FCmpOp::Le => x <= y,
                        FCmpOp::Eq => x == y,
                    } as u64;
                    self.set_reg(dr, v);
                    d.class = InstClass::Fp;
                    d.dst = dst(dr);
                    d.srcs = [Some(a.into()), Some(b.into()), None];
                }
                Op::Ld(dr, base, off, w) => {
                    let addr = self.reg(base).wrapping_add(off as u64);
                    let v = self.mem.read_le(addr, w.bytes());
                    self.set_reg(dr, v);
                    d.class = InstClass::Load;
                    d.dst = dst(dr);
                    d.srcs = [src(base), None, None];
                    d.mem = Some(MemAccess { addr, size: w.bytes(), is_store: false });
                }
                Op::St(sr, base, off, w) => {
                    let addr = self.reg(base).wrapping_add(off as u64);
                    self.mem.write_le(addr, w.bytes(), self.reg(sr));
                    d.class = InstClass::Store;
                    d.srcs = [src(sr), src(base), None];
                    d.mem = Some(MemAccess { addr, size: w.bytes(), is_store: true });
                }
                Op::Ldf(fd, base, off) => {
                    let addr = self.reg(base).wrapping_add(off as u64);
                    let v = self.mem.read_f64(addr);
                    self.set_freg(fd, v);
                    d.class = InstClass::Load;
                    d.dst = Some(fd.into());
                    d.srcs = [src(base), None, None];
                    d.mem = Some(MemAccess { addr, size: MemWidth::B8.bytes(), is_store: false });
                }
                Op::Stf(fs, base, off) => {
                    let addr = self.reg(base).wrapping_add(off as u64);
                    self.mem.write_f64(addr, self.freg(fs));
                    d.class = InstClass::Store;
                    d.srcs = [Some(fs.into()), src(base), None];
                    d.mem = Some(MemAccess { addr, size: MemWidth::B8.bytes(), is_store: true });
                }
                Op::Beq(a, b, t) => branch!(a, b, t, |x, y| x == y),
                Op::Bne(a, b, t) => branch!(a, b, t, |x, y| x != y),
                Op::Blt(a, b, t) => branch!(a, b, t, |x, y| (x as i64) < (y as i64)),
                Op::Bge(a, b, t) => branch!(a, b, t, |x, y| (x as i64) >= (y as i64)),
                Op::Bltu(a, b, t) => branch!(a, b, t, |x: u64, y: u64| x < y),
                Op::Bgeu(a, b, t) => branch!(a, b, t, |x: u64, y: u64| x >= y),
                Op::Jmp(t) => {
                    d.class = InstClass::Jump;
                    d.ctrl =
                        Some(CtrlInfo { taken: true, target: self.prog.pc_of(t), conditional: false });
                    next = t;
                }
                Op::Jr(r) => {
                    let addr = self.reg(r);
                    let t = self.indirect_target(addr)?;
                    d.class = InstClass::Jump;
                    d.srcs = [src(r), None, None];
                    d.ctrl = Some(CtrlInfo { taken: true, target: addr, conditional: false });
                    next = t;
                }
                Op::Call(t) => {
                    let ret_pc = self.prog.pc_of(fallthrough);
                    self.regs[RA as usize] = ret_pc;
                    d.class = InstClass::Jump;
                    d.dst = Some(RegRef::Int(RA));
                    d.ctrl =
                        Some(CtrlInfo { taken: true, target: self.prog.pc_of(t), conditional: false });
                    next = t;
                }
                Op::Callr(r) => {
                    let addr = self.reg(r);
                    let t = self.indirect_target(addr)?;
                    let ret_pc = self.prog.pc_of(fallthrough);
                    self.regs[RA as usize] = ret_pc;
                    d.class = InstClass::Jump;
                    d.dst = Some(RegRef::Int(RA));
                    d.srcs = [src(r), None, None];
                    d.ctrl = Some(CtrlInfo { taken: true, target: addr, conditional: false });
                    next = t;
                }
                Op::Ret => {
                    let addr = self.regs[RA as usize];
                    let t = self.indirect_target(addr)?;
                    d.class = InstClass::Jump;
                    d.srcs = [Some(RegRef::Int(RA)), None, None];
                    d.ctrl = Some(CtrlInfo { taken: true, target: addr, conditional: false });
                    next = t;
                }
                Op::Halt => {
                    halted = true;
                }
            }

            self.next = next;
            self.retired += 1;
            remaining -= 1;
            let block_end = d.ctrl.is_some();
            batch.push(d);
            if batch.len() >= BATCH_CAPACITY || (block_end && batch.len() >= BATCH_WATERMARK) {
                sink.retire_block(batch);
                batch.clear();
            }
            if halted {
                return Ok(RunExit::Halted);
            }
        }
        Ok(RunExit::FuelExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::*;
    use crate::Asm;

    fn run_prog(build: impl FnOnce(&mut Asm)) -> (Vm, Vec<DynInst>) {
        struct Rec(Vec<DynInst>);
        impl TraceSink for Rec {
            fn retire(&mut self, i: &DynInst) {
                self.0.push(*i);
            }
        }
        let mut a = Asm::new();
        build(&mut a);
        let prog = a.assemble().unwrap();
        let mut vm = Vm::new(prog);
        let mut rec = Rec(Vec::new());
        vm.run(&mut rec, 1_000_000).unwrap();
        (vm, rec.0)
    }

    #[test]
    fn arithmetic_semantics() {
        let (vm, _) = run_prog(|a| {
            a.li(T0, 7);
            a.li(T1, -3);
            a.add(T2, T0, T1); // 4
            a.sub(T3, T0, T1); // 10
            a.mul(T4, T0, T1); // -21
            a.div(T5, T1, T0); // 0
            a.rem(T6, T0, T1); // 1
            a.halt();
        });
        assert_eq!(vm.reg(T2), 4);
        assert_eq!(vm.reg(T3), 10);
        assert_eq!(vm.reg(T4) as i64, -21);
        assert_eq!(vm.reg(T5), 0);
        assert_eq!(vm.reg(T6) as i64, 1);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let (vm, _) = run_prog(|a| {
            a.li(T0, 42);
            a.div(T1, T0, ZERO);
            a.rem(T2, T0, ZERO);
            a.halt();
        });
        assert_eq!(vm.reg(T1), u64::MAX);
        assert_eq!(vm.reg(T2), 42);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let (vm, trace) = run_prog(|a| {
            a.li(ZERO, 99);
            a.addi(T0, ZERO, 5);
            a.halt();
        });
        assert_eq!(vm.reg(ZERO), 0);
        assert_eq!(vm.reg(T0), 5);
        // Writes to and reads of x0 don't show up as dependencies.
        assert_eq!(trace[0].dst, None);
        assert_eq!(trace[1].num_sources(), 0);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let (vm, trace) = run_prog(|a| {
            a.li(T0, 0x8000);
            a.li(T1, 0x1234_5678);
            a.st4(T1, T0, 8);
            a.ld4(T2, T0, 8);
            a.halt();
        });
        assert_eq!(vm.reg(T2), 0x1234_5678);
        let st = trace.iter().find(|d| d.class == InstClass::Store).unwrap();
        assert_eq!(st.mem.unwrap().addr, 0x8008);
        assert!(st.mem.unwrap().is_store);
        let ld = trace.iter().find(|d| d.class == InstClass::Load).unwrap();
        assert_eq!(ld.mem.unwrap().addr, 0x8008);
        assert_eq!(ld.mem.unwrap().size, 4);
    }

    #[test]
    fn fp_semantics() {
        let (vm, _) = run_prog(|a| {
            a.fli(F0, 2.0);
            a.fli(F1, 8.0);
            a.fadd(F2, F0, F1);
            a.fsqrt(F3, F2);
            a.fdiv(F4, F1, F0);
            a.fcmplt(T0, F0, F1);
            a.fcvtfi(T1, F1);
            a.fcvtif(F5, T1);
            a.halt();
        });
        assert_eq!(vm.freg(F2), 10.0);
        assert!((vm.freg(F3) - 10.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(vm.freg(F4), 4.0);
        assert_eq!(vm.reg(T0), 1);
        assert_eq!(vm.reg(T1), 8);
        assert_eq!(vm.freg(F5), 8.0);
    }

    #[test]
    fn branch_outcomes_and_targets() {
        let (_, trace) = run_prog(|a| {
            let skip = a.label();
            a.li(T0, 1);
            a.beq(T0, ZERO, skip); // not taken
            a.bne(T0, ZERO, skip); // taken
            a.li(T1, 111); // skipped
            a.bind(skip);
            a.halt();
        });
        let branches: Vec<_> = trace.iter().filter(|d| d.class == InstClass::Branch).collect();
        assert_eq!(branches.len(), 2);
        assert!(!branches[0].ctrl.unwrap().taken);
        assert!(branches[1].ctrl.unwrap().taken);
        // Not-taken target is the fall-through pc.
        assert_eq!(branches[0].ctrl.unwrap().target, branches[0].pc + INST_BYTES);
    }

    #[test]
    fn call_and_ret() {
        let (vm, trace) = run_prog(|a| {
            let (f, after) = (a.label(), a.label());
            a.li(A0, 20);
            a.call(f);
            a.jmp(after);
            a.bind(f);
            a.addi(A0, A0, 22);
            a.ret();
            a.bind(after);
            a.halt();
        });
        assert_eq!(vm.reg(A0), 42);
        let call = trace.iter().find(|d| d.dst == Some(RegRef::Int(31))).unwrap();
        assert_eq!(call.class, InstClass::Jump);
        assert!(trace.iter().any(|d| d.srcs[0] == Some(RegRef::Int(31))));
    }

    #[test]
    fn fuel_exhaustion_and_resume() {
        let mut a = Asm::new();
        let head = a.label();
        a.bind(head);
        a.addi(T0, T0, 1);
        a.slti(T1, T0, 100);
        a.bne(T1, ZERO, head);
        a.halt();
        let mut vm = Vm::new(a.assemble().unwrap());
        let mut sink = CountingSink::default();
        assert_eq!(vm.run(&mut sink, 10).unwrap(), RunExit::FuelExhausted);
        assert_eq!(sink.retired(), 10);
        assert_eq!(vm.run(&mut sink, u64::MAX / 2).unwrap(), RunExit::Halted);
        assert_eq!(vm.reg(T0), 100);
    }

    #[test]
    fn bad_indirect_target_errors() {
        let mut a = Asm::new();
        a.li(T0, 3); // unaligned, below base
        a.jr(T0);
        a.halt();
        let mut vm = Vm::new(a.assemble().unwrap());
        let mut sink = CountingSink::default();
        assert_eq!(vm.run(&mut sink, 100), Err(VmError::BadPc(3)));
        // The instruction retired before the fault is flushed to the sink.
        assert_eq!(sink.retired(), 1);
    }

    #[test]
    fn block_delivery_concatenates_to_the_per_instruction_stream() {
        #[derive(Default)]
        struct Blocks {
            insts: Vec<DynInst>,
            sizes: Vec<usize>,
        }
        impl TraceSink for Blocks {
            fn retire(&mut self, _inst: &DynInst) {
                panic!("vm must deliver through retire_block");
            }
            fn retire_block(&mut self, block: &[DynInst]) {
                self.sizes.push(block.len());
                self.insts.extend_from_slice(block);
            }
        }
        let build = |a: &mut Asm| {
            let head = a.label();
            a.li(T0, 0);
            a.li(T2, 0x9000);
            a.bind(head);
            a.st8(T0, T2, 0);
            a.ld8(T3, T2, 0);
            a.addi(T0, T0, 1);
            a.addi(T2, T2, 8);
            a.slti(T1, T0, 400);
            a.bne(T1, ZERO, head);
            a.halt();
        };
        let (_, per_inst) = run_prog(build);
        let mut a = Asm::new();
        build(&mut a);
        let mut vm = Vm::new(a.assemble().unwrap());
        let mut sink = Blocks::default();
        assert_eq!(vm.run(&mut sink, 1_000_000).unwrap(), RunExit::Halted);
        assert_eq!(sink.insts, per_inst);
        assert!(sink.sizes.iter().all(|&n| n > 0 && n <= BATCH_CAPACITY));
        // A loop this long must need more than one block.
        assert!(sink.sizes.len() > 1, "sizes = {:?}", sink.sizes);
    }

    #[test]
    fn resume_after_fuel_exhaustion_loses_no_instructions() {
        let mut a = Asm::new();
        let head = a.label();
        a.bind(head);
        a.addi(T0, T0, 1);
        a.slti(T1, T0, 500);
        a.bne(T1, ZERO, head);
        a.halt();
        let mut vm = Vm::new(a.assemble().unwrap());
        let mut sink = CountingSink::default();
        // Fuel boundaries that don't line up with block or loop boundaries.
        let mut total = 0u64;
        for fuel in [1u64, 7, 100, 300, u64::MAX / 2] {
            let exit = vm.run(&mut sink, fuel).unwrap();
            total = vm.retired();
            if exit == RunExit::Halted {
                break;
            }
        }
        assert_eq!(sink.retired(), total);
        assert_eq!(vm.reg(T0), 500);
    }

    #[test]
    fn falling_off_the_end_errors() {
        let mut a = Asm::new();
        a.li(T0, 1);
        let mut vm = Vm::new(a.assemble().unwrap());
        let mut sink = CountingSink::default();
        assert!(matches!(vm.run(&mut sink, 100), Err(VmError::BadPc(_))));
    }

    #[test]
    fn static_class_matches_retired_class() {
        // Every retired DynInst must carry exactly Op::class() of its
        // static instruction — the parity the static-mix report rests on.
        let (vm, trace) = run_prog(|a| {
            let skip = a.label();
            a.li(T0, 3);
            a.li(T1, 0x8000);
            a.fli(F0, 1.5);
            a.mul(T2, T0, T0);
            a.fadd(F1, F0, F0);
            a.st8(T2, T1, 0);
            a.ld8(T3, T1, 0);
            a.stf(F1, T1, 8);
            a.beq(T3, ZERO, skip);
            a.bind(skip);
            a.fcvtfi(T4, F1);
            a.halt();
        });
        for d in &trace {
            let idx = vm.program().idx_of(d.pc);
            assert_eq!(d.class, vm.program().insts()[idx].class(), "pc {:#x}", d.pc);
        }
    }

    #[test]
    fn determinism_same_program_same_trace() {
        let build = |a: &mut Asm| {
            let head = a.label();
            a.li(T0, 0);
            a.li(T2, 0x9000);
            a.bind(head);
            a.st8(T0, T2, 0);
            a.ld8(T3, T2, 0);
            a.addi(T0, T0, 1);
            a.addi(T2, T2, 8);
            a.slti(T1, T0, 50);
            a.bne(T1, ZERO, head);
            a.halt();
        };
        let (_, t1) = run_prog(build);
        let (_, t2) = run_prog(build);
        assert_eq!(t1, t2);
    }
}

//! Trace recording and replay.
//!
//! The paper's cost argument (110 machine-days of instrumentation) is about
//! re-running benchmarks once per analysis. Recording the retired-
//! instruction stream once and replaying it into any number of
//! [`TraceSink`]s removes the re-execution cost entirely: a [`Trace`] is a
//! faithful stand-in for the original run, in memory or on disk (compact
//! binary encoding, ~11-27 bytes per instruction).

use crate::inst::{CtrlInfo, DynInst, InstClass, MemAccess, RegRef};
use crate::vm::TraceSink;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A recorded dynamic instruction stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<DynInst>,
}

/// A [`TraceSink`] that records every retired instruction.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    trace: Trace,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the recorder into the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl TraceSink for TraceRecorder {
    fn retire(&mut self, inst: &DynInst) {
        self.trace.events.push(*inst);
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        self.trace.events.extend_from_slice(block);
    }
}

/// Errors while decoding a serialized trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The byte stream is not a valid trace encoding.
    Malformed(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

const MAGIC: &[u8; 8] = b"MICATRC1";
const NO_REG: u8 = 0xff;

fn class_code(c: InstClass) -> u8 {
    match c {
        InstClass::IntAlu => 0,
        InstClass::IntMul => 1,
        InstClass::Fp => 2,
        InstClass::Load => 3,
        InstClass::Store => 4,
        InstClass::Branch => 5,
        InstClass::Jump => 6,
    }
}

fn class_from(code: u8) -> Option<InstClass> {
    Some(match code {
        0 => InstClass::IntAlu,
        1 => InstClass::IntMul,
        2 => InstClass::Fp,
        3 => InstClass::Load,
        4 => InstClass::Store,
        5 => InstClass::Branch,
        6 => InstClass::Jump,
        _ => return None,
    })
}

fn reg_code(r: Option<RegRef>) -> u8 {
    match r {
        None => NO_REG,
        Some(r) => r.unified() as u8,
    }
}

fn reg_from(code: u8) -> Result<Option<RegRef>, TraceError> {
    match code {
        NO_REG => Ok(None),
        0..=31 => Ok(Some(RegRef::Int(code))),
        32..=63 => Ok(Some(RegRef::Fp(code - 32))),
        _ => Err(TraceError::Malformed("register code out of range")),
    }
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    pub fn events(&self) -> &[DynInst] {
        &self.events
    }

    /// Feed every recorded instruction to `sink`, in order, one
    /// [`TraceSink::retire`] call per instruction — the reference delivery
    /// path the batch backends are verified against.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        for e in &self.events {
            sink.retire(e);
        }
    }

    /// Feed the recorded stream to `sink` in blocks of at most
    /// `block_size` instructions via [`TraceSink::retire_block`].
    ///
    /// For any `block_size >= 1` the sink observes exactly the stream
    /// [`Trace::replay`] delivers (same instructions, same order); only the
    /// delivery granularity changes. `block_size` of zero is rounded up
    /// to one.
    pub fn replay_blocks<S: TraceSink + ?Sized>(&self, sink: &mut S, block_size: usize) {
        for chunk in self.events.chunks(block_size.max(1)) {
            sink.retire_block(chunk);
        }
    }

    /// Serialize to the compact binary encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            out.extend_from_slice(&e.pc.to_le_bytes());
            out.push(class_code(e.class));
            out.push(reg_code(e.dst));
            for s in e.srcs {
                out.push(reg_code(s));
            }
            let mut flags = 0u8;
            if let Some(m) = e.mem {
                flags |= 1;
                if m.is_store {
                    flags |= 2;
                }
            }
            if let Some(c) = e.ctrl {
                flags |= 4;
                if c.taken {
                    flags |= 8;
                }
                if c.conditional {
                    flags |= 16;
                }
            }
            out.push(flags);
            if let Some(m) = e.mem {
                out.extend_from_slice(&m.addr.to_le_bytes());
                out.push(m.size as u8);
            }
            if let Some(c) = e.ctrl {
                out.extend_from_slice(&c.target.to_le_bytes());
            }
        }
        out
    }

    /// Decode the binary encoding produced by [`Trace::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`] on any structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], TraceError> {
            if *pos + n > bytes.len() {
                return Err(TraceError::Malformed("truncated"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != MAGIC {
            return Err(TraceError::Malformed("bad magic"));
        }
        let count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
        let mut events = Vec::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let pc = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
            let class = class_from(take(&mut pos, 1)?[0])
                .ok_or(TraceError::Malformed("bad class code"))?;
            let dst = reg_from(take(&mut pos, 1)?[0])?;
            let mut srcs = [None; 3];
            for s in &mut srcs {
                *s = reg_from(take(&mut pos, 1)?[0])?;
            }
            let flags = take(&mut pos, 1)?[0];
            let mem = if flags & 1 != 0 {
                let addr = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
                let size = take(&mut pos, 1)?[0] as u64;
                Some(MemAccess { addr, size, is_store: flags & 2 != 0 })
            } else {
                None
            };
            let ctrl = if flags & 4 != 0 {
                let target = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
                Some(CtrlInfo { taken: flags & 8 != 0, target, conditional: flags & 16 != 0 })
            } else {
                None
            };
            events.push(DynInst { pc, class, dst, srcs, mem, ctrl });
        }
        if pos != bytes.len() {
            return Err(TraceError::Malformed("trailing bytes"));
        }
        Ok(Trace { events })
    }

    /// Write the trace to a file atomically (temp-then-rename with bounded
    /// retry), so a crash mid-save leaves the previous trace intact rather
    /// than a truncated binary that [`Trace::load`] would reject.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors once the retry budget is exhausted.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        mica_fault::io::atomic_write_retry("tinyisa.trace", path, &self.to_bytes())
    }

    /// Read a trace from a file.
    ///
    /// # Errors
    ///
    /// See [`TraceError`].
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        Self::from_bytes(&fs::read(path)?)
    }
}

impl FromIterator<DynInst> for Trace {
    fn from_iter<I: IntoIterator<Item = DynInst>>(iter: I) -> Self {
        Trace { events: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::*;
    use crate::{Asm, Vm};

    fn record_sample() -> Trace {
        let mut a = Asm::new();
        let head = a.label();
        a.li(T0, 0);
        a.li(T2, 0x9000);
        a.bind(head);
        a.ld8(T3, T2, 0);
        a.fadd(F1, F0, F0);
        a.st8(T3, T2, 8);
        a.addi(T0, T0, 1);
        a.slti(T1, T0, 50);
        a.bne(T1, ZERO, head);
        a.halt();
        let mut rec = TraceRecorder::new();
        Vm::new(a.assemble().unwrap()).run(&mut rec, 100_000).unwrap();
        rec.into_trace()
    }

    #[test]
    fn recorder_captures_every_retired_instruction() {
        let t = record_sample();
        assert_eq!(t.len(), 2 + 50 * 6 + 1);
    }

    #[test]
    fn binary_round_trip_is_lossless() {
        let t = record_sample();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn replay_equals_live_analysis() {
        use crate::vm::CountingSink;
        let t = record_sample();
        let mut sink = CountingSink::default();
        t.replay(&mut sink);
        assert_eq!(sink.retired() as usize, t.len());
    }

    #[test]
    fn replay_blocks_matches_replay_for_any_block_size() {
        let t = record_sample();
        let mut reference = TraceRecorder::new();
        t.replay(&mut reference);
        let reference = reference.into_trace();
        for block_size in [0usize, 1, 2, 3, 7, 64, 1 << 20] {
            let mut rec = TraceRecorder::new();
            t.replay_blocks(&mut rec, block_size);
            assert_eq!(rec.into_trace(), reference, "block_size = {block_size}");
        }
    }

    #[test]
    fn file_round_trip() {
        let t = record_sample();
        let path = std::env::temp_dir().join("tinyisa_trace_test.bin");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_errors_propagate_and_leave_no_temp_file() {
        let t = record_sample();
        // The destination's parent is a regular file, so the staged temp
        // write cannot succeed; the error must reach the caller.
        let dir = std::env::temp_dir().join(format!("tinyisa_save_err_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("not_a_dir");
        std::fs::write(&blocker, b"file, not dir").unwrap();
        let path = blocker.join("trace.bin");
        t.save(&path).unwrap_err();
        assert_eq!(std::fs::read(&blocker).unwrap(), b"file, not dir");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_replaces_an_existing_trace_atomically() {
        let t = record_sample();
        let dir = std::env::temp_dir().join(format!("tinyisa_save_repl_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.bin");
        std::fs::write(&path, b"stale garbage").unwrap();
        t.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), t);
        assert!(
            !mica_fault::io::tmp_path(&path).exists(),
            "temp file renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(matches!(
            Trace::from_bytes(b"not a trace"),
            Err(TraceError::Malformed(_))
        ));
        let mut bytes = record_sample().to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(Trace::from_bytes(&bytes), Err(TraceError::Malformed(_))));
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(Trace::from_bytes(&bytes).is_err());
    }

    #[test]
    fn encoding_is_compact() {
        let t = record_sample();
        let bytes = t.to_bytes();
        let per_inst = (bytes.len() - 16) as f64 / t.len() as f64;
        assert!(per_inst < 24.0, "bytes/inst = {per_inst}");
    }
}

//! Disassembly: human-readable listings of programs.

use crate::asm::Program;
use crate::inst::{FCmpOp, MemWidth, Op};
use std::fmt::Write as _;

fn width_suffix(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B1 => "1",
        MemWidth::B2 => "2",
        MemWidth::B4 => "4",
        MemWidth::B8 => "8",
    }
}

/// Render one instruction as assembly text; branch targets are shown as
/// absolute byte addresses computed against `prog`.
pub fn disassemble_op(prog: &Program, op: &Op) -> String {
    let t = |idx: &usize| format!("{:#x}", prog.pc_of(*idx));
    match op {
        Op::Add(d, a, b) => format!("add {d}, {a}, {b}"),
        Op::Sub(d, a, b) => format!("sub {d}, {a}, {b}"),
        Op::And(d, a, b) => format!("and {d}, {a}, {b}"),
        Op::Or(d, a, b) => format!("or {d}, {a}, {b}"),
        Op::Xor(d, a, b) => format!("xor {d}, {a}, {b}"),
        Op::Sll(d, a, b) => format!("sll {d}, {a}, {b}"),
        Op::Srl(d, a, b) => format!("srl {d}, {a}, {b}"),
        Op::Sra(d, a, b) => format!("sra {d}, {a}, {b}"),
        Op::Slt(d, a, b) => format!("slt {d}, {a}, {b}"),
        Op::Sltu(d, a, b) => format!("sltu {d}, {a}, {b}"),
        Op::Addi(d, a, i) => format!("addi {d}, {a}, {i}"),
        Op::Andi(d, a, i) => format!("andi {d}, {a}, {i}"),
        Op::Ori(d, a, i) => format!("ori {d}, {a}, {i}"),
        Op::Xori(d, a, i) => format!("xori {d}, {a}, {i}"),
        Op::Slli(d, a, sh) => format!("slli {d}, {a}, {sh}"),
        Op::Srli(d, a, sh) => format!("srli {d}, {a}, {sh}"),
        Op::Srai(d, a, sh) => format!("srai {d}, {a}, {sh}"),
        Op::Slti(d, a, i) => format!("slti {d}, {a}, {i}"),
        Op::Li(d, i) => format!("li {d}, {i}"),
        Op::Mul(d, a, b) => format!("mul {d}, {a}, {b}"),
        Op::Mulh(d, a, b) => format!("mulh {d}, {a}, {b}"),
        Op::Div(d, a, b) => format!("div {d}, {a}, {b}"),
        Op::Rem(d, a, b) => format!("rem {d}, {a}, {b}"),
        Op::Fadd(d, a, b) => format!("fadd {d}, {a}, {b}"),
        Op::Fsub(d, a, b) => format!("fsub {d}, {a}, {b}"),
        Op::Fmul(d, a, b) => format!("fmul {d}, {a}, {b}"),
        Op::Fdiv(d, a, b) => format!("fdiv {d}, {a}, {b}"),
        Op::Fsqrt(d, a) => format!("fsqrt {d}, {a}"),
        Op::Fabs(d, a) => format!("fabs {d}, {a}"),
        Op::Fneg(d, a) => format!("fneg {d}, {a}"),
        Op::Fmin(d, a, b) => format!("fmin {d}, {a}, {b}"),
        Op::Fmax(d, a, b) => format!("fmax {d}, {a}, {b}"),
        Op::Fli(d, v) => format!("fli {d}, {v}"),
        Op::Fmov(d, a) => format!("fmov {d}, {a}"),
        Op::Fcvtif(d, a) => format!("fcvt.i.f {d}, {a}"),
        Op::Fcvtfi(d, a) => format!("fcvt.f.i {d}, {a}"),
        Op::Fcmp(d, a, b, c) => {
            let op = match c {
                FCmpOp::Lt => "fcmplt",
                FCmpOp::Le => "fcmple",
                FCmpOp::Eq => "fcmpeq",
            };
            format!("{op} {d}, {a}, {b}")
        }
        Op::Ld(d, b, off, w) => format!("ld{} {d}, {off}({b})", width_suffix(*w)),
        Op::St(s, b, off, w) => format!("st{} {s}, {off}({b})", width_suffix(*w)),
        Op::Ldf(d, b, off) => format!("ldf {d}, {off}({b})"),
        Op::Stf(s, b, off) => format!("stf {s}, {off}({b})"),
        Op::Beq(a, b, i) => format!("beq {a}, {b}, {}", t(i)),
        Op::Bne(a, b, i) => format!("bne {a}, {b}, {}", t(i)),
        Op::Blt(a, b, i) => format!("blt {a}, {b}, {}", t(i)),
        Op::Bge(a, b, i) => format!("bge {a}, {b}, {}", t(i)),
        Op::Bltu(a, b, i) => format!("bltu {a}, {b}, {}", t(i)),
        Op::Bgeu(a, b, i) => format!("bgeu {a}, {b}, {}", t(i)),
        Op::Jmp(i) => format!("jmp {}", t(i)),
        Op::Jr(r) => format!("jr {r}"),
        Op::Call(i) => format!("call {}", t(i)),
        Op::Callr(r) => format!("callr {r}"),
        Op::Ret => "ret".to_string(),
        Op::Halt => "halt".to_string(),
    }
}

impl Program {
    /// Render the whole program as an address-annotated listing.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.insts().iter().enumerate() {
            let _ = writeln!(out, "{:#08x}:  {}", self.pc_of(i), disassemble_op(self, op));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::regs::*;
    use crate::Asm;

    #[test]
    fn listing_covers_every_instruction_with_addresses() {
        let mut a = Asm::new();
        let l = a.label();
        a.li(T0, 42);
        a.bind(l);
        a.addi(T0, T0, -1);
        a.ld8(T1, T0, 16);
        a.stf(F0, T0, -8);
        a.fcmplt(T2, F0, F1);
        a.bne(T0, ZERO, l);
        a.halt();
        let p = a.assemble().unwrap();
        let text = p.disassemble();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), p.len());
        assert!(lines[0].contains("li x7, 42"), "{}", lines[0]);
        assert!(lines[1].contains("addi x7, x7, -1"));
        assert!(lines[2].contains("ld8 x8, 16(x7)"));
        assert!(lines[3].contains("stf f0, -8(x7)"));
        assert!(lines[4].contains("fcmplt x9, f0, f1"));
        // The branch target is the absolute pc of the bound label (inst 1).
        assert!(lines[5].contains(&format!("{:#x}", p.pc_of(1))), "{}", lines[5]);
        assert!(lines[6].contains("halt"));
        // Every line leads with its own pc.
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{:#08x}", p.pc_of(i))), "{line}");
        }
    }

    #[test]
    fn every_op_variant_disassembles() {
        // Emit (at least) one instruction per `Op` variant through the
        // assembler, so the listing below is exactly what `mica-verify`
        // findings will render. If a variant is added to `Op`, the
        // discriminant count at the bottom forces this test to grow with it.
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.add(T0, T1, T2);
        a.sub(T0, T1, T2);
        a.and(T0, T1, T2);
        a.or(T0, T1, T2);
        a.xor(T0, T1, T2);
        a.sll(T0, T1, T2);
        a.srl(T0, T1, T2);
        a.sra(T0, T1, T2);
        a.slt(T0, T1, T2);
        a.sltu(T0, T1, T2);
        a.addi(T0, T1, -5);
        a.andi(T0, T1, 0xff);
        a.ori(T0, T1, 1);
        a.xori(T0, T1, 2);
        a.slli(T0, T1, 3);
        a.srli(T0, T1, 4);
        a.srai(T0, T1, 5);
        a.slti(T0, T1, 6);
        a.li(T0, 42);
        a.mul(T0, T1, T2);
        a.mulh(T0, T1, T2);
        a.div(T0, T1, T2);
        a.rem(T0, T1, T2);
        a.fadd(F0, F1, F2);
        a.fsub(F0, F1, F2);
        a.fmul(F0, F1, F2);
        a.fdiv(F0, F1, F2);
        a.fsqrt(F0, F1);
        a.fabs(F0, F1);
        a.fneg(F0, F1);
        a.fmin(F0, F1, F2);
        a.fmax(F0, F1, F2);
        a.fli(F0, 1.5);
        a.fmov(F0, F1);
        a.fcvtif(F0, T0);
        a.fcvtfi(T0, F0);
        a.fcmplt(T0, F0, F1);
        a.fcmple(T0, F0, F1);
        a.fcmpeq(T0, F0, F1);
        a.ld1(T0, T1, 1);
        a.ld2(T0, T1, 2);
        a.ld4(T0, T1, 4);
        a.ld8(T0, T1, 8);
        a.st1(T0, T1, 1);
        a.st2(T0, T1, 2);
        a.st4(T0, T1, 4);
        a.st8(T0, T1, 8);
        a.ldf(F0, T1, 16);
        a.stf(F0, T1, 16);
        a.beq(T0, T1, top);
        a.bne(T0, T1, top);
        a.blt(T0, T1, top);
        a.bge(T0, T1, top);
        a.bltu(T0, T1, top);
        a.bgeu(T0, T1, top);
        a.jmp(top);
        a.jr(T0);
        a.call(top);
        a.callr(T0);
        a.ret();
        a.halt();
        let p = a.assemble().unwrap();

        // Every `Op` discriminant is present (4 Ld and 4 St widths share a
        // discriminant, as do the 3 fcmp predicates).
        let discriminants: std::collections::HashSet<_> =
            p.insts().iter().map(std::mem::discriminant).collect();
        assert_eq!(discriminants.len(), 53, "Op gained/lost variants: update this test");

        // No panic, no placeholder, and each line is real assembly text.
        for op in p.insts() {
            let text = crate::disassemble_op(&p, op);
            assert!(!text.is_empty());
            assert!(!text.contains('?') && !text.to_lowercase().contains("unknown"), "{text}");
            let mnemonic = text.split_whitespace().next().unwrap();
            assert!(
                mnemonic.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'),
                "suspicious mnemonic in {text:?}"
            );
        }

        // Distinct operand spellings survive: width suffixes, fcmp
        // predicates, and both register files.
        let listing = p.disassemble();
        for needle in [
            "ld1 ", "ld2 ", "ld4 ", "ld8 ", "st1 ", "st2 ", "st4 ", "st8 ", "ldf ", "stf ",
            "fcmplt ", "fcmple ", "fcmpeq ", "fcvt.i.f ", "fcvt.f.i ", "jr x7", "callr x7", "ret",
            "halt", "fli f0, 1.5",
        ] {
            assert!(listing.contains(needle), "listing missing {needle:?}");
        }
    }

    #[test]
    fn real_kernel_listings_do_not_panic() {
        // Smoke: disassembly of a nontrivial generated program.
        let mut a = Asm::new();
        let (f, after) = (a.label(), a.label());
        a.call(f);
        a.jmp(after);
        a.bind(f);
        a.mul(T0, T1, T2);
        a.ret();
        a.bind(after);
        a.halt();
        let p = a.assemble().unwrap();
        let text = p.disassemble();
        assert!(text.contains("call"));
        assert!(text.contains("ret"));
    }
}

//! A label-resolving assembler builder for [`Op`] programs.

use crate::inst::{FCmpOp, MemWidth, Op};
use crate::{FReg, Reg, INST_BYTES};
use std::fmt;

/// A forward-referencable code label created by [`Asm::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced when assembling a program.
///
/// Label errors identify the *referencing site* — the instruction index and
/// its resolved pc — so a kernel builder emitting hundreds of instructions
/// can be debugged without bisecting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound to a position. The site is
    /// the first instruction referencing it.
    UnboundLabel {
        /// Label id (in allocation order).
        label: usize,
        /// Index of the first instruction referencing the label.
        inst_idx: usize,
        /// Byte address of that instruction.
        pc: u64,
    },
    /// A label resolved to a position past the last instruction, so the
    /// transfer would leave the text segment. (This happens when a label is
    /// bound after the final emitted instruction.)
    TargetOutOfText {
        /// Label id (in allocation order).
        label: usize,
        /// Index of the first instruction referencing the label.
        inst_idx: usize,
        /// Byte address of that instruction.
        pc: u64,
        /// The out-of-range instruction index the label resolved to.
        target_idx: usize,
    },
    /// A label was bound more than once.
    RedefinedLabel(usize),
    /// The program contains no instructions.
    EmptyProgram,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label, inst_idx, pc } => write!(
                f,
                "label L{label} referenced at inst {inst_idx} (pc {pc:#x}) but never bound"
            ),
            AsmError::TargetOutOfText { label, inst_idx, pc, target_idx } => write!(
                f,
                "label L{label} referenced at inst {inst_idx} (pc {pc:#x}) resolves to \
                 inst {target_idx}, past the end of the text segment"
            ),
            AsmError::RedefinedLabel(i) => write!(f, "label L{i} bound twice"),
            AsmError::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An assembled, label-resolved program ready to run on [`crate::Vm`].
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Op>,
    base: u64,
}

impl Program {
    /// The instructions, in program order.
    pub fn insts(&self) -> &[Op] {
        &self.insts
    }

    /// Base byte address of the text segment.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions (never produced by [`Asm`]).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Byte address of the instruction at `idx`.
    pub fn pc_of(&self, idx: usize) -> u64 {
        self.base + idx as u64 * INST_BYTES
    }

    /// Instruction index of the byte address `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not a valid instruction address of this program.
    pub fn idx_of(&self, pc: u64) -> usize {
        assert!(pc >= self.base && (pc - self.base).is_multiple_of(INST_BYTES), "bad pc {pc:#x}");
        let idx = ((pc - self.base) / INST_BYTES) as usize;
        assert!(idx < self.insts.len(), "pc {pc:#x} out of text segment");
        idx
    }
}

/// Builder that emits instructions and resolves labels into a [`Program`].
///
/// Every instruction has a dedicated method; control transfers take [`Label`]
/// operands which may be bound before or after use. See the crate-level
/// example.
#[derive(Debug, Default)]
pub struct Asm {
    insts: Vec<Op>,
    /// `labels[i]` is the instruction index label `i` is bound to.
    labels: Vec<Option<usize>>,
    /// Instructions whose target field holds a label id to be patched.
    fixups: Vec<(usize, usize)>,
    base: u64,
}

impl Asm {
    /// Create an assembler with the default text base address (`0x1_0000`).
    pub fn new() -> Self {
        Asm { base: 0x1_0000, ..Asm::default() }
    }

    /// Create an assembler with a custom text base address.
    pub fn with_base(base: u64) -> Self {
        Asm { base, ..Asm::default() }
    }

    /// Allocate a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (this is a programming error in
    /// the kernel being assembled; [`Asm::assemble`] would also report it).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label L{} bound twice", label.0);
        *slot = Some(self.insts.len());
    }

    /// Current number of emitted instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing was emitted yet.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    fn emit(&mut self, op: Op) {
        self.insts.push(op);
    }

    fn emit_ctrl(&mut self, op: Op, label: Label) {
        self.fixups.push((self.insts.len(), label.0));
        self.insts.push(op);
    }

    /// Labels that were bound but never referenced by any control transfer.
    ///
    /// An unused label is not an error — [`Asm::assemble`] accepts it — but
    /// in a generated kernel it usually marks a control path the builder
    /// meant to emit and didn't; `mica-verify`'s structural lints surface it
    /// through this accessor.
    pub fn unused_labels(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(id, bound)| {
                bound.is_some() && !self.fixups.iter().any(|&(_, l)| l == *id)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Resolve all labels and produce the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound, [`AsmError::TargetOutOfText`] if a referenced label resolved
    /// past the last instruction, and [`AsmError::EmptyProgram`] for an
    /// empty program. Label errors report the first referencing site.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        if self.insts.is_empty() {
            return Err(AsmError::EmptyProgram);
        }
        for &(inst_idx, label_id) in &self.fixups {
            let pc = self.base + inst_idx as u64 * INST_BYTES;
            let target = self.labels[label_id].ok_or(AsmError::UnboundLabel {
                label: label_id,
                inst_idx,
                pc,
            })?;
            if target >= self.insts.len() {
                return Err(AsmError::TargetOutOfText {
                    label: label_id,
                    inst_idx,
                    pc,
                    target_idx: target,
                });
            }
            match &mut self.insts[inst_idx] {
                Op::Beq(_, _, t)
                | Op::Bne(_, _, t)
                | Op::Blt(_, _, t)
                | Op::Bge(_, _, t)
                | Op::Bltu(_, _, t)
                | Op::Bgeu(_, _, t)
                | Op::Jmp(t)
                | Op::Call(t) => *t = target,
                other => unreachable!("fixup on non-control op {other:?}"),
            }
        }
        Ok(Program { insts: self.insts, base: self.base })
    }

    // --- integer ALU ---
    pub fn add(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Add(d, a, b));
    }
    pub fn sub(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Sub(d, a, b));
    }
    pub fn and(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::And(d, a, b));
    }
    pub fn or(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Or(d, a, b));
    }
    pub fn xor(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Xor(d, a, b));
    }
    pub fn sll(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Sll(d, a, b));
    }
    pub fn srl(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Srl(d, a, b));
    }
    pub fn sra(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Sra(d, a, b));
    }
    pub fn slt(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Slt(d, a, b));
    }
    pub fn sltu(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Sltu(d, a, b));
    }
    pub fn addi(&mut self, d: Reg, a: Reg, imm: i64) {
        self.emit(Op::Addi(d, a, imm));
    }
    pub fn andi(&mut self, d: Reg, a: Reg, imm: i64) {
        self.emit(Op::Andi(d, a, imm));
    }
    pub fn ori(&mut self, d: Reg, a: Reg, imm: i64) {
        self.emit(Op::Ori(d, a, imm));
    }
    pub fn xori(&mut self, d: Reg, a: Reg, imm: i64) {
        self.emit(Op::Xori(d, a, imm));
    }
    pub fn slli(&mut self, d: Reg, a: Reg, sh: u8) {
        self.emit(Op::Slli(d, a, sh));
    }
    pub fn srli(&mut self, d: Reg, a: Reg, sh: u8) {
        self.emit(Op::Srli(d, a, sh));
    }
    pub fn srai(&mut self, d: Reg, a: Reg, sh: u8) {
        self.emit(Op::Srai(d, a, sh));
    }
    pub fn slti(&mut self, d: Reg, a: Reg, imm: i64) {
        self.emit(Op::Slti(d, a, imm));
    }
    pub fn li(&mut self, d: Reg, imm: i64) {
        self.emit(Op::Li(d, imm));
    }
    /// Register move, encoded as `addi d, a, 0`.
    pub fn mov(&mut self, d: Reg, a: Reg) {
        self.emit(Op::Addi(d, a, 0));
    }

    // --- integer multiply / divide ---
    pub fn mul(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Mul(d, a, b));
    }
    pub fn mulh(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Mulh(d, a, b));
    }
    pub fn div(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Div(d, a, b));
    }
    pub fn rem(&mut self, d: Reg, a: Reg, b: Reg) {
        self.emit(Op::Rem(d, a, b));
    }

    // --- floating point ---
    pub fn fadd(&mut self, d: FReg, a: FReg, b: FReg) {
        self.emit(Op::Fadd(d, a, b));
    }
    pub fn fsub(&mut self, d: FReg, a: FReg, b: FReg) {
        self.emit(Op::Fsub(d, a, b));
    }
    pub fn fmul(&mut self, d: FReg, a: FReg, b: FReg) {
        self.emit(Op::Fmul(d, a, b));
    }
    pub fn fdiv(&mut self, d: FReg, a: FReg, b: FReg) {
        self.emit(Op::Fdiv(d, a, b));
    }
    pub fn fsqrt(&mut self, d: FReg, a: FReg) {
        self.emit(Op::Fsqrt(d, a));
    }
    pub fn fabs(&mut self, d: FReg, a: FReg) {
        self.emit(Op::Fabs(d, a));
    }
    pub fn fneg(&mut self, d: FReg, a: FReg) {
        self.emit(Op::Fneg(d, a));
    }
    pub fn fmin(&mut self, d: FReg, a: FReg, b: FReg) {
        self.emit(Op::Fmin(d, a, b));
    }
    pub fn fmax(&mut self, d: FReg, a: FReg, b: FReg) {
        self.emit(Op::Fmax(d, a, b));
    }
    pub fn fli(&mut self, d: FReg, imm: f64) {
        self.emit(Op::Fli(d, imm));
    }
    pub fn fmov(&mut self, d: FReg, a: FReg) {
        self.emit(Op::Fmov(d, a));
    }
    pub fn fcvtif(&mut self, d: FReg, a: Reg) {
        self.emit(Op::Fcvtif(d, a));
    }
    pub fn fcvtfi(&mut self, d: Reg, a: FReg) {
        self.emit(Op::Fcvtfi(d, a));
    }
    /// `d = (a < b) as u64`
    pub fn fcmplt(&mut self, d: Reg, a: FReg, b: FReg) {
        self.emit(Op::Fcmp(d, a, b, FCmpOp::Lt));
    }
    /// `d = (a <= b) as u64`
    pub fn fcmple(&mut self, d: Reg, a: FReg, b: FReg) {
        self.emit(Op::Fcmp(d, a, b, FCmpOp::Le));
    }
    /// `d = (a == b) as u64`
    pub fn fcmpeq(&mut self, d: Reg, a: FReg, b: FReg) {
        self.emit(Op::Fcmp(d, a, b, FCmpOp::Eq));
    }

    // --- memory ---
    pub fn ld8(&mut self, d: Reg, base: Reg, off: i64) {
        self.emit(Op::Ld(d, base, off, MemWidth::B8));
    }
    pub fn ld4(&mut self, d: Reg, base: Reg, off: i64) {
        self.emit(Op::Ld(d, base, off, MemWidth::B4));
    }
    pub fn ld2(&mut self, d: Reg, base: Reg, off: i64) {
        self.emit(Op::Ld(d, base, off, MemWidth::B2));
    }
    pub fn ld1(&mut self, d: Reg, base: Reg, off: i64) {
        self.emit(Op::Ld(d, base, off, MemWidth::B1));
    }
    pub fn st8(&mut self, src: Reg, base: Reg, off: i64) {
        self.emit(Op::St(src, base, off, MemWidth::B8));
    }
    pub fn st4(&mut self, src: Reg, base: Reg, off: i64) {
        self.emit(Op::St(src, base, off, MemWidth::B4));
    }
    pub fn st2(&mut self, src: Reg, base: Reg, off: i64) {
        self.emit(Op::St(src, base, off, MemWidth::B2));
    }
    pub fn st1(&mut self, src: Reg, base: Reg, off: i64) {
        self.emit(Op::St(src, base, off, MemWidth::B1));
    }
    pub fn ldf(&mut self, d: FReg, base: Reg, off: i64) {
        self.emit(Op::Ldf(d, base, off));
    }
    pub fn stf(&mut self, src: FReg, base: Reg, off: i64) {
        self.emit(Op::Stf(src, base, off));
    }

    // --- control ---
    pub fn beq(&mut self, a: Reg, b: Reg, l: Label) {
        self.emit_ctrl(Op::Beq(a, b, 0), l);
    }
    pub fn bne(&mut self, a: Reg, b: Reg, l: Label) {
        self.emit_ctrl(Op::Bne(a, b, 0), l);
    }
    pub fn blt(&mut self, a: Reg, b: Reg, l: Label) {
        self.emit_ctrl(Op::Blt(a, b, 0), l);
    }
    pub fn bge(&mut self, a: Reg, b: Reg, l: Label) {
        self.emit_ctrl(Op::Bge(a, b, 0), l);
    }
    pub fn bltu(&mut self, a: Reg, b: Reg, l: Label) {
        self.emit_ctrl(Op::Bltu(a, b, 0), l);
    }
    pub fn bgeu(&mut self, a: Reg, b: Reg, l: Label) {
        self.emit_ctrl(Op::Bgeu(a, b, 0), l);
    }
    pub fn jmp(&mut self, l: Label) {
        self.emit_ctrl(Op::Jmp(0), l);
    }
    pub fn jr(&mut self, r: Reg) {
        self.emit(Op::Jr(r));
    }
    pub fn call(&mut self, l: Label) {
        self.emit_ctrl(Op::Call(0), l);
    }
    pub fn callr(&mut self, r: Reg) {
        self.emit(Op::Callr(r));
    }
    pub fn ret(&mut self) {
        self.emit(Op::Ret);
    }
    pub fn halt(&mut self) {
        self.emit(Op::Halt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::*;

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(Asm::new().assemble().unwrap_err(), AsmError::EmptyProgram);
    }

    #[test]
    fn unbound_label_reports_first_referencing_site() {
        let mut a = Asm::new();
        let l = a.label();
        a.li(T0, 1); // inst 0
        a.jmp(l); // inst 1: first reference
        a.jmp(l); // inst 2: second reference
        let err = a.assemble().unwrap_err();
        assert_eq!(err, AsmError::UnboundLabel { label: 0, inst_idx: 1, pc: 0x1_0000 + 4 });
        let msg = err.to_string();
        assert!(msg.contains("inst 1"), "{msg}");
        assert!(msg.contains("0x10004"), "{msg}");
    }

    #[test]
    fn label_bound_past_the_end_is_out_of_text() {
        let mut a = Asm::with_base(0x2000);
        let l = a.label();
        a.jmp(l); // inst 0
        a.halt(); // inst 1
        a.bind(l); // binds to inst 2 == len: off the end of text
        let err = a.assemble().unwrap_err();
        assert_eq!(
            err,
            AsmError::TargetOutOfText { label: 0, inst_idx: 0, pc: 0x2000, target_idx: 2 }
        );
        let msg = err.to_string();
        assert!(msg.contains("inst 0") && msg.contains("inst 2"), "{msg}");
    }

    #[test]
    fn redefined_label_renders_its_id() {
        assert_eq!(AsmError::RedefinedLabel(3).to_string(), "label L3 bound twice");
    }

    #[test]
    fn unused_labels_are_reported_but_allowed() {
        let mut a = Asm::new();
        let used = a.label();
        let unused = a.label();
        let unbound_unused = a.label(); // never bound, never referenced: ignored
        a.bind(used);
        a.li(T0, 1);
        a.bind(unused);
        a.jmp(used);
        assert_eq!(a.unused_labels(), vec![unused.0]);
        assert!(!a.unused_labels().contains(&unbound_unused.0));
        assert!(a.assemble().is_ok());
    }

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let back = a.label();
        let fwd = a.label();
        a.bind(back);
        a.li(T0, 1);
        a.jmp(fwd); // forward reference
        a.jmp(back); // backward reference
        a.bind(fwd);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.insts()[1], Op::Jmp(3));
        assert_eq!(p.insts()[2], Op::Jmp(0));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn pc_index_round_trip() {
        let mut a = Asm::with_base(0x4000);
        a.li(T0, 0);
        a.li(T1, 1);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.base(), 0x4000);
        for i in 0..p.len() {
            assert_eq!(p.idx_of(p.pc_of(i)), i);
        }
    }
}

//! Set-associative LRU caches.

use serde::{Deserialize, Serialize};

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// The EV56-like 8 KiB direct-mapped L1 (32-byte lines).
    pub fn ev56_l1() -> Self {
        CacheConfig { size: 8 * 1024, line: 32, assoc: 1 }
    }

    /// The EV56-like 96 KiB 3-way on-chip L2 (64-byte lines).
    pub fn ev56_l2() -> Self {
        CacheConfig { size: 96 * 1024, line: 64, assoc: 3 }
    }

    /// The EV67-like 64 KiB 2-way L1 (64-byte lines).
    pub fn ev67_l1() -> Self {
        CacheConfig { size: 64 * 1024, line: 64, assoc: 2 }
    }

    /// The EV67-like 2 MiB direct-mapped board-level L2 (64-byte lines).
    pub fn ev67_l2() -> Self {
        CacheConfig { size: 2 * 1024 * 1024, line: 64, assoc: 1 }
    }

    fn num_sets(&self) -> usize {
        self.size / (self.line * self.assoc)
    }
}

/// Access counters of a cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub accesses: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Misses per access, 0.0 when never accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    stamp: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// The model is purely a hit/miss filter (no dirty/writeback modeling): both
/// loads and stores allocate on miss, which matches the write-allocate
/// behavior assumed by the timing models. An optional next-line prefetcher
/// ([`Cache::with_next_line_prefetch`]) fills the sequentially following
/// line on every demand miss — fills are not counted as accesses.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Line>,
    set_shift: u32,
    set_mask: u64,
    stats: CacheStats,
    clock: u64,
    prefetch: bool,
}

impl Cache {
    /// Build a cache for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry does
    /// not divide evenly into at least one set.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line.is_power_of_two(), "line size must be a power of two");
        assert!(config.assoc >= 1, "associativity must be at least 1");
        let sets = config.num_sets();
        assert!(sets >= 1, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "number of sets must be a power of two");
        Cache {
            config,
            sets: vec![Line { tag: 0, valid: false, stamp: 0 }; sets * config.assoc],
            set_shift: config.line.trailing_zeros(),
            set_mask: sets as u64 - 1,
            stats: CacheStats::default(),
            clock: 0,
            prefetch: false,
        }
    }

    /// Enable next-line prefetching.
    pub fn with_next_line_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Access the line containing `addr`; returns `true` on hit. On a miss,
    /// the line is filled (evicting the LRU way), and — with prefetching
    /// enabled — the next sequential line is filled too.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let hit = self.touch(addr >> self.set_shift, true);
        if !hit {
            self.stats.misses += 1;
            if self.prefetch {
                self.touch((addr >> self.set_shift) + 1, true);
            }
        }
        hit
    }

    /// Probe or fill one line address; returns `true` on hit.
    fn touch(&mut self, line_addr: u64, fill: bool) -> bool {
        self.clock += 1;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let ways = &mut self.sets[set * self.config.assoc..(set + 1) * self.config.assoc];
        for way in ways.iter_mut() {
            if way.valid && way.tag == tag {
                way.stamp = self.clock;
                return true;
            }
        }
        if fill {
            let victim = ways
                .iter_mut()
                .min_by_key(|w| if w.valid { w.stamp } else { 0 })
                .expect("assoc >= 1");
            *victim = Line { tag, valid: true, stamp: self.clock };
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B lines = 256 B.
        Cache::new(CacheConfig { size: 256, line: 32, assoc: 2 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x101f)); // same 32-byte line
        assert!(!c.access(0x1020)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 lines * 32 B).
        let (a, b, d) = (0x0, 0x80, 0x100);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        assert!(!c.access(d)); // evicts b (LRU)
        assert!(c.access(a)); // a survived
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig { size: 128, line: 32, assoc: 1 });
        // Two addresses 128 bytes apart share a set in a 4-set DM cache.
        for _ in 0..10 {
            c.access(0x0);
            c.access(0x80);
        }
        assert_eq!(c.stats().misses, 20, "ping-pong thrashing misses every time");
    }

    #[test]
    fn working_set_smaller_than_cache_only_cold_misses() {
        let mut c = Cache::new(CacheConfig::ev56_l1());
        for round in 0..5 {
            for line in 0..128u64 {
                let hit = c.access(line * 32);
                if round > 0 {
                    assert!(hit);
                }
            }
        }
        assert_eq!(c.stats().misses, 128);
    }

    #[test]
    fn miss_rate_zero_when_unused() {
        let c = small();
        assert_eq!(c.stats().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = Cache::new(CacheConfig { size: 256, line: 24, assoc: 2 });
    }

    #[test]
    fn next_line_prefetch_halves_streaming_misses() {
        let mut plain = Cache::new(CacheConfig::ev56_l1());
        let mut pf = Cache::new(CacheConfig::ev56_l1()).with_next_line_prefetch();
        for i in 0..1000u64 {
            plain.access(i * 32);
            pf.access(i * 32);
        }
        assert_eq!(plain.stats().misses, 1000);
        assert!(pf.stats().misses <= 501, "{}", pf.stats().misses);
    }

    #[test]
    fn prefetch_does_not_change_hit_accounting() {
        let mut pf = Cache::new(CacheConfig::ev56_l1()).with_next_line_prefetch();
        pf.access(0x0);
        assert!(pf.access(0x20), "next line was prefetched");
        assert_eq!(pf.stats().accesses, 2, "prefetch fills are not accesses");
    }

    #[test]
    fn preset_geometries_construct() {
        for cfg in [
            CacheConfig::ev56_l1(),
            CacheConfig::ev56_l2(),
            CacheConfig::ev67_l1(),
            CacheConfig::ev67_l2(),
        ] {
            let c = Cache::new(cfg);
            assert_eq!(c.config(), cfg);
        }
    }
}

//! Hardware-realizable branch predictors for the timing models.
//!
//! Unlike the theoretical PPM predictors in `mica-core` (which measure a
//! microarchitecture-*independent* predictability bound), these are the
//! finite-table predictors of the simulated machines, and their accuracy is
//! a microarchitecture-*dependent* counter metric.

use crate::cache::CacheStats;

/// A predictor of conditional-branch outcomes.
pub trait BranchPredictor {
    /// Predict and train on one conditional branch; returns `true` if the
    /// prediction was correct.
    fn observe(&mut self, pc: u64, taken: bool) -> bool;

    /// Accumulated statistics (`misses` = mispredictions).
    fn stats(&self) -> CacheStats;
}

fn counter_update(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

/// A table of 2-bit saturating counters indexed by the branch PC — the
/// EV56-class predictor.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    counters: Vec<u8>,
    stats: CacheStats,
}

impl BimodalPredictor {
    /// A predictor with `entries` 2-bit counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        BimodalPredictor { counters: vec![1; entries], stats: CacheStats::default() }
    }

    /// The EV56-like 2048-entry table.
    pub fn ev56() -> Self {
        BimodalPredictor::new(2048)
    }
}

impl BranchPredictor for BimodalPredictor {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let idx = ((pc >> 2) as usize) & (self.counters.len() - 1);
        let prediction = self.counters[idx] >= 2;
        counter_update(&mut self.counters[idx], taken);
        self.stats.accesses += 1;
        let correct = prediction == taken;
        if !correct {
            self.stats.misses += 1;
        }
        correct
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// An EV67-class tournament predictor: a local component (per-branch history
/// indexing a counter table), a global gshare-style component, and a chooser
/// trained on which component was right.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    local_hist: Vec<u16>,
    local_counters: Vec<u8>,
    global_counters: Vec<u8>,
    chooser: Vec<u8>,
    global_hist: u64,
    stats: CacheStats,
}

/// Local history bits (EV67 uses 10).
const LOCAL_HIST_BITS: usize = 10;
/// Global history bits (EV67 uses 12).
const GLOBAL_HIST_BITS: usize = 12;

impl TournamentPredictor {
    /// The EV67-like configuration: 1K local histories of 10 bits, 1K local
    /// counters, 4K global counters, 4K choosers.
    pub fn ev67() -> Self {
        TournamentPredictor {
            local_hist: vec![0; 1024],
            local_counters: vec![1; 1 << LOCAL_HIST_BITS],
            global_counters: vec![1; 1 << GLOBAL_HIST_BITS],
            chooser: vec![1; 1 << GLOBAL_HIST_BITS],
            global_hist: 0,
            stats: CacheStats::default(),
        }
    }
}

impl Default for TournamentPredictor {
    fn default() -> Self {
        Self::ev67()
    }
}

impl BranchPredictor for TournamentPredictor {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let pc_idx = ((pc >> 2) as usize) & (self.local_hist.len() - 1);
        let lhist = self.local_hist[pc_idx] as usize & ((1 << LOCAL_HIST_BITS) - 1);
        let local_pred = self.local_counters[lhist] >= 2;

        let gmask = (1usize << GLOBAL_HIST_BITS) - 1;
        let gidx = ((self.global_hist as usize) ^ ((pc >> 2) as usize)) & gmask;
        let global_pred = self.global_counters[gidx] >= 2;

        let cidx = (self.global_hist as usize) & gmask;
        let use_global = self.chooser[cidx] >= 2;
        let prediction = if use_global { global_pred } else { local_pred };

        // Train the chooser toward whichever component was right.
        if global_pred != local_pred {
            counter_update(&mut self.chooser[cidx], global_pred == taken);
        }
        counter_update(&mut self.local_counters[lhist], taken);
        counter_update(&mut self.global_counters[gidx], taken);
        self.local_hist[pc_idx] = (self.local_hist[pc_idx] << 1) | taken as u16;
        self.global_hist = (self.global_hist << 1) | taken as u64;

        self.stats.accesses += 1;
        let correct = prediction == taken;
        if !correct {
            self.stats.misses += 1;
        }
        correct
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<P: BranchPredictor>(p: &mut P, outcomes: impl IntoIterator<Item = (u64, bool)>) {
        for (pc, t) in outcomes {
            p.observe(pc, t);
        }
    }

    #[test]
    fn bimodal_learns_biased_branch() {
        let mut p = BimodalPredictor::ev56();
        run(&mut p, (0..1000).map(|_| (0x400u64, true)));
        assert!(p.stats().miss_rate() < 0.01);
    }

    #[test]
    fn bimodal_poor_on_alternation() {
        let mut p = BimodalPredictor::ev56();
        run(&mut p, (0..1000).map(|i| (0x400u64, i % 2 == 0)));
        assert!(p.stats().miss_rate() > 0.4, "bimodal cannot track T/NT alternation");
    }

    #[test]
    fn tournament_learns_alternation() {
        let mut p = TournamentPredictor::ev67();
        run(&mut p, (0..4000).map(|i| (0x400u64, i % 2 == 0)));
        assert!(p.stats().miss_rate() < 0.2, "history-based predictor tracks alternation");
    }

    #[test]
    fn tournament_beats_bimodal_on_patterned_branches() {
        let pattern = |i: u64| (i % 5) < 3; // period-5 pattern
        let mut bi = BimodalPredictor::ev56();
        let mut to = TournamentPredictor::ev67();
        run(&mut bi, (0..10_000).map(|i| (0x400u64, pattern(i))));
        run(&mut to, (0..10_000).map(|i| (0x400u64, pattern(i))));
        assert!(to.stats().miss_rate() < bi.stats().miss_rate());
    }

    #[test]
    fn aliasing_degrades_bimodal() {
        // Two opposite-biased branches 2048*4 bytes apart collide in the
        // 2048-entry table.
        let mut p = BimodalPredictor::new(16);
        run(
            &mut p,
            (0..2000).flat_map(|_| [(0x0u64, true), (16 * 4, false)]),
        );
        assert!(p.stats().miss_rate() > 0.4, "aliased opposite branches thrash the counter");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_rejected() {
        let _ = BimodalPredictor::new(100);
    }
}

//! A fully-associative LRU translation lookaside buffer.

use crate::cache::CacheStats;

/// A fully-associative, LRU data TLB.
///
/// The EV56's DTB holds 64 entries of 8 KiB pages; those are the defaults of
/// [`Tlb::ev56_dtlb`].
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (vpn, stamp)
    capacity: usize,
    page_shift: u32,
    stats: CacheStats,
    clock: u64,
}

impl Tlb {
    /// A TLB holding `capacity` pages of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `page_size` is not a power of two.
    pub fn new(capacity: usize, page_size: u64) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_shift: page_size.trailing_zeros(),
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// The EV56-like 64-entry, 8 KiB-page data TLB.
    pub fn ev56_dtlb() -> Self {
        Tlb::new(64, 8192)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up the page containing `addr`; returns `true` on hit and fills
    /// on miss (LRU eviction).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let vpn = addr >> self.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == vpn) {
            e.1 = self.clock;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.clock));
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff)); // same page
        assert!(!t.access(0x2000)); // next page
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096);
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // page 1 is MRU
        t.access(0x3000); // evicts page 2
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn miss_rate_for_thrashing_pattern() {
        let mut t = Tlb::new(4, 4096);
        // Cycle through 8 pages repeatedly: with LRU, every access misses.
        for _ in 0..10 {
            for p in 0..8u64 {
                t.access(p * 4096);
            }
        }
        assert_eq!(t.stats().miss_rate(), 1.0);
    }

    #[test]
    fn ev56_default_capacity() {
        let mut t = Tlb::ev56_dtlb();
        for p in 0..64u64 {
            t.access(p * 8192);
        }
        for p in 0..64u64 {
            assert!(t.access(p * 8192), "64 pages fit in the EV56 DTB");
        }
    }
}

//! Cycle-approximate timing models for the two simulated Alpha machines.

use crate::branch::{BimodalPredictor, BranchPredictor, TournamentPredictor};
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::tlb::Tlb;
use std::collections::HashMap;
use tinyisa::{DynInst, InstClass, TraceSink};

/// Load-to-use latencies of the memory hierarchy, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLatency {
    /// L1 hit.
    pub l1: u64,
    /// L1 miss, L2 hit.
    pub l2: u64,
    /// L2 miss (main memory).
    pub mem: u64,
    /// Additional cycles for a D-TLB miss (software fill).
    pub tlb_miss: u64,
}

impl MemoryLatency {
    /// EV56-era latencies.
    pub fn ev56() -> Self {
        MemoryLatency { l1: 2, l2: 10, mem: 60, tlb_miss: 30 }
    }

    /// EV67-era latencies (faster core clock, relatively slower memory).
    pub fn ev67() -> Self {
        MemoryLatency { l1: 3, l2: 13, mem: 80, tlb_miss: 30 }
    }
}

/// Configuration of the in-order (EV56-class) machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InOrderConfig {
    /// L1 instruction/data cache geometry (both L1s share it).
    pub l1: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Memory latencies.
    pub lat: MemoryLatency,
    /// Bimodal predictor entries (power of two).
    pub predictor_entries: usize,
    /// Branch misprediction penalty, cycles.
    pub mispredict_penalty: u64,
    /// D-TLB entries.
    pub dtlb_entries: usize,
    /// Page size for the D-TLB.
    pub page_size: u64,
    /// Enable next-line prefetching in the data hierarchy.
    pub prefetch: bool,
}

impl Default for InOrderConfig {
    fn default() -> Self {
        InOrderConfig {
            l1: CacheConfig::ev56_l1(),
            l2: CacheConfig::ev56_l2(),
            lat: MemoryLatency::ev56(),
            predictor_entries: 2048,
            mispredict_penalty: EV56_MISPREDICT_PENALTY,
            dtlb_entries: 64,
            page_size: 8192,
            prefetch: false,
        }
    }
}

/// Configuration of the out-of-order (EV67-class) machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OooConfig {
    /// L1 instruction/data cache geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Memory latencies.
    pub lat: MemoryLatency,
    /// Instruction-window (reorder) size.
    pub window: usize,
    /// Branch misprediction penalty, cycles.
    pub mispredict_penalty: u64,
    /// D-TLB entries.
    pub dtlb_entries: usize,
    /// Page size for the D-TLB.
    pub page_size: u64,
    /// Enable next-line prefetching in the data hierarchy.
    pub prefetch: bool,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            l1: CacheConfig::ev67_l1(),
            l2: CacheConfig::ev67_l2(),
            lat: MemoryLatency::ev67(),
            window: EV67_WINDOW,
            mispredict_penalty: EV67_MISPREDICT_PENALTY,
            dtlb_entries: 128,
            page_size: 8192,
            prefetch: false,
        }
    }
}

fn exec_latency(class: InstClass) -> u64 {
    match class {
        InstClass::IntAlu => 1,
        InstClass::IntMul => 8,
        InstClass::Fp => 4,
        InstClass::Load | InstClass::Store => 1, // cache latency added separately
        InstClass::Branch | InstClass::Jump => 1,
    }
}

/// The in-order dual-issue EV56-like machine (Alpha 21164A class).
///
/// In-order issue of up to two instructions per cycle; an instruction stalls
/// until its register inputs are ready. Loads see the cache hierarchy (L1D →
/// L2 → memory) and the D-TLB; fetches see L1I → L2. Conditional-branch
/// mispredictions (bimodal predictor) stall the front end.
#[derive(Debug, Clone)]
pub struct Ev56Model {
    lat: MemoryLatency,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dtlb: Tlb,
    predictor: BimodalPredictor,
    mispredict_penalty: u64,
    reg_ready: [u64; 64],
    cycle: u64,
    issued_this_cycle: u32,
    fetch_ready: u64,
    retired: u64,
    last_cycle: u64,
}

/// EV56 branch misprediction penalty, cycles.
const EV56_MISPREDICT_PENALTY: u64 = 5;
/// EV56 issue width.
const EV56_WIDTH: u32 = 2;

impl Ev56Model {
    /// Build with the EV56-like configuration.
    pub fn new() -> Self {
        Self::with_config(InOrderConfig::default())
    }

    /// Build with a custom machine configuration.
    pub fn with_config(cfg: InOrderConfig) -> Self {
        let mk = |c: CacheConfig| {
            let cache = Cache::new(c);
            if cfg.prefetch {
                cache.with_next_line_prefetch()
            } else {
                cache
            }
        };
        Ev56Model {
            lat: cfg.lat,
            l1i: Cache::new(cfg.l1),
            l1d: mk(cfg.l1),
            l2: mk(cfg.l2),
            dtlb: Tlb::new(cfg.dtlb_entries, cfg.page_size),
            predictor: BimodalPredictor::new(cfg.predictor_entries),
            mispredict_penalty: cfg.mispredict_penalty,
            reg_ready: [0; 64],
            cycle: 0,
            issued_this_cycle: 0,
            fetch_ready: 0,
            retired: 0,
            last_cycle: 0,
        }
    }

    /// Committed IPC so far.
    pub fn ipc(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.retired as f64 / self.last_cycle.max(1) as f64
        }
    }

    /// L1 instruction cache statistics.
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// L1 data cache statistics.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// Unified L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Data TLB statistics.
    pub fn dtlb_stats(&self) -> CacheStats {
        self.dtlb.stats()
    }

    /// Branch predictor statistics (misses = mispredictions).
    pub fn branch_stats(&self) -> CacheStats {
        self.predictor.stats()
    }
}

impl Default for Ev56Model {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for Ev56Model {
    fn retire(&mut self, inst: &DynInst) {
        // Front end: instruction fetch through L1I / L2.
        let mut fetch_penalty = 0;
        if !self.l1i.access(inst.pc) {
            fetch_penalty = if self.l2.access(inst.pc) { self.lat.l2 } else { self.lat.mem };
        }
        if fetch_penalty > 0 {
            self.fetch_ready = self.fetch_ready.max(self.cycle) + fetch_penalty;
        }

        // In-order issue: earliest cycle where the front end has delivered
        // the instruction and all register inputs are ready.
        let mut earliest = self.fetch_ready.max(self.cycle);
        for s in inst.sources() {
            earliest = earliest.max(self.reg_ready[s.unified()]);
        }
        if earliest > self.cycle {
            self.cycle = earliest;
            self.issued_this_cycle = 0;
        } else if self.issued_this_cycle >= EV56_WIDTH {
            self.cycle += 1;
            self.issued_this_cycle = 0;
        }
        self.issued_this_cycle += 1;
        let issue = self.cycle;

        // Execute.
        let mut latency = exec_latency(inst.class);
        if let Some(m) = inst.mem {
            let tlb_penalty = if self.dtlb.access(m.addr) { 0 } else { self.lat.tlb_miss };
            let mem_lat = if self.l1d.access(m.addr) {
                self.lat.l1
            } else if self.l2.access(m.addr) {
                self.lat.l2
            } else {
                self.lat.mem
            };
            // Stores retire through a write buffer and do not stall
            // dependents (they have no destination register anyway).
            latency = if m.is_store { 1 } else { mem_lat + tlb_penalty };
            // The EV56 L1 D-cache is blocking: a load miss drains the
            // in-order pipeline until the data returns.
            if !m.is_store && latency > self.lat.l1 {
                self.cycle = issue + latency;
                self.issued_this_cycle = 0;
            }
        }
        let complete = issue + latency;
        if let Some(d) = inst.dst {
            self.reg_ready[d.unified()] = complete;
        }

        // Resolve control flow.
        if let Some(ctrl) = inst.ctrl {
            if ctrl.conditional && !self.predictor.observe(inst.pc, ctrl.taken) {
                self.fetch_ready = complete + self.mispredict_penalty;
            }
        }

        self.retired += 1;
        self.last_cycle = self.last_cycle.max(complete);
    }
}

/// The out-of-order four-wide EV67-like machine (Alpha 21264A class).
///
/// Dependence-driven scheduling inside an 80-entry instruction window,
/// at most four issues per cycle, EV67-like caches and a tournament branch
/// predictor. Mispredictions stall dispatch of younger instructions until
/// the branch resolves plus a pipeline-refill penalty.
#[derive(Debug, Clone)]
pub struct Ev67Model {
    lat: MemoryLatency,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dtlb: Tlb,
    predictor: TournamentPredictor,
    mispredict_penalty: u64,
    reg_ready: [u64; 64],
    /// Completion cycles of the last `window` instructions (ring buffer).
    ring: Vec<u64>,
    /// Issue-bandwidth bookkeeping: instructions issued per cycle.
    issue_counts: HashMap<u64, u32>,
    watermark: u64,
    fetch_ready: u64,
    retired: u64,
    last_cycle: u64,
}

/// EV67 reorder-window size.
const EV67_WINDOW: usize = 80;
/// EV67 issue width.
const EV67_WIDTH: u32 = 4;
/// EV67 branch misprediction penalty, cycles.
const EV67_MISPREDICT_PENALTY: u64 = 7;

impl Ev67Model {
    /// Build with the EV67-like configuration.
    pub fn new() -> Self {
        Self::with_config(OooConfig::default())
    }

    /// Build with a custom machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the window size is zero.
    pub fn with_config(cfg: OooConfig) -> Self {
        assert!(cfg.window > 0, "window must be positive");
        let mk = |c: CacheConfig| {
            let cache = Cache::new(c);
            if cfg.prefetch {
                cache.with_next_line_prefetch()
            } else {
                cache
            }
        };
        Ev67Model {
            lat: cfg.lat,
            l1i: Cache::new(cfg.l1),
            l1d: mk(cfg.l1),
            l2: mk(cfg.l2),
            dtlb: Tlb::new(cfg.dtlb_entries, cfg.page_size),
            predictor: TournamentPredictor::ev67(),
            mispredict_penalty: cfg.mispredict_penalty,
            reg_ready: [0; 64],
            ring: vec![0; cfg.window],
            issue_counts: HashMap::new(),
            watermark: 0,
            fetch_ready: 0,
            retired: 0,
            last_cycle: 0,
        }
    }

    /// Committed IPC so far.
    pub fn ipc(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.retired as f64 / self.last_cycle.max(1) as f64
        }
    }

    fn claim_issue_slot(&mut self, from: u64) -> u64 {
        let mut c = from;
        loop {
            let n = self.issue_counts.entry(c).or_insert(0);
            if *n < EV67_WIDTH {
                *n += 1;
                break;
            }
            c += 1;
        }
        // Keep the bookkeeping map bounded: cycles far behind the watermark
        // can never be claimed again (starts are bounded below by the
        // window-occupancy constraint, which trails the watermark by at most
        // the in-flight span).
        self.watermark = self.watermark.max(c);
        if self.issue_counts.len() > 1 << 16 {
            let keep_from = self.watermark.saturating_sub(1 << 15);
            self.issue_counts.retain(|&cy, _| cy >= keep_from);
        }
        c
    }
}

impl Default for Ev67Model {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for Ev67Model {
    fn retire(&mut self, inst: &DynInst) {
        if !self.l1i.access(inst.pc) {
            let penalty = if self.l2.access(inst.pc) { self.lat.l2 } else { self.lat.mem };
            self.fetch_ready += penalty;
        }

        let window = self.ring.len() as u64;
        let slot = (self.retired % window) as usize;
        let window_ready = if self.retired >= window { self.ring[slot] } else { 0 };

        let mut ready = window_ready.max(self.fetch_ready);
        for s in inst.sources() {
            ready = ready.max(self.reg_ready[s.unified()]);
        }
        let issue = self.claim_issue_slot(ready);

        let mut latency = exec_latency(inst.class);
        if let Some(m) = inst.mem {
            let tlb_penalty = if self.dtlb.access(m.addr) { 0 } else { self.lat.tlb_miss };
            let mem_lat = if self.l1d.access(m.addr) {
                self.lat.l1
            } else if self.l2.access(m.addr) {
                self.lat.l2
            } else {
                self.lat.mem
            };
            latency = if m.is_store { 1 } else { mem_lat + tlb_penalty };
        }
        let complete = issue + latency;

        if let Some(d) = inst.dst {
            self.reg_ready[d.unified()] = complete;
        }
        if let Some(ctrl) = inst.ctrl {
            if ctrl.conditional && !self.predictor.observe(inst.pc, ctrl.taken) {
                self.fetch_ready = self.fetch_ready.max(complete + self.mispredict_penalty);
            }
        }

        self.ring[slot] = complete;
        self.retired += 1;
        self.last_cycle = self.last_cycle.max(complete);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{CtrlInfo, MemAccess, RegRef};

    fn alu(pc: u64, dst: u8, srcs: &[u8]) -> DynInst {
        let mut s = [None; 3];
        for (i, &r) in srcs.iter().enumerate() {
            s[i] = Some(RegRef::Int(r));
        }
        DynInst {
            pc,
            class: InstClass::IntAlu,
            dst: Some(RegRef::Int(dst)),
            srcs: s,
            mem: None,
            ctrl: None,
        }
    }

    fn load(pc: u64, dst: u8, addr: u64) -> DynInst {
        DynInst {
            pc,
            class: InstClass::Load,
            dst: Some(RegRef::Int(dst)),
            srcs: [None; 3],
            mem: Some(MemAccess { addr, size: 8, is_store: false }),
            ctrl: None,
        }
    }

    fn branch(pc: u64, taken: bool) -> DynInst {
        DynInst {
            pc,
            class: InstClass::Branch,
            dst: None,
            srcs: [None; 3],
            mem: None,
            ctrl: Some(CtrlInfo { taken, target: pc + 4, conditional: true }),
        }
    }

    /// A tight code loop touching a tiny data footprint.
    fn run_friendly<M: TraceSink>(m: &mut M, n: u64) {
        for i in 0..n {
            m.retire(&alu(0x1000 + (i % 16) * 4, (i % 8 + 1) as u8, &[]));
        }
    }

    #[test]
    fn ev56_ipc_bounded_by_width() {
        let mut m = Ev56Model::new();
        run_friendly(&mut m, 50_000);
        let ipc = m.ipc();
        assert!(ipc <= 2.0 + 1e-9, "EV56 is dual-issue: {ipc}");
        assert!(ipc > 1.5, "independent ALU stream should near-saturate: {ipc}");
    }

    #[test]
    fn ev67_ipc_bounded_by_width_and_beats_ev56() {
        let mut e56 = Ev56Model::new();
        let mut e67 = Ev67Model::new();
        run_friendly(&mut e56, 50_000);
        run_friendly(&mut e67, 50_000);
        assert!(e67.ipc() <= 4.0 + 1e-9);
        assert!(e67.ipc() > e56.ipc(), "ev67 {} vs ev56 {}", e67.ipc(), e56.ipc());
    }

    #[test]
    fn serial_dependences_hurt_ev67_less_than_width_allows() {
        let mut m = Ev67Model::new();
        for i in 0..20_000u64 {
            m.retire(&alu(0x1000 + (i % 16) * 4, 1, &[1]));
        }
        assert!(m.ipc() < 1.1, "serial chain caps IPC near 1: {}", m.ipc());
    }

    #[test]
    fn cache_thrashing_lowers_ipc() {
        let mut friendly = Ev56Model::new();
        let mut hostile = Ev56Model::new();
        for i in 0..20_000u64 {
            // Friendly: one hot line. Hostile: stride bigger than L2.
            friendly.retire(&load(0x1000, 1, 0x10_0000));
            hostile.retire(&load(0x1000, 1, 0x10_0000 + i * 4096 * 37));
        }
        assert!(hostile.ipc() < friendly.ipc() * 0.3);
        assert!(hostile.l1d_stats().miss_rate() > 0.9);
        assert!(friendly.l1d_stats().miss_rate() < 0.01);
        assert!(hostile.dtlb_stats().miss_rate() > 0.9);
    }

    #[test]
    fn mispredictions_lower_ipc() {
        let mut predictable = Ev56Model::new();
        let mut random = Ev56Model::new();
        let mut x = 0x2545f491u64;
        for i in 0..20_000u64 {
            predictable.retire(&branch(0x1000, true));
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            random.retire(&branch(0x1000, x & 1 == 1));
            let _ = i;
        }
        assert!(random.ipc() < predictable.ipc());
        assert!(random.branch_stats().miss_rate() > 0.3);
        assert!(predictable.branch_stats().miss_rate() < 0.01);
    }

    #[test]
    fn large_code_footprint_misses_l1i() {
        let mut m = Ev56Model::new();
        // Walk 64 KiB of code repeatedly: 8x the 8 KiB L1I.
        for round in 0..4u64 {
            for i in 0..16_384u64 {
                m.retire(&alu(0x1_0000 + i * 4, 1, &[]));
                let _ = round;
            }
        }
        assert!(m.l1i_stats().miss_rate() > 0.05, "{}", m.l1i_stats().miss_rate());
    }

    #[test]
    fn empty_models_report_zero_ipc() {
        assert_eq!(Ev56Model::new().ipc(), 0.0);
        assert_eq!(Ev67Model::new().ipc(), 0.0);
    }
}

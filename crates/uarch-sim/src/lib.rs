//! Microarchitecture simulators standing in for the paper's hardware
//! performance counters.
//!
//! The paper profiles its benchmarks on two real Alpha machines: an in-order
//! dual-issue 21164A (EV56) — IPC, branch misprediction rate, L1 D/I miss
//! rates, L2 miss rate, D-TLB miss rate, via DCPI — and an out-of-order
//! four-wide 21264A (EV67) — IPC only. Neither machine (nor DCPI) being
//! available, this crate simulates equivalents:
//!
//! - [`Cache`]: set-associative, LRU, configurable geometry;
//! - [`Tlb`]: fully-associative LRU translation buffer;
//! - [`BimodalPredictor`] / [`TournamentPredictor`]: the EV56- and
//!   EV67-class branch predictors;
//! - [`Ev56Model`]: in-order dual-issue timing model with its cache
//!   hierarchy;
//! - [`Ev67Model`]: out-of-order, 4-wide, 80-entry-window timing model;
//! - [`HpcSimulator`]: drives both from one trace and produces the
//!   [`HpcProfile`] used as the "hardware performance counter"
//!   characterization throughout the experiments.
//!
//! # Example
//!
//! ```
//! use tinyisa::{Asm, Vm, regs::*};
//! use uarch_sim::HpcSimulator;
//!
//! # fn main() -> Result<(), tinyisa::AsmError> {
//! let mut a = Asm::new();
//! let head = a.label();
//! a.li(T0, 0);
//! a.bind(head);
//! a.addi(T0, T0, 1);
//! a.slti(T1, T0, 10_000);
//! a.bne(T1, ZERO, head);
//! a.halt();
//!
//! let mut sim = HpcSimulator::new();
//! Vm::new(a.assemble()?).run(&mut sim, 1_000_000).unwrap();
//! let profile = sim.finish();
//! assert!(profile.ipc_ev67 >= profile.ipc_ev56); // wider machine
//! assert!(profile.l1i_miss_rate < 0.01); // tiny loop fits in L1I
//! # Ok(())
//! # }
//! ```

mod branch;
mod cache;
mod pipeline;
mod profile;
mod tlb;

pub use branch::{BimodalPredictor, BranchPredictor, TournamentPredictor};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use pipeline::{Ev56Model, Ev67Model, InOrderConfig, MemoryLatency, OooConfig};
pub use profile::{HpcProfile, HpcSimulator, HPC_EXTENDED_NAMES, HPC_METRIC_NAMES, NUM_HPC_METRICS};
pub use tlb::Tlb;

//! The combined "hardware performance counter" profile.

use crate::pipeline::{Ev56Model, Ev67Model};
use serde::{Deserialize, Serialize};
use tinyisa::{DynInst, InstClass, TraceSink};

/// Number of counter metrics in the microarchitecture-dependent space
/// (Section III-B of the paper).
pub const NUM_HPC_METRICS: usize = 7;

/// Names of the counter metrics, in [`HpcProfile::counter_vector`] order.
pub const HPC_METRIC_NAMES: [&str; NUM_HPC_METRICS] = [
    "IPC (EV56)",
    "branch misprediction rate",
    "L1 D-cache miss rate",
    "L1 I-cache miss rate",
    "L2 cache miss rate",
    "D-TLB miss rate",
    "IPC (EV67)",
];

/// Names of the extended profile (instruction mix + counters) used in the
/// Figure 2 case study, where mix is shown as part of the
/// microarchitecture-dependent characterization "as is done in many workload
/// characterization papers".
pub const HPC_EXTENDED_NAMES: [&str; 13] = [
    "pct loads",
    "pct stores",
    "pct control",
    "pct arithmetic",
    "pct int multiply",
    "pct fp",
    "IPC (EV56)",
    "branch misprediction rate",
    "L1 D-cache miss rate",
    "L1 I-cache miss rate",
    "L2 cache miss rate",
    "D-TLB miss rate",
    "IPC (EV67)",
];

/// The microarchitecture-dependent characterization of one benchmark run:
/// the seven counter values the paper collects with DCPI, plus the
/// instruction mix used in its Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpcProfile {
    /// IPC on the in-order dual-issue EV56-like machine.
    pub ipc_ev56: f64,
    /// Conditional-branch misprediction rate on the EV56-like predictor.
    pub branch_mispredict_rate: f64,
    /// L1 D-cache miss rate (per data access), EV56-like hierarchy.
    pub l1d_miss_rate: f64,
    /// L1 I-cache miss rate (per fetch), EV56-like hierarchy.
    pub l1i_miss_rate: f64,
    /// L2 miss rate (per L2 access), EV56-like hierarchy.
    pub l2_miss_rate: f64,
    /// D-TLB miss rate (per data access).
    pub dtlb_miss_rate: f64,
    /// IPC on the out-of-order four-wide EV67-like machine.
    pub ipc_ev67: f64,
    /// Instruction mix fractions: loads, stores, control, arithmetic,
    /// integer multiplies, fp.
    pub mix: [f64; 6],
    /// Dynamic instruction count of the profiled run.
    pub instructions: u64,
}

impl HpcProfile {
    /// The seven counter metrics (the microarchitecture-dependent workload
    /// space of Figure 1 / Table III).
    pub fn counter_vector(&self) -> Vec<f64> {
        vec![
            self.ipc_ev56,
            self.branch_mispredict_rate,
            self.l1d_miss_rate,
            self.l1i_miss_rate,
            self.l2_miss_rate,
            self.dtlb_miss_rate,
            self.ipc_ev67,
        ]
    }

    /// Instruction mix + the seven counters (the Figure 2 display vector).
    pub fn extended_vector(&self) -> Vec<f64> {
        let mut v = self.mix.to_vec();
        v.extend(self.counter_vector());
        v
    }
}

/// Runs the EV56-like and EV67-like machines side by side over one trace and
/// produces an [`HpcProfile`] — the stand-in for profiling the benchmark on
/// real hardware with DCPI.
#[derive(Debug, Clone, Default)]
pub struct HpcSimulator {
    ev56: Ev56Model,
    ev67: Ev67Model,
    class_counts: [u64; 6],
    total: u64,
}

impl HpcSimulator {
    /// Simulator with both machine models in their default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulator over custom machine models (e.g. for the machine-
    /// sensitivity experiment: the same trace profiled on different
    /// microarchitectures).
    pub fn with_machines(ev56: Ev56Model, ev67: Ev67Model) -> Self {
        HpcSimulator { ev56, ev67, class_counts: [0; 6], total: 0 }
    }

    /// Total instructions observed.
    pub fn total_instructions(&self) -> u64 {
        self.total
    }

    /// Access to the EV56-like model (e.g. for per-structure statistics).
    pub fn ev56(&self) -> &Ev56Model {
        &self.ev56
    }

    /// Access to the EV67-like model.
    pub fn ev67(&self) -> &Ev67Model {
        &self.ev67
    }

    /// Produce the profile.
    pub fn finish(&self) -> HpcProfile {
        let t = self.total.max(1) as f64;
        HpcProfile {
            ipc_ev56: self.ev56.ipc(),
            branch_mispredict_rate: self.ev56.branch_stats().miss_rate(),
            l1d_miss_rate: self.ev56.l1d_stats().miss_rate(),
            l1i_miss_rate: self.ev56.l1i_stats().miss_rate(),
            l2_miss_rate: self.ev56.l2_stats().miss_rate(),
            dtlb_miss_rate: self.ev56.dtlb_stats().miss_rate(),
            ipc_ev67: self.ev67.ipc(),
            mix: [
                self.class_counts[0] as f64 / t,
                self.class_counts[1] as f64 / t,
                self.class_counts[2] as f64 / t,
                self.class_counts[3] as f64 / t,
                self.class_counts[4] as f64 / t,
                self.class_counts[5] as f64 / t,
            ],
            instructions: self.total,
        }
    }
}

impl TraceSink for HpcSimulator {
    fn retire(&mut self, inst: &DynInst) {
        self.total += 1;
        let slot = match inst.class {
            InstClass::Load => 0,
            InstClass::Store => 1,
            InstClass::Branch | InstClass::Jump => 2,
            InstClass::IntAlu => 3,
            InstClass::IntMul => 4,
            InstClass::Fp => 5,
        };
        self.class_counts[slot] += 1;
        self.ev56.retire(inst);
        self.ev67.retire(inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm, Vm};

    fn profile_loop(iters: i64) -> HpcProfile {
        let mut a = Asm::new();
        let head = a.label();
        a.li(T0, 0);
        a.li(T2, 0x20_0000);
        a.bind(head);
        a.ld8(T3, T2, 0);
        a.add(T4, T3, T0);
        a.st8(T4, T2, 8);
        a.addi(T2, T2, 16);
        a.addi(T0, T0, 1);
        a.slti(T1, T0, iters);
        a.bne(T1, ZERO, head);
        a.halt();
        let mut sim = HpcSimulator::new();
        Vm::new(a.assemble().unwrap()).run(&mut sim, 10_000_000).unwrap();
        sim.finish()
    }

    #[test]
    fn profile_has_sane_ranges() {
        let p = profile_loop(5000);
        assert!(p.ipc_ev56 > 0.0 && p.ipc_ev56 <= 2.0);
        assert!(p.ipc_ev67 > 0.0 && p.ipc_ev67 <= 4.0);
        for r in [
            p.branch_mispredict_rate,
            p.l1d_miss_rate,
            p.l1i_miss_rate,
            p.l2_miss_rate,
            p.dtlb_miss_rate,
        ] {
            assert!((0.0..=1.0).contains(&r), "rate out of range: {r}");
        }
        assert!((p.mix.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(p.counter_vector().len(), NUM_HPC_METRICS);
        assert_eq!(p.extended_vector().len(), 13);
    }

    #[test]
    fn streaming_loop_misses_l1d_but_predicts_branches() {
        let p = profile_loop(20_000);
        // 16-byte stride: every other access opens a new 32-byte line.
        assert!(p.l1d_miss_rate > 0.1, "{}", p.l1d_miss_rate);
        assert!(p.branch_mispredict_rate < 0.01, "{}", p.branch_mispredict_rate);
        assert!(p.l1i_miss_rate < 0.01);
    }

    #[test]
    fn serde_round_trip() {
        let p = profile_loop(100);
        let json = serde_json::to_string(&p).unwrap();
        let q: HpcProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }
}

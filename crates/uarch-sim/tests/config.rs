//! Machine-configuration tests: the configurable models must respond to
//! their parameters in the physically expected direction.

use tinyisa::{regs::*, Asm, Vm};
use uarch_sim::{CacheConfig, Ev56Model, Ev67Model, InOrderConfig, MemoryLatency, OooConfig};

/// A loop streaming over 64 KiB with a data-dependent accumulator.
fn streaming_vm() -> Vm {
    let mut a = Asm::new();
    let (outer, head) = (a.label(), a.label());
    a.bind(outer);
    a.li(T0, 0);
    a.li(T2, 0x10_0000);
    a.bind(head);
    a.ld8(T3, T2, 0);
    a.add(T4, T4, T3);
    a.addi(T2, T2, 32);
    a.addi(T0, T0, 1);
    a.slti(T1, T0, 2048);
    a.bne(T1, ZERO, head);
    a.jmp(outer);
    Vm::new(a.assemble().expect("assembles"))
}

fn run_ev56(cfg: InOrderConfig) -> Ev56Model {
    let mut m = Ev56Model::with_config(cfg);
    streaming_vm().run(&mut m, 120_000).expect("runs");
    m
}

fn run_ev67(cfg: OooConfig) -> Ev67Model {
    let mut m = Ev67Model::with_config(cfg);
    streaming_vm().run(&mut m, 120_000).expect("runs");
    m
}

#[test]
fn bigger_l1_reduces_misses() {
    let small = run_ev56(InOrderConfig {
        l1: CacheConfig { size: 4 * 1024, line: 32, assoc: 1 },
        ..InOrderConfig::default()
    });
    let big = run_ev56(InOrderConfig {
        l1: CacheConfig { size: 128 * 1024, line: 32, assoc: 2 },
        ..InOrderConfig::default()
    });
    assert!(
        big.l1d_stats().miss_rate() < small.l1d_stats().miss_rate(),
        "big {} vs small {}",
        big.l1d_stats().miss_rate(),
        small.l1d_stats().miss_rate()
    );
    assert!(big.ipc() > small.ipc());
}

#[test]
fn prefetch_helps_streaming() {
    let plain = run_ev56(InOrderConfig::default());
    let pf = run_ev56(InOrderConfig { prefetch: true, ..InOrderConfig::default() });
    assert!(
        pf.l1d_stats().miss_rate() < plain.l1d_stats().miss_rate() * 0.7,
        "prefetch {} vs plain {}",
        pf.l1d_stats().miss_rate(),
        plain.l1d_stats().miss_rate()
    );
    assert!(pf.ipc() > plain.ipc());
}

#[test]
fn slower_memory_lowers_ipc() {
    let fast = run_ev56(InOrderConfig {
        lat: MemoryLatency { l1: 2, l2: 10, mem: 30, tlb_miss: 30 },
        ..InOrderConfig::default()
    });
    let slow = run_ev56(InOrderConfig {
        lat: MemoryLatency { l1: 2, l2: 10, mem: 300, tlb_miss: 30 },
        ..InOrderConfig::default()
    });
    assert!(slow.ipc() < fast.ipc());
}

#[test]
fn bigger_window_helps_the_ooo_machine() {
    let narrow = run_ev67(OooConfig { window: 8, ..OooConfig::default() });
    let wide = run_ev67(OooConfig { window: 256, ..OooConfig::default() });
    assert!(
        wide.ipc() >= narrow.ipc(),
        "wide {} vs narrow {}",
        wide.ipc(),
        narrow.ipc()
    );
}

#[test]
fn default_configs_match_named_constructors() {
    let mut a = Ev56Model::new();
    let mut b = Ev56Model::with_config(InOrderConfig::default());
    let mut vm1 = streaming_vm();
    let mut vm2 = streaming_vm();
    vm1.run(&mut a, 50_000).expect("runs");
    vm2.run(&mut b, 50_000).expect("runs");
    assert_eq!(a.ipc(), b.ipc());
    assert_eq!(a.l1d_stats(), b.l1d_stats());
}

#[test]
#[should_panic(expected = "window must be positive")]
fn zero_window_rejected() {
    let _ = Ev67Model::with_config(OooConfig { window: 0, ..OooConfig::default() });
}

//! Property-based tests of the statistics toolkit's invariants over random
//! data sets.

use mica_stats::{
    auc, choose_k_by_bic, classify_pairs, correlation_elimination, hierarchical_cluster, kmeans,
    pairwise_distances, pairwise_distances_serial, pearson, roc_curve, select_features_k,
    silhouette, zscore_normalize, DataSet, GaConfig, Pca,
};
use proptest::prelude::*;

fn random_dataset() -> impl Strategy<Value = DataSet> {
    (3usize..12, 2usize..8).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, cols),
            rows..=rows,
        )
        .prop_map(DataSet::from_rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zscore_is_idempotent(ds in random_dataset()) {
        let once = zscore_normalize(&ds);
        let twice = zscore_normalize(&once);
        for r in 0..ds.rows() {
            for c in 0..ds.cols() {
                prop_assert!((once.get(r, c) - twice.get(r, c)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        a in proptest::collection::vec(-1e6f64..1e6, 3..50),
        b in proptest::collection::vec(-1e6f64..1e6, 3..50),
    ) {
        let n = a.len().min(b.len());
        let r = pearson(&a[..n], &b[..n]);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        prop_assert!((r - pearson(&b[..n], &a[..n])).abs() < 1e-12);
    }

    #[test]
    fn correlation_elimination_returns_requested_sorted_subset(
        ds in random_dataset(),
        frac in 0.2f64..1.0,
    ) {
        let keep = ((ds.cols() as f64 * frac) as usize).max(1);
        let kept = correlation_elimination(&ds, keep);
        prop_assert_eq!(kept.len(), keep);
        for w in kept.windows(2) {
            prop_assert!(w[0] < w[1], "ascending, no duplicates");
        }
        prop_assert!(kept.iter().all(|&c| c < ds.cols()));
        // Deterministic.
        prop_assert_eq!(kept, correlation_elimination(&ds, keep));
    }

    #[test]
    fn ga_selection_is_valid_and_rho_bounded(ds in random_dataset()) {
        let k = (ds.cols() / 2).max(1);
        let cfg = GaConfig { population: 16, generations: 10, ..GaConfig::default() };
        let r = select_features_k(&ds, k, cfg);
        prop_assert_eq!(r.selected.len(), k);
        prop_assert!(r.selected.iter().all(|&c| c < ds.cols()));
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r.rho));
        prop_assert!(r.fitness <= 1.0 + 1e-9);
    }

    #[test]
    fn kmeans_invariants(ds in random_dataset(), k_frac in 0.1f64..1.0) {
        let k = ((ds.rows() as f64 * k_frac) as usize).clamp(1, ds.rows());
        let r = kmeans(&ds, k, 42);
        prop_assert_eq!(r.labels.len(), ds.rows());
        prop_assert!(r.labels.iter().all(|&l| l < k));
        prop_assert!(r.sse >= 0.0);
        prop_assert!(r.bic.is_finite());
        // More clusters never increase SSE (same seed family not guaranteed,
        // so compare against the trivial k = n case).
        let perfect = kmeans(&ds, ds.rows(), 42);
        prop_assert!(perfect.sse <= r.sse + 1e-9);
    }

    #[test]
    fn bic_choice_is_within_range(ds in random_dataset()) {
        let r = choose_k_by_bic(&ds, 8, 7);
        prop_assert!(r.k() >= 1 && r.k() <= ds.rows().min(8));
    }

    #[test]
    fn silhouette_is_bounded(ds in random_dataset()) {
        let d = pairwise_distances(&ds);
        let k = (ds.rows() / 2).max(1);
        let labels = kmeans(&ds, k, 3).labels;
        let s = silhouette(&d, &labels);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
    }

    #[test]
    fn dendrogram_cuts_are_nested(ds in random_dataset()) {
        let d = pairwise_distances(&ds);
        let dend = hierarchical_cluster(&d);
        // A coarser cut never separates items a finer cut joined.
        let fine = dend.cut(ds.rows().min(4));
        let coarse = dend.cut(2.min(ds.rows()));
        for i in 0..ds.rows() {
            for j in 0..ds.rows() {
                if fine[i] == fine[j] {
                    prop_assert_eq!(coarse[i], coarse[j], "nested partitions violated");
                }
            }
        }
    }

    #[test]
    fn roc_and_auc_are_well_formed(
        pairs in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 4..100),
    ) {
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let curve = roc_curve(&a, &b, 0.2, 50);
        for p in &curve {
            prop_assert!((0.0..=1.0).contains(&p.sensitivity));
            prop_assert!((0.0..=1.0).contains(&p.one_minus_specificity));
        }
        let area = auc(&curve);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&area));
        let c = classify_pairs(&a, &b, 0.2, 0.2);
        let total = c.true_positive + c.true_negative + c.false_positive + c.false_negative;
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn condensed_get_matches_naive_dense_matrix(ds in random_dataset()) {
        let d = pairwise_distances(&ds);
        let n = ds.rows();
        // Naive dense distance matrix, computed independently.
        let mut dense = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                let s: f64 = (0..ds.cols())
                    .map(|c| (ds.get(i, c) - ds.get(j, c)).powi(2))
                    .sum();
                dense[i][j] = s.sqrt();
            }
        }
        prop_assert_eq!(d.num_items(), n);
        prop_assert_eq!(d.len(), n * (n - 1) / 2);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!((d.get(i, j) - dense[i][j]).abs() < 1e-9,
                        "get({i},{j}) = {} vs dense {}", d.get(i, j), dense[i][j]);
                }
            }
        }
        // iter_pairs agrees with get on every pair.
        for (i, j, dist) in d.iter_pairs() {
            prop_assert_eq!(dist.to_bits(), d.get(i, j).to_bits());
        }
    }

    #[test]
    fn parallel_distances_match_serial_bitwise(ds in random_dataset()) {
        let par = pairwise_distances(&ds);
        let ser = pairwise_distances_serial(&ds);
        prop_assert_eq!(&par, &ser);
        for (a, b) in par.values().iter().zip(ser.values()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pca_explained_variance_is_monotone(ds in random_dataset()) {
        let pca = Pca::fit(&ds);
        let mut prev = 0.0;
        for k in 0..=ds.cols() {
            let v = pca.explained_variance(k);
            prop_assert!(v + 1e-9 >= prev, "explained variance must grow with k");
            prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
            prev = v;
        }
    }
}

//! Pair classification (Table III) and ROC analysis (Figure 4).

use serde::{Deserialize, Serialize};

/// Fractions of benchmark tuples in the four categories of Table III.
///
/// Following the paper's definitions: "positive" means a **large** distance
/// (dissimilar benchmarks) in the hardware-performance-counter space; the
/// prediction is the microarchitecture-independent distance.
///
/// - **true positive**: large in both spaces;
/// - **false negative**: large in the HPC space, small in the MICA space;
/// - **false positive**: small in the HPC space, large in the MICA space;
/// - **true negative**: small in both.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairClassification {
    pub true_positive: f64,
    pub true_negative: f64,
    pub false_positive: f64,
    pub false_negative: f64,
}

impl PairClassification {
    /// Sensitivity (true positive rate): fraction of HPC-large tuples that
    /// are also MICA-large.
    pub fn sensitivity(&self) -> f64 {
        let p = self.true_positive + self.false_negative;
        if p <= 0.0 {
            1.0
        } else {
            self.true_positive / p
        }
    }

    /// Specificity: fraction of HPC-small tuples that are also MICA-small.
    pub fn specificity(&self) -> f64 {
        let n = self.true_negative + self.false_positive;
        if n <= 0.0 {
            1.0
        } else {
            self.true_negative / n
        }
    }
}

/// Classify all benchmark tuples. A distance is "large" when it exceeds
/// `frac * max(distances in that space)` — the paper uses 20% (`frac =
/// 0.2`) for both spaces.
///
/// # Panics
///
/// Panics if the two distance sets have different lengths or are empty.
pub fn classify_pairs(
    hpc: &[f64],
    mica: &[f64],
    hpc_frac: f64,
    mica_frac: f64,
) -> PairClassification {
    assert_eq!(hpc.len(), mica.len(), "distance sets must align");
    assert!(!hpc.is_empty(), "need at least one pair");
    let hpc_threshold = hpc_frac * hpc.iter().copied().fold(0.0, f64::max);
    let mica_threshold = mica_frac * mica.iter().copied().fold(0.0, f64::max);
    let mut counts = [0u64; 4]; // tp, tn, fp, fn
    for (&h, &m) in hpc.iter().zip(mica) {
        let hpc_large = h > hpc_threshold;
        let mica_large = m > mica_threshold;
        let idx = match (hpc_large, mica_large) {
            (true, true) => 0,
            (false, false) => 1,
            (false, true) => 2,
            (true, false) => 3,
        };
        counts[idx] += 1;
    }
    let t = hpc.len() as f64;
    PairClassification {
        true_positive: counts[0] as f64 / t,
        true_negative: counts[1] as f64 / t,
        false_positive: counts[2] as f64 / t,
        false_negative: counts[3] as f64 / t,
    }
}

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// `1 - specificity` (x axis).
    pub one_minus_specificity: f64,
    /// Sensitivity (y axis).
    pub sensitivity: f64,
    /// The MICA-space threshold fraction that produced this point.
    pub mica_frac: f64,
}

/// Sweep the MICA-space classification threshold while holding the HPC-space
/// threshold fixed at `hpc_frac` of its maximum distance (the paper fixes
/// 20%), producing the ROC curve of Figure 4.
///
/// `steps` controls the sweep resolution; the end points (thresholds 0%
/// and slightly above 100%) are always included so the curve spans from
/// (1, 1) to (0, 0).
pub fn roc_curve(hpc: &[f64], mica: &[f64], hpc_frac: f64, steps: usize) -> Vec<RocPoint> {
    let steps = steps.max(2);
    (0..=steps)
        .map(|s| {
            // Sweep slightly past 1.0 so the final point classifies every
            // tuple as "small" in the MICA space.
            let frac = 1.02 * s as f64 / steps as f64;
            let c = classify_pairs(hpc, mica, hpc_frac, frac);
            RocPoint {
                one_minus_specificity: 1.0 - c.specificity(),
                sensitivity: c.sensitivity(),
                mica_frac: frac,
            }
        })
        .collect()
}

/// Area under a ROC curve by trapezoidal integration (points are sorted by
/// the x coordinate internally; the (0,0) and (1,1) anchors are added).
pub fn auc(points: &[RocPoint]) -> f64 {
    let mut pts: Vec<(f64, f64)> =
        points.iter().map(|p| (p.one_minus_specificity, p.sensitivity)).collect();
    pts.push((0.0, 0.0));
    pts.push((1.0, 1.0));
    pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut area = 0.0;
    for w in pts.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        area += (x1 - x0) * (y0 + y1) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let hpc = [1.0, 2.0, 3.0, 10.0];
        let mica = [10.0, 1.0, 9.0, 8.0];
        let c = classify_pairs(&hpc, &mica, 0.2, 0.2);
        let sum = c.true_positive + c.true_negative + c.false_positive + c.false_negative;
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_aligned_spaces_have_no_false_classifications() {
        let d = [1.0, 2.0, 5.0, 9.0, 10.0];
        let c = classify_pairs(&d, &d, 0.2, 0.2);
        assert_eq!(c.false_positive, 0.0);
        assert_eq!(c.false_negative, 0.0);
        assert_eq!(c.sensitivity(), 1.0);
        assert_eq!(c.specificity(), 1.0);
    }

    #[test]
    fn inverted_spaces_are_all_wrong() {
        let hpc = [1.0, 10.0];
        let mica = [10.0, 1.0];
        let c = classify_pairs(&hpc, &mica, 0.5, 0.5);
        assert_eq!(c.true_positive, 0.0);
        assert_eq!(c.true_negative, 0.0);
        assert_eq!(c.false_positive + c.false_negative, 1.0);
    }

    #[test]
    fn roc_curve_spans_corners() {
        let hpc = [1.0, 2.0, 3.0, 10.0, 4.0];
        let mica = [2.0, 1.0, 5.0, 9.0, 4.0];
        let curve = roc_curve(&hpc, &mica, 0.2, 50);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        // Threshold 0: everything is "large" -> sensitivity 1, specificity 0.
        assert_eq!(first.sensitivity, 1.0);
        assert_eq!(first.one_minus_specificity, 1.0);
        // Threshold > max: everything "small" -> sensitivity 0, specificity 1.
        assert_eq!(last.sensitivity, 0.0);
        assert_eq!(last.one_minus_specificity, 0.0);
    }

    #[test]
    fn auc_of_perfect_predictor_is_one() {
        // MICA distances equal HPC distances: thresholds agree, so at every
        // sweep point either both classifications flip together or
        // sensitivity/specificity stay at the corners.
        let d: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let curve = roc_curve(&d, &d, 0.2, 200);
        let a = auc(&curve);
        assert!(a > 0.95, "auc = {a}");
    }

    #[test]
    fn auc_of_random_predictor_is_half() {
        let mut x = 3u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 10_000) as f64 / 10_000.0
        };
        let hpc: Vec<f64> = (0..5000).map(|_| rnd()).collect();
        let mica: Vec<f64> = (0..5000).map(|_| rnd()).collect();
        let a = auc(&roc_curve(&hpc, &mica, 0.2, 100));
        assert!((a - 0.5).abs() < 0.06, "auc = {a}");
    }

    #[test]
    fn degenerate_no_positive_class() {
        // All HPC distances "small" with threshold above everything.
        let c = classify_pairs(&[1.0, 1.0], &[1.0, 2.0], 1.5, 0.2);
        assert_eq!(c.sensitivity(), 1.0, "vacuous sensitivity");
    }
}

//! A small dense row-major matrix: benchmarks × metrics.

use serde::{Deserialize, Serialize};

/// A benchmarks × metrics matrix (row per benchmark, column per metric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSet {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DataSet {
    /// Build from row vectors. An empty row list (possible when every
    /// benchmark in a run was quarantined) yields a 0×0 data set.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or are themselves empty.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        if rows.is_empty() {
            return DataSet { rows: 0, cols: 0, data: Vec::new() };
        }
        let cols = rows[0].len();
        assert!(cols > 0, "data set needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in &rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        DataSet { rows: rows.len(), cols, data }
    }

    /// A zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        DataSet { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Number of rows (benchmarks).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (metrics).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read one cell.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Write one cell.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One column, copied out.
    pub fn column(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// A new data set containing only the given columns, in `keep` order.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty or contains an out-of-range index.
    pub fn select_columns(&self, keep: &[usize]) -> DataSet {
        assert!(!keep.is_empty(), "must keep at least one column");
        let mut out = DataSet::zeros(self.rows, keep.len());
        for r in 0..self.rows {
            for (j, &c) in keep.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trip() {
        let ds = DataSet::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!((ds.rows(), ds.cols()), (2, 2));
        assert_eq!(ds.get(1, 0), 3.0);
        assert_eq!(ds.row(0), &[1.0, 2.0]);
        assert_eq!(ds.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn select_columns_preserves_order() {
        let ds = DataSet::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = ds.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_rejected() {
        let _ = DataSet::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}

/// Error parsing a [`DataSet`] from CSV text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDataSetError {
    /// The text had no data rows.
    Empty,
    /// A row had a different number of fields than the header.
    RaggedRow { row: usize, expected: usize, found: usize },
    /// A field failed to parse as a number.
    BadNumber { row: usize, col: usize },
}

impl std::fmt::Display for ParseDataSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDataSetError::Empty => write!(f, "no data rows"),
            ParseDataSetError::RaggedRow { row, expected, found } => {
                write!(f, "row {row} has {found} fields, expected {expected}")
            }
            ParseDataSetError::BadNumber { row, col } => {
                write!(f, "row {row}, column {col} is not a number")
            }
        }
    }
}

impl std::error::Error for ParseDataSetError {}

impl DataSet {
    /// Render as CSV with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` length does not match the column count.
    pub fn to_csv(&self, header: &[String]) -> String {
        assert_eq!(header.len(), self.cols, "one header per column");
        let mut out = header.join(",");
        out.push('\n');
        for r in 0..self.rows {
            let fields: Vec<String> = self.row(r).iter().map(|v| format!("{v}")).collect();
            out.push_str(&fields.join(","));
            out.push('\n');
        }
        out
    }

    /// Parse a CSV with a header line; returns `(headers, data)`.
    ///
    /// # Errors
    ///
    /// See [`ParseDataSetError`].
    pub fn from_csv(text: &str) -> Result<(Vec<String>, DataSet), ParseDataSetError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header: Vec<String> = lines
            .next()
            .ok_or(ParseDataSetError::Empty)?
            .split(',')
            .map(|s| s.trim().to_string())
            .collect();
        let mut rows = Vec::new();
        for (r, line) in lines.enumerate() {
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != header.len() {
                return Err(ParseDataSetError::RaggedRow {
                    row: r,
                    expected: header.len(),
                    found: fields.len(),
                });
            }
            let mut row = Vec::with_capacity(fields.len());
            for (c, f) in fields.iter().enumerate() {
                row.push(
                    f.trim()
                        .parse::<f64>()
                        .map_err(|_| ParseDataSetError::BadNumber { row: r, col: c })?,
                );
            }
            rows.push(row);
        }
        if rows.is_empty() {
            return Err(ParseDataSetError::Empty);
        }
        Ok((header, DataSet::from_rows(rows)))
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let ds = DataSet::from_rows(vec![vec![1.0, -2.5], vec![0.25, 1e10]]);
        let headers = vec!["a".to_string(), "b".to_string()];
        let text = ds.to_csv(&headers);
        let (h2, ds2) = DataSet::from_csv(&text).unwrap();
        assert_eq!(h2, headers);
        assert_eq!(ds2, ds);
    }

    #[test]
    fn ragged_and_bad_fields_are_reported() {
        assert_eq!(
            DataSet::from_csv("a,b\n1.0").unwrap_err(),
            ParseDataSetError::RaggedRow { row: 0, expected: 2, found: 1 }
        );
        assert_eq!(
            DataSet::from_csv("a,b\n1.0,zebra").unwrap_err(),
            ParseDataSetError::BadNumber { row: 0, col: 1 }
        );
        assert_eq!(DataSet::from_csv("a,b\n").unwrap_err(), ParseDataSetError::Empty);
        assert_eq!(DataSet::from_csv("").unwrap_err(), ParseDataSetError::Empty);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let (_, ds) = DataSet::from_csv("x\n\n1.5\n\n2.5\n").unwrap();
        assert_eq!(ds.column(0), vec![1.5, 2.5]);
    }

    #[test]
    fn empty_row_list_gives_zero_by_zero() {
        let ds = DataSet::from_rows(Vec::new());
        assert_eq!(ds.rows(), 0);
        assert_eq!(ds.cols(), 0);
    }
}

//! k-means clustering with BIC-based model selection (Section VI).

use crate::dataset::DataSet;
use mica_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lloyd iterations executed, across all k-means runs in the process.
static ITERATIONS: obs::Counter = obs::Counter::new("kmeans.iterations");

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster label per row.
    pub labels: Vec<usize>,
    /// Centroids, one row vector per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroid.
    pub sse: f64,
    /// The Bayesian Information Criterion score of this clustering
    /// (spherical-Gaussian BIC, as used by SimPoint).
    pub bic: f64,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Row indices of each cluster.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut m = vec![Vec::new(); self.k()];
        for (i, &l) in self.labels.iter().enumerate() {
            m[l].push(i);
        }
        m
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Spherical-Gaussian BIC (Pelleg & Moore's X-means formulation, the one the
/// SimPoint work the paper cites uses).
fn bic_score(ds: &DataSet, labels: &[usize], centroids: &[Vec<f64>], sse: f64) -> f64 {
    let r = ds.rows() as f64;
    let d = ds.cols() as f64;
    let k = centroids.len() as f64;
    // Cluster sizes.
    let mut sizes = vec![0usize; centroids.len()];
    for &l in labels {
        sizes[l] += 1;
    }
    // Pooled spherical variance estimate. The floor matters: benchmark
    // suites contain near-duplicate runs (same program, sibling inputs), so
    // without it the pooled variance collapses as K grows and BIC rewards
    // shattering the data into singletons. Flooring sigma^2 at 5% of a unit
    // (z-scored) axis says "differences below ~0.22 standard deviations are
    // measurement noise", which caps the useful resolution of the
    // clustering the way the paper's noisier real-hardware data did
    // naturally.
    let denom = (r - k).max(1.0) * d;
    let sigma2 = (sse / denom).max(0.05);
    let mut loglik = 0.0;
    for &rn in &sizes {
        if rn == 0 {
            continue;
        }
        let rn = rn as f64;
        loglik += rn * rn.ln() - rn * r.ln()
            - rn * d / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln()
            - (rn - 1.0) * d / 2.0;
    }
    let params = k * (d + 1.0);
    loglik - params / 2.0 * r.ln()
}

/// k-means with k-means++ seeding and Lloyd iterations, deterministic for a
/// given `seed`.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of rows. An empty dataset
/// (possible when every benchmark was quarantined) returns an empty
/// clustering for any `k` instead of panicking.
pub fn kmeans(ds: &DataSet, k: usize, seed: u64) -> KMeansResult {
    assert!(k >= 1, "k must be positive");
    if ds.rows() == 0 {
        return KMeansResult { labels: Vec::new(), centroids: Vec::new(), sse: 0.0, bic: 0.0 };
    }
    assert!(k <= ds.rows(), "cannot have more clusters than points");
    let mut run_span = obs::span("kmeans", "kmeans");
    run_span.attr("k", k as u64);
    run_span.attr("rows", ds.rows() as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = ds.rows();

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(ds.row(rng.gen_range(0..n)).to_vec());
    let mut d2: Vec<f64> = (0..n).map(|i| sq_dist(ds.row(i), &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; any point works.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        let c = ds.row(next).to_vec();
        for (i, w) in d2.iter_mut().enumerate() {
            *w = w.min(sq_dist(ds.row(i), &c));
        }
        centroids.push(c);
    }

    // Lloyd iterations.
    let mut labels = vec![0usize; n];
    let mut iterations = 0u64;
    for iter in 0..100 {
        iterations += 1;
        ITERATIONS.incr();
        let mut iter_span = obs::span("kmeans", "lloyd_iter");
        iter_span.attr("iter", iter as u64);
        // Count (rather than flag) reassignments so the span can report how
        // much the clustering moved this iteration.
        let mut changed = 0usize;
        for (i, label) in labels.iter_mut().enumerate() {
            let (best, _) = centroids
                .iter()
                .enumerate()
                .map(|(j, c)| (j, sq_dist(ds.row(i), c)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .expect("k >= 1");
            if *label != best {
                *label = best;
                changed += 1;
            }
        }
        let mut sums = vec![vec![0.0; ds.cols()]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[labels[i]] += 1;
            for (c, s) in sums[labels[i]].iter_mut().enumerate() {
                *s += ds.get(i, c);
            }
        }
        for j in 0..k {
            if counts[j] > 0 {
                for c in 0..ds.cols() {
                    centroids[j][c] = sums[j][c] / counts[j] as f64;
                }
            } else {
                // Re-seed an empty cluster on the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(ds.row(a), &centroids[labels[a]])
                            .partial_cmp(&sq_dist(ds.row(b), &centroids[labels[b]]))
                            .unwrap()
                    })
                    .expect("n >= 1");
                centroids[j] = ds.row(far).to_vec();
                changed += 1;
            }
        }
        iter_span.attr("changed", changed as u64);
        if changed == 0 {
            break;
        }
    }

    let sse: f64 = (0..n).map(|i| sq_dist(ds.row(i), &centroids[labels[i]])).sum();
    let bic = bic_score(ds, &labels, &centroids, sse);
    run_span.attr("iterations", iterations);
    run_span.attr("sse", sse);
    run_span.attr("bic", bic);
    KMeansResult { labels, centroids, sse, bic }
}

/// Cluster for every `K` in `1..=k_max` and pick the smallest `K` whose BIC
/// reaches 90% of the best score, after min-max normalizing the scores —
/// the Section VI selection rule ("the K value that yields a BIC score
/// within 90% of the maximum score").
///
/// Returns the chosen clustering; `k_max` is clamped to the number of rows.
pub fn choose_k_by_bic(ds: &DataSet, k_max: usize, seed: u64) -> KMeansResult {
    if ds.rows() == 0 {
        return kmeans(ds, 1, seed);
    }
    let k_max = k_max.min(ds.rows()).max(1);
    let mut span = obs::span("kmeans", "choose_k_by_bic");
    span.attr("k_max", k_max as u64);
    let runs: Vec<KMeansResult> = (1..=k_max).map(|k| kmeans(ds, k, seed ^ k as u64)).collect();
    let max = runs.iter().map(|r| r.bic).fold(f64::NEG_INFINITY, f64::max);
    let min = runs.iter().map(|r| r.bic).fold(f64::INFINITY, f64::min);
    let threshold = if (max - min).abs() < 1e-12 { max } else { min + 0.9 * (max - min) };
    let chosen = runs
        .into_iter()
        .find(|r| r.bic >= threshold)
        .expect("at least the max-BIC run passes the threshold");
    span.attr("k", chosen.k() as u64);
    obs::debug!("BIC selected k={} of {k_max} (threshold {threshold:.2})", chosen.k());
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs of 10 points each.
    fn blobs() -> DataSet {
        let mut rows = Vec::new();
        let mut x = 99u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x % 1000) as f64 / 1000.0 - 0.5) * 0.4
        };
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for _ in 0..10 {
                rows.push(vec![cx + rnd(), cy + rnd()]);
            }
        }
        DataSet::from_rows(rows)
    }

    #[test]
    fn recovers_three_blobs() {
        let ds = blobs();
        let r = kmeans(&ds, 3, 1);
        // Each blob of 10 consecutive rows should share a label.
        for blob in 0..3 {
            let first = r.labels[blob * 10];
            for i in 0..10 {
                assert_eq!(r.labels[blob * 10 + i], first, "blob {blob} split");
            }
        }
        assert!(r.sse < 5.0, "tight clusters: sse = {}", r.sse);
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        let ds = blobs();
        let r = kmeans(&ds, 3, 7);
        for i in 0..ds.rows() {
            let own = sq_dist(ds.row(i), &r.centroids[r.labels[i]]);
            for c in &r.centroids {
                assert!(own <= sq_dist(ds.row(i), c) + 1e-9);
            }
        }
    }

    #[test]
    fn bic_prefers_true_k() {
        let ds = blobs();
        let r1 = kmeans(&ds, 1, 1);
        let r3 = kmeans(&ds, 3, 1);
        assert!(r3.bic > r1.bic, "k=3 BIC {} vs k=1 BIC {}", r3.bic, r1.bic);
    }

    #[test]
    fn choose_k_lands_near_three() {
        let ds = blobs();
        let r = choose_k_by_bic(&ds, 10, 1);
        assert!((2..=5).contains(&r.k()), "chose k = {}", r.k());
    }

    #[test]
    fn deterministic_for_seed() {
        let ds = blobs();
        assert_eq!(kmeans(&ds, 3, 42).labels, kmeans(&ds, 3, 42).labels);
    }

    #[test]
    fn k_equals_n_is_perfect() {
        let ds = DataSet::from_rows(vec![vec![0.0], vec![5.0], vec![9.0]]);
        let r = kmeans(&ds, 3, 0);
        assert!(r.sse < 1e-18);
        let mut l = r.labels.clone();
        l.sort_unstable();
        assert_eq!(l, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "more clusters")]
    fn k_above_n_rejected() {
        let ds = DataSet::from_rows(vec![vec![0.0], vec![1.0]]);
        let _ = kmeans(&ds, 3, 0);
    }

    #[test]
    fn empty_dataset_clusters_to_nothing() {
        // A fully-quarantined run produces a 0-row dataset; the clustering
        // stages must degrade to an empty result rather than panic.
        let ds = DataSet::from_rows(Vec::new());
        let r = kmeans(&ds, 3, 0);
        assert!(r.labels.is_empty());
        assert_eq!(r.k(), 0);
        let r = choose_k_by_bic(&ds, 70, 0);
        assert!(r.labels.is_empty());
        assert_eq!(r.k(), 0);
    }
}

//! Statistical toolkit for the MICA workload-comparison methodology.
//!
//! Everything here operates on a [`DataSet`] — a benchmarks × metrics matrix
//! — and is deliberately dependency-light (no BLAS): the paper's data sets
//! are small (122 × 47), so clarity wins over throughput.
//!
//! The pieces map onto the paper as follows:
//!
//! - [`zscore_normalize`] — the normalization step of Section IV (zero mean,
//!   unit standard deviation per characteristic);
//! - [`pairwise_distances`] / [`CondensedDistances`] — Euclidean distances
//!   between all benchmark tuples;
//! - [`pearson`] — the correlation coefficient of Figures 1 and 5;
//! - [`classify_pairs`] — the true/false positive/negative split of
//!   Table III;
//! - [`roc_curve`] / [`auc`] — the ROC evaluation of Figure 4;
//! - [`correlation_elimination`] — Section V-A;
//! - [`GeneticSelector`] — the GA feature selection of Section V-B, with the
//!   paper's fitness `f = rho * (1 - n/N)`;
//! - [`Pca`] — the prior-work baseline the paper compares against;
//! - [`kmeans`] / [`choose_k_by_bic`] — the clustering of Section VI;
//! - [`hierarchical_cluster`] / [`silhouette`] — the dendrogram alternative
//!   used by the prior work the paper cites, plus cluster validation;
//! - [`plot`] — small self-contained SVG emitters (scatter, lines, kiviat)
//!   used by the experiment binaries.

mod corr_elim;
mod dataset;
mod distance;
mod ga;
mod hier;
mod kmeans;
mod pca;
pub mod plot;
mod roc;

pub use corr_elim::{correlation_elimination, elimination_order, mean_abs_correlation};
pub use dataset::{DataSet, ParseDataSetError};
pub use distance::{pairwise_distances, pairwise_distances_serial, pearson, CondensedDistances};
pub use ga::{select_features, select_features_k, GaConfig, GaResult, GeneticSelector};
pub use hier::{hierarchical_cluster, silhouette, Dendrogram, Merge};
pub use kmeans::{choose_k_by_bic, kmeans, KMeansResult};
pub use pca::Pca;
pub use roc::{auc, classify_pairs, roc_curve, PairClassification, RocPoint};

/// Normalize each column to zero mean and unit standard deviation
/// (the Section IV normalization). Constant columns become all-zero;
/// an empty dataset (possible when every benchmark was quarantined)
/// passes through unchanged.
pub fn zscore_normalize(ds: &DataSet) -> DataSet {
    if ds.rows() == 0 {
        return ds.clone();
    }
    let mut out = ds.clone();
    for c in 0..ds.cols() {
        let n = ds.rows() as f64;
        let mean = (0..ds.rows()).map(|r| ds.get(r, c)).sum::<f64>() / n;
        let var = (0..ds.rows()).map(|r| (ds.get(r, c) - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        for r in 0..ds.rows() {
            let v = if sd > 0.0 { (ds.get(r, c) - mean) / sd } else { 0.0 };
            out.set(r, c, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_gives_zero_mean_unit_sd() {
        let ds = DataSet::from_rows(vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ]);
        let z = zscore_normalize(&ds);
        for c in 0..2 {
            let mean: f64 = (0..4).map(|r| z.get(r, c)).sum::<f64>() / 4.0;
            let var: f64 = (0..4).map(|r| z.get(r, c).powi(2)).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_becomes_zero() {
        let ds = DataSet::from_rows(vec![vec![5.0], vec![5.0], vec![5.0]]);
        let z = zscore_normalize(&ds);
        for r in 0..3 {
            assert_eq!(z.get(r, 0), 0.0);
        }
    }

    #[test]
    fn empty_dataset_passes_through() {
        let ds = DataSet::from_rows(Vec::new());
        let z = zscore_normalize(&ds);
        assert_eq!(z, ds);
    }
}

//! Correlation-elimination feature selection (Section V-A of the paper).

use crate::dataset::DataSet;
use crate::distance::pearson;

/// Mean absolute Pearson correlation of column `c` with every other column
/// in `remaining` (excluding itself).
pub fn mean_abs_correlation(ds: &DataSet, c: usize, remaining: &[usize]) -> f64 {
    let col_c = ds.column(c);
    let others: Vec<&usize> = remaining.iter().filter(|&&o| o != c).collect();
    if others.is_empty() {
        return 0.0;
    }
    let sum: f64 = others
        .iter()
        .map(|&&o| pearson(&col_c, &ds.column(o)).abs())
        .sum();
    sum / others.len() as f64
}

/// The order in which correlation elimination removes columns: the first
/// element is the column removed first (the one with the highest average
/// correlation with all others), and so on, down to a single survivor.
///
/// Ties are broken toward the lower column index for determinism.
pub fn elimination_order(ds: &DataSet) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..ds.cols()).collect();
    let mut order = Vec::with_capacity(ds.cols().saturating_sub(1));
    while remaining.len() > 1 {
        let victim = remaining
            .iter()
            .copied()
            .map(|c| (c, mean_abs_correlation(ds, c, &remaining)))
            .max_by(|(ca, sa), (cb, sb)| {
                sa.partial_cmp(sb).unwrap().then(cb.cmp(ca))
            })
            .map(|(c, _)| c)
            .expect("non-empty remaining set");
        remaining.retain(|&c| c != victim);
        order.push(victim);
    }
    order
}

/// Run correlation elimination until `target_count` columns remain; returns
/// the retained column indices in ascending order.
///
/// # Panics
///
/// Panics if `target_count` is zero or exceeds the number of columns.
pub fn correlation_elimination(ds: &DataSet, target_count: usize) -> Vec<usize> {
    assert!(target_count >= 1, "must retain at least one metric");
    assert!(target_count <= ds.cols(), "cannot retain more metrics than exist");
    let order = elimination_order(ds);
    let removed: std::collections::HashSet<usize> =
        order[..ds.cols() - target_count].iter().copied().collect();
    (0..ds.cols()).filter(|c| !removed.contains(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Columns 0 and 1 are perfectly correlated; column 2 is independent.
    fn redundant_set() -> DataSet {
        DataSet::from_rows(vec![
            vec![1.0, 2.0, 5.0],
            vec![2.0, 4.0, -1.0],
            vec![3.0, 6.0, 2.0],
            vec![4.0, 8.0, -7.0],
            vec![5.0, 10.0, 3.0],
        ])
    }

    #[test]
    fn correlated_column_is_removed_first() {
        let order = elimination_order(&redundant_set());
        // One of the two correlated columns (0 or 1) goes first; the
        // independent column 2 must survive longest.
        assert!(order[0] == 0 || order[0] == 1, "{order:?}");
        assert_ne!(order[1], 2, "independent column eliminated too early: {order:?}");
    }

    #[test]
    fn retained_set_has_requested_size_and_keeps_independent_column() {
        let kept = correlation_elimination(&redundant_set(), 2);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&2), "{kept:?}");
    }

    #[test]
    fn retaining_all_is_identity() {
        let ds = redundant_set();
        assert_eq!(correlation_elimination(&ds, 3), vec![0, 1, 2]);
    }

    #[test]
    fn order_covers_all_but_one_column() {
        let ds = redundant_set();
        let order = elimination_order(&ds);
        assert_eq!(order.len(), ds.cols() - 1);
        let mut all: Vec<usize> = order.clone();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), order.len(), "no duplicates");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_target_rejected() {
        let _ = correlation_elimination(&redundant_set(), 0);
    }

    #[test]
    fn mean_abs_correlation_of_duplicate_columns_is_one() {
        let ds = DataSet::from_rows(vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let remaining = [0, 1];
        assert!((mean_abs_correlation(&ds, 0, &remaining) - 1.0).abs() < 1e-12);
    }
}

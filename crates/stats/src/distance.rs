//! Pairwise Euclidean distances and Pearson correlation.

use crate::dataset::DataSet;
use serde::{Deserialize, Serialize};

/// The upper triangle of a symmetric distance matrix over `n` items,
/// stored condensed (like SciPy's `pdist` output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondensedDistances {
    n: usize,
    values: Vec<f64>,
}

impl CondensedDistances {
    /// Number of items (benchmarks).
    pub fn num_items(&self) -> usize {
        self.n
    }

    /// Number of pairs, `n * (n - 1) / 2`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when there are no pairs (fewer than two items).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The condensed values, ordered `(0,1), (0,2), ..., (n-2,n-1)`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Distance between items `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "no self-distance in a condensed matrix");
        assert!(i < self.n && j < self.n, "index out of range");
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        // Offset of row i's block in the condensed layout.
        let idx = i * self.n - i * (i + 1) / 2 + (j - i - 1);
        self.values[idx]
    }

    /// Largest pairwise distance (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Iterate `(i, j, distance)` over all pairs.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.n;
        (0..n)
            .flat_map(move |i| (i + 1..n).map(move |j| (i, j)))
            .zip(self.values.iter().copied())
            .map(|((i, j), d)| (i, j, d))
    }
}

/// One row's block of the condensed layout: distances from item `i` to
/// every item after it.
fn row_block(ds: &DataSet, i: usize) -> Vec<f64> {
    let a = ds.row(i);
    (i + 1..ds.rows())
        .map(|j| {
            let b = ds.row(j);
            let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
            d2.sqrt()
        })
        .collect()
}

/// Euclidean distances between all row pairs of `ds`.
///
/// Row blocks are computed on the [`mica_par`] worker pool and concatenated
/// in row order, so the result is bit-identical to
/// [`pairwise_distances_serial`] regardless of thread count.
pub fn pairwise_distances(ds: &DataSet) -> CondensedDistances {
    let n = ds.rows();
    let blocks = mica_par::par_map_indexed(n.saturating_sub(1), |i| row_block(ds, i));
    let mut values = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for block in blocks {
        values.extend(block);
    }
    CondensedDistances { n, values }
}

/// Single-threaded reference implementation of [`pairwise_distances`].
pub fn pairwise_distances_serial(ds: &DataSet) -> CondensedDistances {
    let n = ds.rows();
    let mut values = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for i in 0..n {
        values.extend(row_block(ds, i));
    }
    CondensedDistances { n, values }
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 if either sample has zero variance (degenerate case; the
/// experiments treat "no information" as "no correlation").
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must have equal length");
    assert!(!a.is_empty(), "samples must be non-empty");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_computation() {
        let ds = DataSet::from_rows(vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![0.0, 1.0]]);
        let d = pairwise_distances(&ds);
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(0, 2), 1.0);
        assert_eq!(d.get(1, 2), (9.0f64 + 9.0).sqrt());
        assert_eq!(d.get(1, 0), d.get(0, 1), "symmetric lookup");
        assert_eq!(d.max(), 5.0);
    }

    #[test]
    fn iter_pairs_covers_upper_triangle_in_order() {
        let ds = DataSet::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let d = pairwise_distances(&ds);
        let pairs: Vec<_> = d.iter_pairs().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for (i, j, dist) in d.iter_pairs() {
            assert_eq!(dist, (j - i) as f64);
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let ds = DataSet::from_rows(vec![
            vec![1.0, 7.0, -2.0],
            vec![0.5, -3.0, 4.0],
            vec![9.0, 0.0, 0.0],
        ]);
        let d = pairwise_distances(&ds);
        assert!(d.get(0, 2) <= d.get(0, 1) + d.get(1, 2) + 1e-12);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let rows: Vec<Vec<f64>> = (0..37)
            .map(|i| (0..8).map(|k| ((i * 13 + k * 7) % 29) as f64 / 3.0 - 4.5).collect())
            .collect();
        let ds = DataSet::from_rows(rows);
        let par = pairwise_distances(&ds);
        let ser = pairwise_distances_serial(&ds);
        assert_eq!(par, ser);
        assert!(par.values().iter().zip(ser.values()).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn degenerate_datasets_give_empty_distances() {
        // 0 rows (fully-quarantined run) and 1 row (single survivor) both
        // have no pairs; neither may panic.
        for ds in [DataSet::from_rows(Vec::new()), DataSet::from_rows(vec![vec![1.0, 2.0]])] {
            let par = pairwise_distances(&ds);
            let ser = pairwise_distances_serial(&ds);
            assert_eq!(par, ser);
            assert!(par.values().is_empty());
            assert_eq!(par.max(), 0.0);
        }
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        // Orthogonal-ish pattern.
        let a = [1.0, -1.0, 1.0, -1.0];
        let b = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&a, &b).abs() < 1e-12);
    }
}

//! Agglomerative hierarchical clustering and silhouette validation.
//!
//! The workload-characterization line of work the paper builds on
//! (Eeckhout et al.) groups benchmarks with dendrograms; this module
//! provides average-linkage agglomerative clustering as an alternative to
//! the paper's k-means, plus silhouette scores to compare clusterings.

use crate::distance::CondensedDistances;

/// One merge step of the dendrogram: clusters `a` and `b` (indices into the
/// merge history: `0..n` are leaves, `n + i` is the cluster created by merge
/// `i`) joined at `height` (average inter-cluster distance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    pub a: usize,
    pub b: usize,
    pub height: f64,
}

/// The full merge history of an agglomerative clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves (items clustered).
    pub fn num_items(&self) -> usize {
        self.n
    }

    /// The merge steps, in order of increasing height.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cut the tree into `k` clusters; returns a label per item, with
    /// labels in `0..k` (renumbered arbitrarily but densely).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the number of items.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n, "k out of range");
        // Apply the first n - k merges with a union-find.
        let total = self.n + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, m) in self.merges.iter().take(self.n - k).enumerate() {
            let node = self.n + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        // Densely renumber the roots.
        let mut labels = vec![0usize; self.n];
        let mut seen: Vec<usize> = Vec::new();
        for (i, label) in labels.iter_mut().enumerate() {
            let r = find(&mut parent, i);
            *label = match seen.iter().position(|&s| s == r) {
                Some(p) => p,
                None => {
                    seen.push(r);
                    seen.len() - 1
                }
            };
        }
        labels
    }
}

/// Average-linkage (UPGMA) agglomerative clustering over a precomputed
/// distance matrix. O(n^3) in the number of items — fine for benchmark
/// counts.
pub fn hierarchical_cluster(d: &CondensedDistances) -> Dendrogram {
    let n = d.num_items();
    // active clusters: (node id, member leaves)
    let mut clusters: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;

    let avg_dist = |a: &[usize], b: &[usize]| -> f64 {
        let mut s = 0.0;
        for &x in a {
            for &y in b {
                s += d.get(x, y);
            }
        }
        s / (a.len() * b.len()) as f64
    };

    while clusters.len() > 1 {
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let dist = avg_dist(&clusters[i].1, &clusters[j].1);
                if dist < best.2 {
                    best = (i, j, dist);
                }
            }
        }
        let (i, j, height) = best;
        let (id_b, mut members_b) = clusters.swap_remove(j);
        let (id_a, members_a) = std::mem::take(&mut clusters[i]);
        let mut members = members_a;
        members.append(&mut members_b);
        clusters[i] = (next_id, members);
        merges.push(Merge { a: id_a, b: id_b, height });
        next_id += 1;
    }
    Dendrogram { n, merges }
}

/// Mean silhouette coefficient of a labeling under a distance matrix, in
/// `[-1, 1]`; higher means tighter, better-separated clusters. Items in
/// singleton clusters contribute 0 (the standard convention).
///
/// # Panics
///
/// Panics if `labels` does not match the matrix size.
pub fn silhouette(d: &CondensedDistances, labels: &[usize]) -> f64 {
    let n = d.num_items();
    assert_eq!(labels.len(), n, "one label per item");
    if n <= 1 {
        return 0.0;
    }
    let k = labels.iter().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }
    let mut total = 0.0;
    for i in 0..n {
        if sizes[labels[i]] <= 1 {
            continue; // singleton: silhouette 0
        }
        // a = mean intra-cluster distance; b = min mean distance to another
        // cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if j != i {
                sums[labels[j]] += d.get(i, j);
            }
        }
        let a = sums[labels[i]] / (sizes[labels[i]] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != labels[i] && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DataSet;
    use crate::distance::pairwise_distances;

    fn blobs() -> (DataSet, Vec<usize>) {
        // Two tight 1-D blobs: {0.0, 0.1, 0.2} and {10.0, 10.1, 10.2}.
        let rows =
            vec![vec![0.0], vec![0.1], vec![0.2], vec![10.0], vec![10.1], vec![10.2]];
        (DataSet::from_rows(rows), vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn dendrogram_has_n_minus_one_merges_with_rising_heights() {
        let (ds, _) = blobs();
        let dend = hierarchical_cluster(&pairwise_distances(&ds));
        assert_eq!(dend.merges().len(), 5);
        for w in dend.merges().windows(2) {
            assert!(w[0].height <= w[1].height + 1e-12, "UPGMA heights rise");
        }
    }

    #[test]
    fn cut_at_two_recovers_the_blobs() {
        let (ds, truth) = blobs();
        let dend = hierarchical_cluster(&pairwise_distances(&ds));
        let labels = dend.cut(2);
        // Same partition as the ground truth (up to label swap).
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(
                    labels[i] == labels[j],
                    truth[i] == truth[j],
                    "items {i},{j} disagree"
                );
            }
        }
    }

    #[test]
    fn cut_extremes() {
        let (ds, _) = blobs();
        let dend = hierarchical_cluster(&pairwise_distances(&ds));
        assert_eq!(dend.cut(1), vec![0; 6]);
        let mut six = dend.cut(6);
        six.sort_unstable();
        assert_eq!(six, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn silhouette_prefers_the_true_partition() {
        let (ds, truth) = blobs();
        let d = pairwise_distances(&ds);
        let good = silhouette(&d, &truth);
        let bad = silhouette(&d, &[0, 1, 0, 1, 0, 1]);
        assert!(good > 0.9, "true split scores high: {good}");
        assert!(bad < 0.0, "mixed split scores badly: {bad}");
    }

    #[test]
    fn silhouette_of_singletons_is_zero() {
        let (ds, _) = blobs();
        let d = pairwise_distances(&ds);
        assert_eq!(silhouette(&d, &[0, 1, 2, 3, 4, 5]), 0.0);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn cut_rejects_bad_k() {
        let (ds, _) = blobs();
        let dend = hierarchical_cluster(&pairwise_distances(&ds));
        let _ = dend.cut(0);
    }
}

//! Principal components analysis (the prior-work baseline of Section V-C).
//!
//! The paper contrasts its metric-subset methods against PCA-based workload
//! characterization: PCA also reduces dimensionality, but (i) still requires
//! all original metrics to be measured and (ii) produces dimensions that are
//! linear combinations, harder to interpret. This implementation exists to
//! make that comparison concrete in the examples and ablation benchmarks.

use crate::dataset::DataSet;
use crate::zscore_normalize;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Eigenvalues, descending.
    eigenvalues: Vec<f64>,
    /// Matching unit eigenvectors (each of length = original columns).
    components: Vec<Vec<f64>>,
    /// Column means of the training data (for centering at transform time).
    means: Vec<f64>,
    /// Column standard deviations of the training data.
    sds: Vec<f64>,
}

/// Jacobi eigenvalue iteration for a symmetric matrix given as rows.
/// Returns (eigenvalues, eigenvectors-as-columns) unsorted.
fn jacobi(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        // Largest off-diagonal element.
        let mut off = 0.0;
        for (i, row) in a.iter().enumerate() {
            for x in &row[i + 1..] {
                off += x * x;
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if a[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for row in a.iter_mut() {
                    let akp = row[p];
                    let akq = row[q];
                    row[p] = c * akp - s * akq;
                    row[q] = s * akp + c * akq;
                }
                let (top, bottom) = a.split_at_mut(q);
                for (apk, aqk) in top[p].iter_mut().zip(bottom[0].iter_mut()) {
                    let (x, y) = (*apk, *aqk);
                    *apk = c * x - s * y;
                    *aqk = s * x + c * y;
                }
                for row in v.iter_mut() {
                    let vkp = row[p];
                    let vkq = row[q];
                    row[p] = c * vkp - s * vkq;
                    row[q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigenvalues: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
    (eigenvalues, v)
}

impl Pca {
    /// Fit PCA on `ds` (z-scored internally, i.e. PCA on the correlation
    /// matrix, which is what the prior MICA-adjacent work does).
    pub fn fit(ds: &DataSet) -> Self {
        let n = ds.rows() as f64;
        let d = ds.cols();
        let means: Vec<f64> = (0..d).map(|c| ds.column(c).iter().sum::<f64>() / n).collect();
        let sds: Vec<f64> = (0..d)
            .map(|c| {
                let v = ds.column(c).iter().map(|x| (x - means[c]).powi(2)).sum::<f64>() / n;
                v.sqrt()
            })
            .collect();
        let z = zscore_normalize(ds);
        // Covariance of z-scored data = correlation matrix.
        let mut cov = vec![vec![0.0; d]; d];
        for (i, cov_row) in cov.iter_mut().enumerate() {
            for (j, cr) in cov_row.iter_mut().enumerate() {
                let mut s = 0.0;
                for r in 0..z.rows() {
                    s += z.get(r, i) * z.get(r, j);
                }
                *cr = s / n;
            }
        }
        let (eigenvalues, vectors) = jacobi(cov);
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| eigenvalues[b].partial_cmp(&eigenvalues[a]).unwrap());
        let sorted_vals: Vec<f64> = order.iter().map(|&i| eigenvalues[i].max(0.0)).collect();
        let components: Vec<Vec<f64>> =
            order.iter().map(|&i| (0..d).map(|k| vectors[k][i]).collect()).collect();
        Pca { eigenvalues: sorted_vals, components, means, sds }
    }

    /// Eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// The `i`-th principal component (loadings over original metrics).
    pub fn component(&self, i: usize) -> &[f64] {
        &self.components[i]
    }

    /// Fraction of total variance explained by the first `k` components.
    pub fn explained_variance(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.eigenvalues.iter().take(k).sum::<f64>() / total
    }

    /// Number of components needed to explain at least `fraction` of the
    /// variance.
    pub fn components_for_variance(&self, fraction: f64) -> usize {
        let mut k = 0;
        while k < self.eigenvalues.len() && self.explained_variance(k) < fraction {
            k += 1;
        }
        k
    }

    /// Project `ds` onto the first `k` components.
    ///
    /// # Panics
    ///
    /// Panics if `ds` has a different column count than the training data or
    /// `k` exceeds the number of components.
    pub fn transform(&self, ds: &DataSet, k: usize) -> DataSet {
        assert_eq!(ds.cols(), self.means.len(), "column count mismatch");
        assert!(k >= 1 && k <= self.components.len(), "k out of range");
        let mut out = DataSet::zeros(ds.rows(), k);
        for r in 0..ds.rows() {
            for (j, comp) in self.components.iter().take(k).enumerate() {
                let mut s = 0.0;
                for (c, &cw) in comp.iter().enumerate() {
                    let z = if self.sds[c] > 0.0 {
                        (ds.get(r, c) - self.means[c]) / self.sds[c]
                    } else {
                        0.0
                    };
                    s += z * cw;
                }
                out.set(r, j, s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two informative dimensions embedded in four columns (two are copies).
    fn redundant() -> DataSet {
        let mut rows = Vec::new();
        let mut x = 5u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f64 / 100.0
        };
        for _ in 0..40 {
            let a = rnd();
            let b = rnd();
            rows.push(vec![a, b, a * 3.0, -b]);
        }
        DataSet::from_rows(rows)
    }

    #[test]
    fn two_latent_factors_explain_everything() {
        let pca = Pca::fit(&redundant());
        assert!(pca.explained_variance(2) > 0.999, "{:?}", pca.eigenvalues());
        assert_eq!(pca.components_for_variance(0.99), 2);
    }

    #[test]
    fn eigenvalues_descend_and_sum_to_dimension() {
        let pca = Pca::fit(&redundant());
        let ev = pca.eigenvalues();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        // Correlation-matrix eigenvalues sum to the number of variables.
        let sum: f64 = ev.iter().sum();
        assert!((sum - 4.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn components_are_orthonormal() {
        let pca = Pca::fit(&redundant());
        for i in 0..2 {
            for j in 0..2 {
                let dot: f64 =
                    pca.component(i).iter().zip(pca.component(j)).map(|(a, b)| a * b).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-6, "dot({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn transform_preserves_pairwise_distances_with_full_rank() {
        use crate::distance::pairwise_distances;
        use crate::pearson;
        let ds = redundant();
        let pca = Pca::fit(&ds);
        let z = zscore_normalize(&ds);
        let full = pairwise_distances(&z);
        let proj = pca.transform(&ds, 4);
        let reduced = pairwise_distances(&proj);
        // Orthogonal transform: distances identical.
        let r = pearson(full.values(), reduced.values());
        assert!(r > 0.9999, "r = {r}");
    }
}

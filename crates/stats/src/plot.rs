//! Minimal self-contained SVG emitters for the experiment outputs:
//! scatter plots (Figure 1), line charts (Figures 4 and 5), grouped bars
//! (Figures 2 and 3) and kiviat/radar diagrams (Figure 6).
//!
//! These are intentionally dependency-free string builders — enough to make
//! the regenerated figures viewable, not a plotting library.

use std::fmt::Write as _;

const W: f64 = 640.0;
const H: f64 = 480.0;
const MARGIN: f64 = 60.0;

fn header(title: &str) -> String {
    format!(
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" ",
            "viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\" font-size=\"11\">\n",
            "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n",
            "<text x=\"{cx}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\">{t}</text>"
        ),
        w = W,
        h = H,
        cx = W / 2.0,
        t = xml_escape(title),
    )
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn bounds(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in vals {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

struct Scale {
    lo: f64,
    hi: f64,
    out_lo: f64,
    out_hi: f64,
}

impl Scale {
    fn map(&self, v: f64) -> f64 {
        self.out_lo + (v - self.lo) / (self.hi - self.lo) * (self.out_hi - self.out_lo)
    }
}

fn axes(svg: &mut String, xs: &Scale, ys: &Scale, x_label: &str, y_label: &str) {
    let _ = write!(
        svg,
        "<line x1=\"{m}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"black\"/>\n\
         <line x1=\"{m}\" y1=\"{t}\" x2=\"{m}\" y2=\"{b}\" stroke=\"black\"/>",
        m = MARGIN,
        b = H - MARGIN,
        r = W - MARGIN / 2.0,
        t = MARGIN / 2.0,
    );
    for i in 0..=5 {
        let fx = xs.lo + (xs.hi - xs.lo) * i as f64 / 5.0;
        let px = xs.map(fx);
        let _ = write!(
            svg,
            "<line x1=\"{px}\" y1=\"{b}\" x2=\"{px}\" y2=\"{b2}\" stroke=\"black\"/>\n\
             <text x=\"{px}\" y=\"{ty}\" text-anchor=\"middle\">{fx:.2}</text>",
            b = H - MARGIN,
            b2 = H - MARGIN + 5.0,
            ty = H - MARGIN + 18.0,
        );
        let fy = ys.lo + (ys.hi - ys.lo) * i as f64 / 5.0;
        let py = ys.map(fy);
        let _ = write!(
            svg,
            "<line x1=\"{m}\" y1=\"{py}\" x2=\"{m2}\" y2=\"{py}\" stroke=\"black\"/>\n\
             <text x=\"{tx}\" y=\"{py2}\" text-anchor=\"end\">{fy:.2}</text>",
            m = MARGIN,
            m2 = MARGIN - 5.0,
            tx = MARGIN - 8.0,
            py2 = py + 4.0,
        );
    }
    let _ = write!(
        svg,
        "<text x=\"{cx}\" y=\"{by}\" text-anchor=\"middle\">{xl}</text>\n\
         <text x=\"16\" y=\"{cy}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {cy})\">{yl}</text>",
        cx = W / 2.0,
        by = H - 14.0,
        cy = H / 2.0,
        xl = xml_escape(x_label),
        yl = xml_escape(y_label),
    );
}

/// A scatter plot of `(x, y)` points.
pub fn svg_scatter(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut svg = header(title);
    let (xlo, xhi) = bounds(points.iter().map(|p| p.0));
    let (ylo, yhi) = bounds(points.iter().map(|p| p.1));
    let xs = Scale { lo: xlo, hi: xhi, out_lo: MARGIN, out_hi: W - MARGIN / 2.0 };
    let ys = Scale { lo: ylo, hi: yhi, out_lo: H - MARGIN, out_hi: MARGIN / 2.0 };
    axes(&mut svg, &xs, &ys, x_label, y_label);
    for &(x, y) in points {
        let _ = writeln!(
            svg,
            "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"2\" fill=\"steelblue\" fill-opacity=\"0.5\"/>",
            xs.map(x),
            ys.map(y)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Palette shared by line and bar charts.
const COLORS: [&str; 6] = ["steelblue", "crimson", "seagreen", "darkorange", "purple", "gray"];

/// A multi-series line chart. Each series is `(name, points)`.
pub fn svg_lines(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(String, Vec<(f64, f64)>)],
) -> String {
    let mut svg = header(title);
    let (xlo, xhi) = bounds(series.iter().flat_map(|s| s.1.iter().map(|p| p.0)));
    let (ylo, yhi) = bounds(series.iter().flat_map(|s| s.1.iter().map(|p| p.1)));
    let xs = Scale { lo: xlo, hi: xhi, out_lo: MARGIN, out_hi: W - MARGIN / 2.0 };
    let ys = Scale { lo: ylo, hi: yhi, out_lo: H - MARGIN, out_hi: MARGIN / 2.0 };
    axes(&mut svg, &xs, &ys, x_label, y_label);
    for (i, (name, pts)) in series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let path: Vec<String> =
            pts.iter().map(|&(x, y)| format!("{:.2},{:.2}", xs.map(x), ys.map(y))).collect();
        let _ = writeln!(
            svg,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>",
            path.join(" ")
        );
        let _ = writeln!(
            svg,
            "<text x=\"{x}\" y=\"{y}\" fill=\"{color}\">{n}</text>",
            x = W - MARGIN * 2.5,
            y = MARGIN / 2.0 + 16.0 * (i + 1) as f64,
            n = xml_escape(name),
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// A grouped bar chart: one group per label, one bar per series.
pub fn svg_grouped_bars(
    title: &str,
    labels: &[String],
    series: &[(String, Vec<f64>)],
) -> String {
    let mut svg = header(title);
    let (_, hi) = bounds(series.iter().flat_map(|s| s.1.iter().copied()));
    let hi = hi.max(1e-12);
    let plot_w = W - MARGIN * 1.5;
    let plot_h = H - MARGIN * 2.0;
    let group_w = plot_w / labels.len().max(1) as f64;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;
    for (gi, label) in labels.iter().enumerate() {
        let gx = MARGIN + gi as f64 * group_w;
        for (si, (_, vals)) in series.iter().enumerate() {
            let v = vals.get(gi).copied().unwrap_or(0.0);
            let bh = (v / hi).clamp(0.0, 1.0) * plot_h;
            let _ = writeln!(
                svg,
                "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"{}\"/>",
                gx + si as f64 * bar_w,
                H - MARGIN - bh,
                bar_w * 0.95,
                bh,
                COLORS[si % COLORS.len()],
            );
        }
        let _ = writeln!(
            svg,
            "<text x=\"{:.2}\" y=\"{:.2}\" text-anchor=\"end\" font-size=\"8\" \
             transform=\"rotate(-60 {x:.2} {y:.2})\">{}</text>",
            gx + group_w * 0.4,
            H - MARGIN + 12.0,
            xml_escape(label),
            x = gx + group_w * 0.4,
            y = H - MARGIN + 12.0,
        );
    }
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(
            svg,
            "<text x=\"{x}\" y=\"{y}\" fill=\"{c}\">{n}</text>",
            x = W - MARGIN * 2.5,
            y = MARGIN / 2.0 + 16.0 * (si + 1) as f64,
            c = COLORS[si % COLORS.len()],
            n = xml_escape(name),
        );
    }
    let _ = writeln!(
        svg,
        "<line x1=\"{m}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"black\"/>",
        m = MARGIN,
        b = H - MARGIN,
        r = W - MARGIN / 2.0
    );
    svg.push_str("</svg>\n");
    svg
}

/// A kiviat (radar) diagram of values normalized to `[0, 1]`, one axis per
/// entry of `axes` (Figure 6's per-benchmark plot).
///
/// # Panics
///
/// Panics if `axes` and `values` differ in length or fewer than 3 axes are
/// given.
pub fn svg_kiviat(title: &str, axes: &[String], values: &[f64]) -> String {
    assert_eq!(axes.len(), values.len(), "one value per axis");
    assert!(axes.len() >= 3, "a kiviat plot needs at least 3 axes");
    let size = 320.0;
    let cx = size / 2.0;
    let cy = size / 2.0 + 10.0;
    let radius = size / 2.0 - 50.0;
    let mut svg = format!(
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{s}\" height=\"{s}\" ",
            "viewBox=\"0 0 {s} {s}\" font-family=\"sans-serif\" font-size=\"9\">\n",
            "<rect width=\"{s}\" height=\"{s}\" fill=\"white\"/>\n",
            "<text x=\"{cx}\" y=\"14\" text-anchor=\"middle\" font-size=\"12\">{t}</text>"
        ),
        s = size,
        cx = cx,
        t = xml_escape(title),
    );
    let n = axes.len();
    let angle = |i: usize| std::f64::consts::TAU * i as f64 / n as f64 - std::f64::consts::FRAC_PI_2;
    // Grid rings.
    for ring in [0.25, 0.5, 0.75, 1.0] {
        let pts: Vec<String> = (0..n)
            .map(|i| {
                let a = angle(i);
                format!("{:.1},{:.1}", cx + radius * ring * a.cos(), cy + radius * ring * a.sin())
            })
            .collect();
        let _ = writeln!(
            svg,
            "<polygon points=\"{}\" fill=\"none\" stroke=\"#ddd\"/>",
            pts.join(" ")
        );
    }
    // Spokes and labels.
    for (i, label) in axes.iter().enumerate() {
        let a = angle(i);
        let (x, y) = (cx + radius * a.cos(), cy + radius * a.sin());
        let _ = writeln!(
            svg,
            "<line x1=\"{cx}\" y1=\"{cy}\" x2=\"{x:.1}\" y2=\"{y:.1}\" stroke=\"#bbb\"/>"
        );
        let (lx, ly) = (cx + (radius + 14.0) * a.cos(), cy + (radius + 14.0) * a.sin());
        let _ = writeln!(
            svg,
            "<text x=\"{lx:.1}\" y=\"{ly:.1}\" text-anchor=\"middle\">{}</text>",
            xml_escape(label)
        );
    }
    // Value polygon.
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let a = angle(i);
            let r = radius * v.clamp(0.0, 1.0);
            format!("{:.1},{:.1}", cx + r * a.cos(), cy + r * a.sin())
        })
        .collect();
    let _ = writeln!(
        svg,
        "<polygon points=\"{}\" fill=\"steelblue\" fill-opacity=\"0.35\" stroke=\"steelblue\"/>",
        pts.join(" ")
    );
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_contains_every_point() {
        let pts = [(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)];
        let svg = svg_scatter("t", "x", "y", &pts);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn lines_have_one_polyline_per_series() {
        let series = vec![
            ("a".to_string(), vec![(0.0, 0.0), (1.0, 1.0)]),
            ("b".to_string(), vec![(0.0, 1.0), (1.0, 0.0)]),
        ];
        let svg = svg_lines("t", "x", "y", &series);
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn kiviat_draws_axes_and_polygon() {
        let axes: Vec<String> = (0..8).map(|i| format!("m{i}")).collect();
        let vals = vec![0.5; 8];
        let svg = svg_kiviat("bench", &axes, &vals);
        // 4 rings + 1 value polygon.
        assert_eq!(svg.matches("<polygon").count(), 5);
        assert_eq!(svg.matches("<line").count(), 8);
    }

    #[test]
    fn bars_render_groups_times_series() {
        let labels: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let series =
            vec![("s1".to_string(), vec![1.0, 2.0, 3.0]), ("s2".to_string(), vec![3.0, 2.0, 1.0])];
        let svg = svg_grouped_bars("t", &labels, &series);
        assert_eq!(svg.matches("<rect").count(), 1 + 6); // background + bars
    }

    #[test]
    fn titles_are_escaped() {
        let svg = svg_scatter("a < b & c", "x", "y", &[(0.0, 0.0)]);
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    #[should_panic(expected = "3 axes")]
    fn kiviat_rejects_too_few_axes() {
        let _ = svg_kiviat("t", &["a".into(), "b".into()], &[0.1, 0.2]);
    }
}

//! Genetic-algorithm feature selection (Section V-B of the paper).
//!
//! A solution is a bitmask over the N metrics. The paper's fitness is
//! `f = rho * (1 - n/N)`, where `rho` is the Pearson correlation between the
//! pairwise benchmark distances in the full space and in the selected
//! subspace, and `n` is the number of selected metrics — rewarding subsets
//! that preserve the workload-space geometry while being small.

use crate::dataset::DataSet;
use crate::distance::{pairwise_distances, pearson};
use crate::zscore_normalize;
use mica_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GA generations evaluated, across all selector runs in the process.
static GENERATIONS: obs::Counter = obs::Counter::new("ga.generations");

/// Hyperparameters of the genetic algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Maximum generations.
    pub generations: usize,
    /// Per-bit mutation probability.
    pub mutation_rate: f64,
    /// Probability of crossover (vs. cloning) when breeding.
    pub crossover_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Number of best solutions copied unchanged into the next generation.
    pub elitism: usize,
    /// Stop early after this many generations without improvement
    /// ("until no more improvement is observed", as the paper puts it).
    pub stagnation_limit: usize,
    /// RNG seed — the selection is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 64,
            generations: 300,
            mutation_rate: 0.02,
            crossover_rate: 0.9,
            tournament: 3,
            elitism: 2,
            stagnation_limit: 60,
            seed: 0x4d49_4341, // "MICA"
        }
    }
}

/// Outcome of a GA feature-selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaResult {
    /// Selected column indices, ascending.
    pub selected: Vec<usize>,
    /// The achieved fitness value.
    pub fitness: f64,
    /// The distance-correlation component `rho` of the fitness.
    pub rho: f64,
    /// Generations actually run (early stop counts).
    pub generations_run: usize,
    /// Best fitness per generation.
    pub history: Vec<f64>,
}

/// The GA engine. Precomputes per-column pairwise squared differences so a
/// genome evaluation is one weighted sum per benchmark pair.
#[derive(Debug)]
pub struct GeneticSelector {
    config: GaConfig,
    num_cols: usize,
    /// Full-space pairwise distances.
    full: Vec<f64>,
    /// `col_sq[c][p]` = squared difference of column `c` for pair `p`.
    col_sq: Vec<Vec<f64>>,
    /// If set, genomes are constrained to exactly this many bits and the
    /// fitness is plain `rho`.
    fixed_size: Option<usize>,
}

impl GeneticSelector {
    /// Build a selector over `ds` (z-scored internally; z-scoring is
    /// idempotent so already-normalized data is fine).
    ///
    /// # Panics
    ///
    /// Panics if `ds` has more than 64 columns or fewer than 2 rows.
    pub fn new(ds: &DataSet, config: GaConfig) -> Self {
        assert!(ds.cols() <= 64, "genomes are 64-bit masks");
        assert!(ds.rows() >= 2, "need at least two benchmarks");
        let z = zscore_normalize(ds);
        let full = pairwise_distances(&z).values().to_vec();
        let pairs = full.len();
        let mut col_sq = vec![vec![0.0; pairs]; z.cols()];
        let n = z.rows();
        let mut p = 0;
        for i in 0..n {
            for j in i + 1..n {
                for (c, sq) in col_sq.iter_mut().enumerate() {
                    let d = z.get(i, c) - z.get(j, c);
                    sq[p] = d * d;
                }
                p += 1;
            }
        }
        GeneticSelector { config, num_cols: z.cols(), full, col_sq, fixed_size: None }
    }

    /// Constrain genomes to exactly `k` selected metrics (fitness becomes
    /// plain `rho`). Used for like-for-like comparisons against correlation
    /// elimination at a given subset size.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the number of columns.
    pub fn with_fixed_size(mut self, k: usize) -> Self {
        assert!(k >= 1 && k <= self.num_cols, "fixed size out of range");
        self.fixed_size = Some(k);
        self
    }

    /// Distance correlation `rho` for a genome.
    fn rho(&self, genome: u64) -> f64 {
        let pairs = self.full.len();
        let mut sub = vec![0.0; pairs];
        for c in 0..self.num_cols {
            if genome >> c & 1 == 1 {
                let sq = &self.col_sq[c];
                for (s, q) in sub.iter_mut().zip(sq) {
                    *s += q;
                }
            }
        }
        for s in &mut sub {
            *s = s.sqrt();
        }
        pearson(&self.full, &sub)
    }

    /// Fitness of a genome: `rho * (1 - n/N)` (or plain `rho` when the
    /// subset size is fixed). Empty genomes score 0.
    pub fn fitness(&self, genome: u64) -> f64 {
        let n = genome.count_ones() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let rho = self.rho(genome);
        match self.fixed_size {
            Some(_) => rho,
            None => rho * (1.0 - n / self.num_cols as f64),
        }
    }

    fn random_genome(&self, rng: &mut StdRng) -> u64 {
        match self.fixed_size {
            Some(k) => {
                let mut g = 0u64;
                while (g.count_ones() as usize) < k {
                    g |= 1 << rng.gen_range(0..self.num_cols);
                }
                g
            }
            None => {
                let mask = if self.num_cols == 64 { u64::MAX } else { (1u64 << self.num_cols) - 1 };
                let g = rng.gen::<u64>() & mask;
                if g == 0 {
                    1 << rng.gen_range(0..self.num_cols)
                } else {
                    g
                }
            }
        }
    }

    /// Repair a genome to satisfy the non-empty (and fixed-size, if any)
    /// constraint.
    fn repair(&self, mut g: u64, rng: &mut StdRng) -> u64 {
        match self.fixed_size {
            Some(k) => {
                while (g.count_ones() as usize) > k {
                    // Drop a random selected bit.
                    let selected: Vec<usize> =
                        (0..self.num_cols).filter(|&c| g >> c & 1 == 1).collect();
                    g &= !(1 << selected[rng.gen_range(0..selected.len())]);
                }
                while (g.count_ones() as usize) < k {
                    g |= 1 << rng.gen_range(0..self.num_cols);
                }
                g
            }
            None => {
                if g == 0 {
                    g = 1 << rng.gen_range(0..self.num_cols);
                }
                g
            }
        }
    }

    fn tournament_pick(&self, pop: &[(u64, f64)], rng: &mut StdRng) -> u64 {
        let mut best = pop[rng.gen_range(0..pop.len())];
        for _ in 1..self.config.tournament.max(1) {
            let cand = pop[rng.gen_range(0..pop.len())];
            if cand.1 > best.1 {
                best = cand;
            }
        }
        best.0
    }

    /// Score a batch of genomes, optionally on the worker pool. Fitness is
    /// RNG-free, so parallel evaluation returns bit-identical scores in the
    /// same order as a serial pass.
    fn evaluate(&self, genomes: Vec<u64>, parallel: bool) -> Vec<(u64, f64)> {
        if parallel {
            mica_par::par_map(&genomes, |&g| (g, self.fitness(g)))
        } else {
            genomes.into_iter().map(|g| (g, self.fitness(g))).collect()
        }
    }

    /// Run the GA to completion, evaluating population fitness on the
    /// worker pool. Bit-identical to [`run_serial`](Self::run_serial): all
    /// RNG consumption (breeding) happens serially; only the RNG-free
    /// fitness scoring is distributed, and scores are merged back in
    /// breeding order before the (stable) ranking sort.
    pub fn run(&self) -> GaResult {
        self.run_impl(true)
    }

    /// Single-threaded reference run; see [`run`](Self::run).
    pub fn run_serial(&self) -> GaResult {
        self.run_impl(false)
    }

    fn run_impl(&self, parallel: bool) -> GaResult {
        let cfg = self.config;
        let mut run_span = obs::span("ga", "ga_run");
        run_span.attr("population", cfg.population as u64);
        run_span.attr("metrics", self.num_cols as u64);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let seeds: Vec<u64> =
            (0..cfg.population.max(2)).map(|_| self.random_genome(&mut rng)).collect();
        let mut pop = self.evaluate(seeds, parallel);
        pop.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

        let mut history = Vec::new();
        let mut best = pop[0];
        let mut stagnant = 0;
        let mut gens = 0;
        for _ in 0..cfg.generations {
            gens += 1;
            GENERATIONS.incr();
            let mut gen_span = obs::span("ga", "generation");
            gen_span.attr("gen", gens as u64);
            let elites = cfg.elitism.min(pop.len());
            let mut children = Vec::with_capacity(pop.len() - elites);
            while elites + children.len() < pop.len() {
                let a = self.tournament_pick(&pop, &mut rng);
                let b = self.tournament_pick(&pop, &mut rng);
                let mut child = if rng.gen::<f64>() < cfg.crossover_rate {
                    // Uniform crossover.
                    let mask = rng.gen::<u64>();
                    (a & mask) | (b & !mask)
                } else {
                    a
                };
                for c in 0..self.num_cols {
                    if rng.gen::<f64>() < cfg.mutation_rate {
                        child ^= 1 << c;
                    }
                }
                children.push(self.repair(child, &mut rng));
            }
            let mut next: Vec<(u64, f64)> = pop[..elites].to_vec();
            next.extend(self.evaluate(children, parallel));
            next.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            pop = next;
            history.push(pop[0].1);
            gen_span.attr("best_fitness", pop[0].1);
            if pop[0].1 > best.1 + 1e-12 {
                best = pop[0];
                stagnant = 0;
            } else {
                stagnant += 1;
                if stagnant >= cfg.stagnation_limit {
                    break;
                }
            }
        }

        let selected: Vec<usize> = (0..self.num_cols).filter(|&c| best.0 >> c & 1 == 1).collect();
        run_span.attr("generations", gens as u64);
        run_span.attr("fitness", best.1);
        obs::debug!("ga converged after {gens} generations (fitness {:.4})", best.1);
        GaResult {
            rho: self.rho(best.0),
            selected,
            fitness: best.1,
            generations_run: gens,
            history,
        }
    }
}

/// Run the paper's GA feature selection on `ds`.
pub fn select_features(ds: &DataSet, config: GaConfig) -> GaResult {
    GeneticSelector::new(ds, config).run()
}

/// Run the GA constrained to exactly `k` metrics (fitness = `rho`).
pub fn select_features_k(ds: &DataSet, k: usize, config: GaConfig) -> GaResult {
    GeneticSelector::new(ds, config).with_fixed_size(k).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 20 rows x 6 cols: cols 0..3 are noisy copies of one latent factor,
    /// col 4 is a second factor, col 5 is a third.
    fn structured() -> DataSet {
        let mut rows = Vec::new();
        let mut x = 7u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f64 / 1000.0
        };
        for _ in 0..20 {
            let f1 = rnd() * 10.0;
            let f2 = rnd() * 10.0;
            let f3 = rnd() * 10.0;
            rows.push(vec![
                f1,
                f1 * 2.0 + 0.01 * rnd(),
                f1 * -1.5 + 0.01 * rnd(),
                f1 + 0.01 * rnd(),
                f2,
                f3,
            ]);
        }
        DataSet::from_rows(rows)
    }

    #[test]
    fn ga_finds_small_subset_with_decent_rho() {
        // With only N=6 columns the paper's size penalty (1 - n/N) is very
        // steep, so the unconstrained GA trades some rho for size; it should
        // still remove the redundant copies and keep meaningful correlation.
        let ds = structured();
        let r = select_features(&ds, GaConfig { generations: 120, ..GaConfig::default() });
        assert!(!r.selected.is_empty());
        assert!(r.selected.len() <= 4, "redundancy should be removed: {:?}", r.selected);
        assert!(r.rho > 0.7, "rho = {}", r.rho);
    }

    #[test]
    fn fixed_k_ga_recovers_the_three_factors() {
        // Balanced latent structure: factors 1 and 2 appear twice each
        // (columns 0-1 and 2-3), factor 3 once (column 4). The best
        // 3-column subset picks one representative per factor.
        let mut rows = Vec::new();
        let mut x = 11u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f64 / 100.0
        };
        for _ in 0..25 {
            let (f1, f2, f3) = (rnd(), rnd(), rnd());
            rows.push(vec![f1, f1 * 2.0 + 0.001 * rnd(), f2, -f2 + 0.001 * rnd(), f3]);
        }
        let ds = DataSet::from_rows(rows);
        let r = select_features_k(&ds, 3, GaConfig { generations: 120, ..GaConfig::default() });
        assert_eq!(r.selected.len(), 3);
        assert!(r.rho > 0.9, "rho = {}", r.rho);
        assert!(r.selected.iter().any(|&c| c <= 1), "factor 1 missing: {:?}", r.selected);
        assert!(
            r.selected.iter().any(|&c| c == 2 || c == 3),
            "factor 2 missing: {:?}",
            r.selected
        );
        assert!(r.selected.contains(&4), "factor 3 missing: {:?}", r.selected);
    }

    #[test]
    fn fixed_size_is_respected() {
        let ds = structured();
        for k in [1, 3, 6] {
            let r = select_features_k(&ds, k, GaConfig { generations: 60, ..GaConfig::default() });
            assert_eq!(r.selected.len(), k);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = structured();
        let cfg = GaConfig { generations: 40, ..GaConfig::default() };
        let a = select_features(&ds, cfg);
        let b = select_features(&ds, cfg);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.fitness, b.fitness);
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let ds = structured();
        let cfg = GaConfig { generations: 60, ..GaConfig::default() };
        let sel = GeneticSelector::new(&ds, cfg);
        let par = sel.run();
        let ser = sel.run_serial();
        assert_eq!(par, ser, "parallel fitness evaluation must not change the evolution");
        assert!(par.history.iter().zip(&ser.history).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn full_genome_rho_is_one() {
        let ds = structured();
        let sel = GeneticSelector::new(&ds, GaConfig::default());
        let full_mask = (1u64 << ds.cols()) - 1;
        assert!((sel.rho(full_mask) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_genome_fitness_zero() {
        let ds = structured();
        let sel = GeneticSelector::new(&ds, GaConfig::default());
        assert_eq!(sel.fitness(0), 0.0);
    }

    #[test]
    fn history_is_monotone_with_elitism() {
        let ds = structured();
        let r = select_features(&ds, GaConfig { generations: 50, ..GaConfig::default() });
        for w in r.history.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "elitism keeps best: {:?}", r.history);
        }
    }
}

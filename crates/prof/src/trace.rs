//! Loader for `MICA_EVENTS` JSON-lines streams.
//!
//! The stream interleaves three record shapes (see `mica_obs::jsonl`):
//! events, closed spans, and one terminating `flush` summary. Parsing is
//! deliberately *tolerant* — a line that does not parse, or a record shape
//! this version does not know, is counted and skipped, never fatal: the
//! profiler must be able to analyze a trace written by a newer (or older,
//! or crashed) pipeline and say what it can.
//!
//! Span records arrive in **close order** (a parent closes after its
//! children), carrying only `(ts_us, dur_us, tid, depth)` — no explicit
//! parent links. [`Trace::forest`] reconstructs the per-thread span trees
//! by interval nesting: within one logical thread, spans never partially
//! overlap, so sorting by `(ts asc, dur desc)` and keeping a stack of open
//! intervals recovers every parent/child edge.

use serde::Value;
use std::collections::BTreeMap;

/// One leveled event line.
#[derive(Debug, Clone)]
pub struct EventRec {
    /// Microseconds since tracing started.
    pub ts_us: u64,
    /// Logical thread id (0 = main, `1 + w` = pool worker `w`).
    pub tid: u64,
    /// Level string as written (`"info"`, `"warn"`, …).
    pub level: String,
    /// Module-path target.
    pub target: String,
    /// Rendered message.
    pub msg: String,
    /// Structured attributes.
    pub attrs: Vec<(String, Value)>,
}

/// One closed-span line.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Open timestamp, microseconds since tracing started.
    pub ts_us: u64,
    /// Wall duration in microseconds.
    pub dur_us: u64,
    /// Logical thread id the span ran on.
    pub tid: u64,
    /// Nesting depth on its thread at open time.
    pub depth: u64,
    /// Static category (`run`, `stage`, `par`, `profile`, …).
    pub cat: String,
    /// Span name (stage name, kernel name, …).
    pub name: String,
    /// Structured attributes (`alloc_n`/`alloc_b` when `MICA_ALLOC` was on).
    pub attrs: Vec<(String, Value)>,
}

impl SpanRec {
    /// End timestamp in microseconds.
    pub fn end_us(&self) -> u64 {
        self.ts_us.saturating_add(self.dur_us)
    }

    /// A `u64` attribute by name, when present and representable.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attrs.iter().find(|(k, _)| k == key)?.1 {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
}

/// The terminating `flush` summary record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushInfo {
    /// Event lines the sink dispatched over its lifetime.
    pub events: u64,
    /// Span lines the sink dispatched over its lifetime.
    pub spans: u64,
    /// Lines lost to failed flushes (`obs.events.dropped_lines`).
    pub dropped_lines: u64,
}

/// A parsed `MICA_EVENTS` stream.
#[derive(Debug, Default)]
pub struct Trace {
    /// Events in dispatch order.
    pub events: Vec<EventRec>,
    /// Spans in close order.
    pub spans: Vec<SpanRec>,
    /// The terminating summary, when the stream has one.
    pub flush: Option<FlushInfo>,
    /// Lines skipped as unparseable or of unknown shape.
    pub skipped_lines: usize,
}

/// One node of the reconstructed span forest.
#[derive(Debug)]
pub struct SpanNode {
    /// Index into [`Trace::spans`].
    pub span: usize,
    /// Child nodes, in start order.
    pub children: Vec<SpanNode>,
}

fn get_str(obj: &Value, key: &str) -> Option<String> {
    match obj.field(key)? {
        Value::String(s) => Some(s.clone()),
        _ => None,
    }
}

fn get_u64(obj: &Value, key: &str) -> Option<u64> {
    match obj.field(key)? {
        Value::Number(n) => n.as_u64(),
        _ => None,
    }
}

fn get_attrs(obj: &Value) -> Vec<(String, Value)> {
    obj.field("attrs").and_then(Value::as_object).map(<[_]>::to_vec).unwrap_or_default()
}

impl Trace {
    /// Parse a JSON-lines stream. Never fails: bad lines are counted in
    /// [`Trace::skipped_lines`] and analysis reports the gap.
    pub fn parse(text: &str) -> Trace {
        let mut trace = Trace::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(doc) = serde_json::from_str::<Value>(line) else {
                trace.skipped_lines += 1;
                continue;
            };
            let parsed = match doc.field("t").and_then(value_str) {
                Some("event") => Trace::parse_event(&doc).map(|e| trace.events.push(e)),
                Some("span") => Trace::parse_span(&doc).map(|s| trace.spans.push(s)),
                Some("flush") => Trace::parse_flush(&doc).map(|f| trace.flush = Some(f)),
                _ => None,
            };
            if parsed.is_none() {
                trace.skipped_lines += 1;
            }
        }
        trace
    }

    /// Read and parse the stream at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; parse problems are tolerated and
    /// surface as [`Trace::skipped_lines`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Trace> {
        Ok(Trace::parse(&std::fs::read_to_string(path)?))
    }

    fn parse_event(doc: &Value) -> Option<EventRec> {
        Some(EventRec {
            ts_us: get_u64(doc, "ts_us")?,
            tid: get_u64(doc, "tid")?,
            level: get_str(doc, "level")?,
            target: get_str(doc, "target")?,
            msg: get_str(doc, "msg")?,
            attrs: get_attrs(doc),
        })
    }

    fn parse_span(doc: &Value) -> Option<SpanRec> {
        Some(SpanRec {
            ts_us: get_u64(doc, "ts_us")?,
            dur_us: get_u64(doc, "dur_us")?,
            tid: get_u64(doc, "tid")?,
            depth: get_u64(doc, "depth")?,
            cat: get_str(doc, "cat")?,
            name: get_str(doc, "name")?,
            attrs: get_attrs(doc),
        })
    }

    fn parse_flush(doc: &Value) -> Option<FlushInfo> {
        Some(FlushInfo {
            events: get_u64(doc, "events")?,
            spans: get_u64(doc, "spans")?,
            dropped_lines: get_u64(doc, "dropped_lines")?,
        })
    }

    /// Whether the stream is provably incomplete: no terminating `flush`
    /// record (the run died before its final flush), dropped lines, or a
    /// flush summary that counts more records than the file holds.
    pub fn truncated(&self) -> bool {
        match self.flush {
            None => true,
            Some(f) => {
                f.dropped_lines > 0
                    || (f.events as usize) > self.events.len()
                    || (f.spans as usize) > self.spans.len()
            }
        }
    }

    /// Reconstruct the span forest, grouped per logical thread id: the
    /// map's values are that thread's root spans in start order.
    pub fn forest(&self) -> BTreeMap<u64, Vec<SpanNode>> {
        let mut by_tid: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            by_tid.entry(s.tid).or_default().push(i);
        }
        let mut forest = BTreeMap::new();
        for (tid, mut idxs) in by_tid {
            // Parents start no later and end no earlier than their
            // children; `depth` breaks zero-duration ties deterministically.
            idxs.sort_by(|&a, &b| {
                let (sa, sb) = (&self.spans[a], &self.spans[b]);
                sa.ts_us
                    .cmp(&sb.ts_us)
                    .then(sb.dur_us.cmp(&sa.dur_us))
                    .then(sa.depth.cmp(&sb.depth))
            });
            let mut roots: Vec<SpanNode> = Vec::new();
            let mut stack: Vec<SpanNode> = Vec::new();
            for i in idxs {
                let span = &self.spans[i];
                while let Some(top) = stack.last() {
                    if self.spans[top.span].end_us() <= span.ts_us {
                        let closed = stack.pop().expect("nonempty stack");
                        match stack.last_mut() {
                            Some(parent) => parent.children.push(closed),
                            None => roots.push(closed),
                        }
                    } else {
                        break;
                    }
                }
                stack.push(SpanNode { span: i, children: Vec::new() });
            }
            while let Some(closed) = stack.pop() {
                match stack.last_mut() {
                    Some(parent) => parent.children.push(closed),
                    None => roots.push(closed),
                }
            }
            forest.insert(tid, roots);
        }
        forest
    }
}

/// String view of a [`Value`] (the compat serde has no `as_str`).
fn value_str(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s),
        _ => None,
    }
}

//! `mica-prof` — offline trace analytics and the CI performance gate.
//!
//! The pipeline's observability layer (`mica-obs`) leaves two artifacts
//! behind: the `MICA_EVENTS` JSON-lines stream (every event and closed
//! span) and the `run-<bin>.json` summary (stage wall times, counters,
//! histogram buckets). This crate turns them into answers:
//!
//! - [`trace`] loads the stream tolerantly and reconstructs the span
//!   forest per logical thread by interval nesting;
//! - [`analysis`] computes the critical-path decomposition, `par_map`
//!   pool utilization / steal imbalance / idle gaps, per-kernel latency
//!   quantiles (exact from spans, bucket bounds from histograms), and
//!   allocation attribution from `MICA_ALLOC` span deltas;
//! - [`baseline`] maintains the `BENCH_pipeline.json` performance
//!   trajectory and implements the noise-aware regression gate
//!   (median-of-N baseline, relative × absolute thresholds);
//! - [`heat`] loads the PMU heat artifacts (`results/heat/*.json`,
//!   written by `MICA_PMU=1` profiling runs) and diffs hotspot shares
//!   across runs;
//! - [`slo`] replays the serve daemon's access log
//!   (`results/serve-access.jsonl`) and recomputes latency-objective
//!   attainment offline, independent of the daemon's own counters.
//!
//! The `mica-prof` binary fronts all four: `analyze` renders a report
//! (`--json` for the machine-readable [`analysis::JsonReport`]), `record`
//! appends a run to the trajectory, `check` gates CI, `heat` shows the
//! hottest blocks per kernel, and `heat-diff` flags share drift (exit 0
//! clean, 1 usage/IO error, 2 regression/drift).

pub mod analysis;
pub mod baseline;
pub mod heat;
pub mod slo;
pub mod trace;

#[cfg(test)]
mod tests {
    use crate::trace::Trace;

    fn span_line(ts: u64, dur: u64, tid: u64, depth: u64, cat: &str, name: &str) -> String {
        format!(
            "{{\"t\":\"span\",\"ts_us\":{ts},\"dur_us\":{dur},\"tid\":{tid},\"depth\":{depth},\
             \"cat\":\"{cat}\",\"name\":\"{name}\",\"attrs\":{{}}}}"
        )
    }

    #[test]
    fn parse_tolerates_garbage_and_counts_it() {
        let text = format!(
            "not json at all\n{}\n{{\"t\":\"wat\"}}\n\
             {{\"t\":\"flush\",\"events\":0,\"spans\":1,\"dropped_lines\":0}}\n",
            span_line(0, 10, 0, 0, "run", "x"),
        );
        let t = Trace::parse(&text);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.skipped_lines, 2);
        assert!(!t.truncated(), "flush record present and consistent");
    }

    #[test]
    fn truncation_is_detected() {
        let no_flush = Trace::parse(&span_line(0, 10, 0, 0, "run", "x"));
        assert!(no_flush.truncated(), "missing flush record");

        let dropped = Trace::parse(
            "{\"t\":\"flush\",\"events\":0,\"spans\":0,\"dropped_lines\":3}\n",
        );
        assert!(dropped.truncated(), "dropped lines");

        let undercount = Trace::parse(
            "{\"t\":\"flush\",\"events\":5,\"spans\":0,\"dropped_lines\":0}\n",
        );
        assert!(undercount.truncated(), "file holds fewer records than the flush counted");
    }

    #[test]
    fn forest_recovers_nesting_within_and_across_threads() {
        // tid 0: run[0..100] > stage[5..95] > pool[10..90]; tid 1: two chunks.
        let text = [
            span_line(10, 30, 1, 0, "par", "chunk"),
            span_line(50, 30, 1, 0, "par", "chunk"),
            span_line(10, 80, 0, 2, "par", "par_map"),
            span_line(5, 90, 0, 1, "stage", "profile"),
            span_line(0, 100, 0, 0, "run", "profile_bin"),
        ]
        .join("\n");
        let t = Trace::parse(&text);
        let forest = t.forest();
        let t0 = &forest[&0];
        assert_eq!(t0.len(), 1, "one root on tid 0");
        assert_eq!(t.spans[t0[0].span].cat, "run");
        let stage = &t0[0].children[0];
        assert_eq!(t.spans[stage.span].cat, "stage");
        let pool = &stage.children[0];
        assert_eq!(t.spans[pool.span].name, "par_map");
        assert_eq!(forest[&1].len(), 2, "sibling chunks stay roots on their thread");
    }
}

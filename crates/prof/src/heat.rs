//! Offline views over the PMU heat artifacts (`results/heat/*.json`).
//!
//! `mica-prof heat` renders the top-K hot blocks of every kernel in a
//! heat directory; `mica-prof heat-diff A B` compares two directories and
//! flags blocks whose share of retired instructions shifted beyond a
//! threshold — the cross-run hotspot story: a kernel whose inner loop
//! grew two points of share between commits is exactly the regression the
//! wall-clock gate is too coarse to localize.
//!
//! Everything here is a pure function of the artifacts; the PMU's
//! determinism contract (see `crates/pmu`) makes a clean diff of two
//! clean runs empty by construction.

use mica_pmu::KernelHeat;
use std::path::Path;

/// Default share-shift threshold for [`diff`]: two points of a kernel's
/// retired instructions.
pub const DEFAULT_THRESHOLD: f64 = 0.02;

/// Load every `*.json` heat artifact under `dir`, sorted by kernel name
/// so output order is directory-listing independent. Non-JSON files
/// (the flamegraph and SVG live in the same directory) are skipped.
///
/// # Errors
///
/// A message naming the path when the directory cannot be read, a file
/// cannot be read, or an artifact does not parse — a torn heat artifact
/// should fail loudly, not vanish from the report.
pub fn load_dir(dir: &Path) -> Result<Vec<KernelHeat>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read heat directory {}: {e}", dir.display()))?;
    let mut heats = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read heat artifact {}: {e}", path.display()))?;
        let heat = KernelHeat::from_json(&text)
            .map_err(|e| format!("heat artifact {} does not parse: {e}", path.display()))?;
        heats.push(heat);
    }
    if heats.is_empty() {
        return Err(format!("no heat artifacts (*.json) in {}", dir.display()));
    }
    heats.sort_by(|a, b| a.kernel.cmp(&b.kernel));
    Ok(heats)
}

/// One block whose share of its kernel's retired instructions moved
/// beyond the threshold between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Full `suite/program/input` kernel name.
    pub kernel: String,
    /// Block leader pc.
    pub pc: u64,
    /// Share in the `before` run (0 when the block did not execute).
    pub before: f64,
    /// Share in the `after` run (0 when the block did not execute).
    pub after: f64,
}

impl Drift {
    /// Signed share shift, `after - before`.
    pub fn delta(&self) -> f64 {
        self.after - self.before
    }
}

/// What [`diff`] found between two heat directories.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Blocks whose share shifted by more than the threshold, ordered by
    /// kernel name then descending absolute shift.
    pub drifted: Vec<Drift>,
    /// Kernels present only in the `before` run.
    pub only_before: Vec<String>,
    /// Kernels present only in the `after` run.
    pub only_after: Vec<String>,
}

impl DiffReport {
    /// Whether anything moved: a drifted block or a kernel that appeared
    /// or disappeared.
    pub fn has_drift(&self) -> bool {
        !self.drifted.is_empty() || !self.only_before.is_empty() || !self.only_after.is_empty()
    }
}

/// Compare two runs' heat profiles block by block. Kernels are matched by
/// name, blocks by leader pc; a block absent from one side counts as
/// share 0 there, so a loop that stopped (or started) executing shows up
/// as a full-size shift rather than being silently dropped.
pub fn diff(before: &[KernelHeat], after: &[KernelHeat], threshold: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for b in before {
        let Some(a) = after.iter().find(|a| a.kernel == b.kernel) else {
            report.only_before.push(b.kernel.clone());
            continue;
        };
        let mut pcs: Vec<u64> = b.blocks.iter().chain(&a.blocks).map(|blk| blk.pc).collect();
        pcs.sort_unstable();
        pcs.dedup();
        let share = |heat: &KernelHeat, pc: u64| {
            heat.blocks.iter().find(|blk| blk.pc == pc).map_or(0.0, |blk| blk.share)
        };
        let mut drifted: Vec<Drift> = pcs
            .into_iter()
            .filter_map(|pc| {
                let d = Drift {
                    kernel: b.kernel.clone(),
                    pc,
                    before: share(b, pc),
                    after: share(a, pc),
                };
                (d.delta().abs() > threshold).then_some(d)
            })
            .collect();
        drifted.sort_by(|x, y| {
            y.delta().abs().partial_cmp(&x.delta().abs()).expect("finite").then(x.pc.cmp(&y.pc))
        });
        report.drifted.extend(drifted);
    }
    for a in after {
        if !before.iter().any(|b| b.kernel == a.kernel) {
            report.only_after.push(a.kernel.clone());
        }
    }
    report
}

/// Render a [`DiffReport`] as the text `mica-prof heat-diff` prints.
pub fn render_diff(report: &DiffReport, threshold: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if !report.has_drift() {
        let _ = writeln!(out, "no hotspot drift beyond {:.1}% share", threshold * 100.0);
        return out;
    }
    for k in &report.only_before {
        let _ = writeln!(out, "DRIFT {k}: kernel missing from the after run");
    }
    for k in &report.only_after {
        let _ = writeln!(out, "DRIFT {k}: kernel new in the after run");
    }
    for d in &report.drifted {
        let _ = writeln!(
            out,
            "DRIFT {} block {:#x}: share {:.1}% -> {:.1}% ({:+.1} points)",
            d.kernel,
            d.pc,
            d.before * 100.0,
            d.after * 100.0,
            d.delta() * 100.0,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mica_pmu::BlockHeat;
    use std::collections::BTreeMap;

    fn heat(kernel: &str, shares: &[(u64, f64)]) -> KernelHeat {
        KernelHeat {
            kernel: kernel.to_string(),
            period: 101,
            retired: 1000,
            samples: 9,
            taken_branches: 0,
            not_taken_branches: 0,
            mem_read_bytes: 0,
            mem_write_bytes: 0,
            class_counts: BTreeMap::new(),
            blocks: shares
                .iter()
                .map(|&(pc, share)| BlockHeat {
                    pc,
                    first_idx: 0,
                    insts: 1,
                    hits: 1,
                    retired: (share * 1000.0) as u64,
                    samples: 1,
                    share,
                    loop_depth: 0,
                    loop_chain: Vec::new(),
                    static_mix: BTreeMap::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn identical_runs_have_no_drift() {
        let a = [heat("m/a/x", &[(0x10, 0.7), (0x20, 0.3)])];
        let report = diff(&a, &a, DEFAULT_THRESHOLD);
        assert!(!report.has_drift());
        assert!(render_diff(&report, DEFAULT_THRESHOLD).contains("no hotspot drift"));
    }

    #[test]
    fn share_shifts_beyond_threshold_are_flagged_largest_first() {
        let before = [heat("m/a/x", &[(0x10, 0.70), (0x20, 0.30)])];
        let after = [heat("m/a/x", &[(0x10, 0.55), (0x20, 0.40), (0x30, 0.05)])];
        let report = diff(&before, &after, DEFAULT_THRESHOLD);
        let pcs: Vec<u64> = report.drifted.iter().map(|d| d.pc).collect();
        assert_eq!(pcs, vec![0x10, 0x20, 0x30], "descending |delta|");
        assert!(report.drifted[0].delta() < 0.0);
        let text = render_diff(&report, DEFAULT_THRESHOLD);
        assert!(text.contains("DRIFT m/a/x block 0x10"));
        assert!(text.contains("-15.0 points"));
    }

    #[test]
    fn sub_threshold_noise_is_ignored() {
        let before = [heat("m/a/x", &[(0x10, 0.70), (0x20, 0.30)])];
        let after = [heat("m/a/x", &[(0x10, 0.69), (0x20, 0.31)])];
        assert!(!diff(&before, &after, DEFAULT_THRESHOLD).has_drift());
    }

    #[test]
    fn appearing_and_disappearing_kernels_are_reported() {
        let before = [heat("m/a/x", &[(0x10, 1.0)]), heat("m/b/y", &[(0x10, 1.0)])];
        let after = [heat("m/a/x", &[(0x10, 1.0)]), heat("m/c/z", &[(0x10, 1.0)])];
        let report = diff(&before, &after, DEFAULT_THRESHOLD);
        assert_eq!(report.only_before, vec!["m/b/y".to_string()]);
        assert_eq!(report.only_after, vec!["m/c/z".to_string()]);
        assert!(report.drifted.is_empty());
        assert!(report.has_drift());
    }
}

//! The `mica-prof` command-line front end.
//!
//! ```text
//! mica-prof analyze   --events FILE [--summary FILE] [--out FILE] [--json FILE]
//! mica-prof record    --summary FILE --baseline FILE [--label STR]
//! mica-prof check     --summary FILE --baseline FILE
//!                     [--max-ratio R] [--min-abs-s S]
//! mica-prof heat      --dir DIR [--top K] [--svg FILE]
//! mica-prof heat-diff BEFORE AFTER [--threshold T]
//! mica-prof slo       ACCESS_LOG [--slo-ms N] [--target X]
//! ```
//!
//! Exit codes: 0 success / gate passed, 1 usage or I/O error, 2 the gate
//! found a performance regression, `heat-diff` found hotspot drift, or
//! `slo` found the latency objective breached.

use mica_experiments::runner::RunSummary;
use mica_prof::analysis;
use mica_prof::baseline::{check, has_regression, render_findings, Baseline, CheckConfig};
use mica_prof::heat;
use mica_prof::trace::Trace;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  mica-prof analyze   --events FILE [--summary FILE] [--out FILE] [--json FILE]
  mica-prof record    --summary FILE --baseline FILE [--label STR]
  mica-prof check     --summary FILE --baseline FILE [--max-ratio R] [--min-abs-s S]
  mica-prof heat      --dir DIR [--top K] [--svg FILE]
  mica-prof heat-diff BEFORE AFTER [--threshold T]
  mica-prof slo       ACCESS_LOG [--slo-ms N] [--target X]

exit codes: 0 ok, 1 usage/io error, 2 performance regression / hotspot drift / SLO breach";

/// Flag parser over `--key value` / `--key=value` pairs, plus bare
/// positional operands (`heat-diff BEFORE AFTER`).
struct Args {
    pairs: Vec<(String, String)>,
    free: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut pairs = Vec::new();
        let mut free = Vec::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                free.push(arg.clone());
                continue;
            };
            if let Some((k, v)) = key.split_once('=') {
                pairs.push((k.to_string(), v.to_string()));
            } else {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                pairs.push((key.to_string(), v.clone()));
            }
        }
        Ok(Args { pairs, free })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn path(&self, key: &str) -> Option<PathBuf> {
        self.get(key).map(PathBuf::from)
    }

    fn require_path(&self, key: &str) -> Result<PathBuf, String> {
        self.path(key).ok_or_else(|| format!("--{key} is required"))
    }

    /// Reject stray positional operands for commands that take none.
    fn no_free(&self) -> Result<(), String> {
        match self.free.first() {
            Some(arg) => Err(format!("unexpected argument {arg:?}")),
            None => Ok(()),
        }
    }
}

fn load_summary(path: &std::path::Path) -> Result<RunSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read summary {}: {e}", path.display()))?;
    serde_json::from_str(&text)
        .map_err(|e| format!("summary {} does not parse: {e:?}", path.display()))
}

fn cmd_analyze(args: &Args) -> Result<ExitCode, String> {
    args.no_free()?;
    let events = args.require_path("events")?;
    let trace = Trace::load(&events)
        .map_err(|e| format!("cannot read events {}: {e}", events.display()))?;
    let summary = match args.path("summary") {
        Some(p) => Some(load_summary(&p)?),
        None => None,
    };
    let a = analysis::analyze(&trace, summary.as_ref());
    if let Some(json_path) = args.path("json") {
        let json = serde_json::to_string_pretty(&analysis::JsonReport::from_analysis(&a))
            .expect("JsonReport serializes");
        mica_fault::io::atomic_write_retry("prof-json", &json_path, json.as_bytes())
            .map_err(|e| format!("cannot write JSON report {}: {e}", json_path.display()))?;
    }
    let report = analysis::render(&a);
    match args.path("out") {
        Some(out) => std::fs::write(&out, &report)
            .map_err(|e| format!("cannot write report {}: {e}", out.display()))?,
        None => print!("{report}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_heat(args: &Args) -> Result<ExitCode, String> {
    args.no_free()?;
    let dir = args.require_path("dir")?;
    let top = match args.get("top") {
        Some(k) => k.parse().map_err(|_| format!("bad --top {k:?}"))?,
        None => 5,
    };
    let heats = heat::load_dir(&dir)?;
    for h in &heats {
        print!("{}", mica_pmu::render_text(h, top));
    }
    if let Some(svg_path) = args.path("svg") {
        let svg = mica_pmu::render_svg(&heats);
        mica_fault::io::atomic_write_retry("prof-svg", &svg_path, svg.as_bytes())
            .map_err(|e| format!("cannot write heat map {}: {e}", svg_path.display()))?;
        println!("heat map -> {}", svg_path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_heat_diff(args: &Args) -> Result<ExitCode, String> {
    let [before_dir, after_dir] = args.free.as_slice() else {
        return Err("heat-diff needs exactly two heat directories".to_string());
    };
    let threshold = match args.get("threshold") {
        Some(t) => t.parse().map_err(|_| format!("bad --threshold {t:?}"))?,
        None => heat::DEFAULT_THRESHOLD,
    };
    let before = heat::load_dir(std::path::Path::new(before_dir))?;
    let after = heat::load_dir(std::path::Path::new(after_dir))?;
    let report = heat::diff(&before, &after, threshold);
    print!("{}", heat::render_diff(&report, threshold));
    if report.has_drift() {
        eprintln!("mica-prof: hotspot drift detected");
        Ok(ExitCode::from(2))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn cmd_record(args: &Args) -> Result<ExitCode, String> {
    args.no_free()?;
    let summary = load_summary(&args.require_path("summary")?)?;
    let path = args.require_path("baseline")?;
    let label = args.get("label").unwrap_or("local");
    let mut base = Baseline::load_or_empty(&path);
    let seq = base.record(summary, label, unix_now());
    base.save(&path).map_err(|e| format!("cannot write baseline {}: {e}", path.display()))?;
    println!(
        "recorded entry seq={seq} label={label} into {} ({} entries)",
        path.display(),
        base.entries.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    args.no_free()?;
    let summary = load_summary(&args.require_path("summary")?)?;
    let path = args.require_path("baseline")?;
    let mut cfg = CheckConfig::default();
    if let Some(r) = args.get("max-ratio") {
        cfg.max_ratio = r.parse().map_err(|_| format!("bad --max-ratio {r:?}"))?;
    }
    if let Some(s) = args.get("min-abs-s") {
        cfg.min_abs_s = s.parse().map_err(|_| format!("bad --min-abs-s {s:?}"))?;
    }
    let base = Baseline::load_or_empty(&path);
    let findings = check(&base, &summary, &cfg);
    print!("{}", render_findings(&findings));
    if has_regression(&findings) {
        eprintln!("mica-prof: performance regression detected");
        Ok(ExitCode::from(2))
    } else {
        println!("mica-prof: gate passed");
        Ok(ExitCode::SUCCESS)
    }
}

/// Audit a serve access log against the latency objective. The objective
/// defaults to the same environment knobs the server reads
/// (`MICA_SERVE_SLO_MS`, `MICA_SERVE_SLO_TARGET`), so gating a drained
/// run needs no repeated configuration.
fn cmd_slo(args: &Args) -> Result<ExitCode, String> {
    let [log_path] = args.free.as_slice() else {
        return Err("slo needs exactly one access-log path".to_string());
    };
    let slo_ms = match args.get("slo-ms") {
        Some(v) => v.parse().map_err(|_| format!("bad --slo-ms {v:?}"))?,
        None => match std::env::var("MICA_SERVE_SLO_MS") {
            Ok(v) => v.trim().parse().map_err(|_| format!("bad MICA_SERVE_SLO_MS {v:?}"))?,
            Err(_) => 1_000,
        },
    };
    let target: f64 = match args.get("target") {
        Some(v) => v.parse().map_err(|_| format!("bad --target {v:?}"))?,
        None => match std::env::var("MICA_SERVE_SLO_TARGET") {
            Ok(v) => v.trim().parse().map_err(|_| format!("bad MICA_SERVE_SLO_TARGET {v:?}"))?,
            Err(_) => 0.99,
        },
    };
    if !(0.0..1.0).contains(&target) {
        return Err(format!("target {target} must be in [0, 1)"));
    }
    let text = std::fs::read_to_string(log_path)
        .map_err(|e| format!("cannot read access log {log_path}: {e}"))?;
    let report = mica_prof::slo::audit(&text, slo_ms, target);
    print!("{}", mica_prof::slo::render(&report));
    if report.breached() {
        eprintln!("mica-prof: SLO breached");
        Ok(ExitCode::from(2))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let run = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "analyze" => cmd_analyze(&args),
        "record" => cmd_record(&args),
        "check" => cmd_check(&args),
        "heat" => cmd_heat(&args),
        "heat-diff" => cmd_heat_diff(&args),
        "slo" => cmd_slo(&args),
        other => Err(format!("unknown command {other:?}")),
    });
    match run {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mica-prof: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

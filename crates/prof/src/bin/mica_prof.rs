//! The `mica-prof` command-line front end.
//!
//! ```text
//! mica-prof analyze --events FILE [--summary FILE] [--out FILE]
//! mica-prof record  --summary FILE --baseline FILE [--label STR]
//! mica-prof check   --summary FILE --baseline FILE
//!                   [--max-ratio R] [--min-abs-s S]
//! ```
//!
//! Exit codes: 0 success / gate passed, 1 usage or I/O error, 2 the gate
//! found a performance regression (the report names the regressed stage).

use mica_experiments::runner::RunSummary;
use mica_prof::analysis;
use mica_prof::baseline::{check, has_regression, render_findings, Baseline, CheckConfig};
use mica_prof::trace::Trace;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  mica-prof analyze --events FILE [--summary FILE] [--out FILE]
  mica-prof record  --summary FILE --baseline FILE [--label STR]
  mica-prof check   --summary FILE --baseline FILE [--max-ratio R] [--min-abs-s S]

exit codes: 0 ok, 1 usage/io error, 2 performance regression";

/// Flag parser over `--key value` / `--key=value` pairs.
struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut pairs = Vec::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument {arg:?}"));
            };
            if let Some((k, v)) = key.split_once('=') {
                pairs.push((k.to_string(), v.to_string()));
            } else {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                pairs.push((key.to_string(), v.clone()));
            }
        }
        Ok(Args { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn path(&self, key: &str) -> Option<PathBuf> {
        self.get(key).map(PathBuf::from)
    }

    fn require_path(&self, key: &str) -> Result<PathBuf, String> {
        self.path(key).ok_or_else(|| format!("--{key} is required"))
    }
}

fn load_summary(path: &std::path::Path) -> Result<RunSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read summary {}: {e}", path.display()))?;
    serde_json::from_str(&text)
        .map_err(|e| format!("summary {} does not parse: {e:?}", path.display()))
}

fn cmd_analyze(args: &Args) -> Result<ExitCode, String> {
    let events = args.require_path("events")?;
    let trace = Trace::load(&events)
        .map_err(|e| format!("cannot read events {}: {e}", events.display()))?;
    let summary = match args.path("summary") {
        Some(p) => Some(load_summary(&p)?),
        None => None,
    };
    let report = analysis::render(&analysis::analyze(&trace, summary.as_ref()));
    match args.path("out") {
        Some(out) => std::fs::write(&out, &report)
            .map_err(|e| format!("cannot write report {}: {e}", out.display()))?,
        None => print!("{report}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn cmd_record(args: &Args) -> Result<ExitCode, String> {
    let summary = load_summary(&args.require_path("summary")?)?;
    let path = args.require_path("baseline")?;
    let label = args.get("label").unwrap_or("local");
    let mut base = Baseline::load_or_empty(&path);
    let seq = base.record(summary, label, unix_now());
    base.save(&path).map_err(|e| format!("cannot write baseline {}: {e}", path.display()))?;
    println!(
        "recorded entry seq={seq} label={label} into {} ({} entries)",
        path.display(),
        base.entries.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    let summary = load_summary(&args.require_path("summary")?)?;
    let path = args.require_path("baseline")?;
    let mut cfg = CheckConfig::default();
    if let Some(r) = args.get("max-ratio") {
        cfg.max_ratio = r.parse().map_err(|_| format!("bad --max-ratio {r:?}"))?;
    }
    if let Some(s) = args.get("min-abs-s") {
        cfg.min_abs_s = s.parse().map_err(|_| format!("bad --min-abs-s {s:?}"))?;
    }
    let base = Baseline::load_or_empty(&path);
    let findings = check(&base, &summary, &cfg);
    print!("{}", render_findings(&findings));
    if has_regression(&findings) {
        eprintln!("mica-prof: performance regression detected");
        Ok(ExitCode::from(2))
    } else {
        println!("mica-prof: gate passed");
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let run = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "analyze" => cmd_analyze(&args),
        "record" => cmd_record(&args),
        "check" => cmd_check(&args),
        other => Err(format!("unknown command {other:?}")),
    });
    match run {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mica-prof: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

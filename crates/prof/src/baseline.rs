//! The performance baseline and the regression gate over it.
//!
//! `BENCH_pipeline.json` is a **trajectory**, not a single snapshot: a
//! schema-versioned append-only list of [`BaselineEntry`] records, each
//! holding one full [`RunSummary`]. `mica-prof record` appends the current
//! run (capped at [`MAX_ENTRIES`], oldest dropped); `mica-prof check`
//! compares the current run against the *median* of the comparable entries
//! — median-of-N is what makes the gate noise-aware, a single slow CI
//! machine in the history cannot move it much.
//!
//! A run is **comparable** to an entry when bin, thread count, workload
//! table fingerprint, budget scale, and analyzer backend all match —
//! timings across different configurations say nothing about regressions
//! (and the batch backend exists precisely because its timings differ).
//!
//! A stage regresses when it is slower than the baseline median by *both*
//! the relative threshold (`max_ratio`) and the absolute floor
//! (`min_abs_s`). The floor keeps millisecond-scale stages from tripping
//! the gate on scheduler jitter; the ratio keeps ten-minute stages from
//! needing to double before anyone notices.

use crate::analysis::median;
use mica_experiments::runner::RunSummary;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current baseline file schema. Bump on incompatible layout changes; a
/// file with a different schema (or no schema at all — the pre-trajectory
/// format was a bare `RunSummary`) is treated as absent and rebuilt.
pub const SCHEMA: u64 = 1;

/// Entries kept per baseline file; oldest are dropped on `record`.
pub const MAX_ENTRIES: usize = 20;

/// One recorded run in the trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Monotonic sequence number within this file.
    pub seq: u64,
    /// Unix seconds when the entry was recorded.
    pub unix_ts: u64,
    /// Free-form label (commit hash in CI).
    pub label: String,
    /// The run being recorded.
    pub summary: RunSummary,
}

/// The baseline file: a bounded history of runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// File schema, [`SCHEMA`].
    pub schema: u64,
    /// Recorded runs, oldest first.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// An empty trajectory at the current schema.
    pub fn empty() -> Baseline {
        Baseline { schema: SCHEMA, entries: Vec::new() }
    }

    /// Load `path`, tolerating absence and format drift: a missing,
    /// unparseable, or different-schema file yields an empty trajectory
    /// (the gate then passes vacuously and the next `record` rebuilds it).
    pub fn load_or_empty(path: &Path) -> Baseline {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Baseline::empty();
        };
        match serde_json::from_str::<Baseline>(&text) {
            Ok(b) if b.schema == SCHEMA => b,
            _ => Baseline::empty(),
        }
    }

    /// Append one run, assigning the next sequence number and trimming to
    /// [`MAX_ENTRIES`]; returns the assigned sequence number.
    pub fn record(&mut self, summary: RunSummary, label: &str, unix_ts: u64) -> u64 {
        let seq = self.entries.iter().map(|e| e.seq).max().map_or(0, |s| s + 1);
        self.entries.push(BaselineEntry { seq, unix_ts, label: label.to_string(), summary });
        if self.entries.len() > MAX_ENTRIES {
            let drop = self.entries.len() - MAX_ENTRIES;
            self.entries.drain(..drop);
        }
        seq
    }

    /// Write the trajectory atomically (temp-then-rename with retry).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic write.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("Baseline serializes");
        mica_fault::io::atomic_write_retry("prof.baseline", path, json.as_bytes())
    }

    /// Entries comparable to `cur`: same bin, threads, table fingerprint,
    /// budget scale, and analyzer backend.
    pub fn comparable(&self, cur: &RunSummary) -> Vec<&BaselineEntry> {
        self.entries
            .iter()
            .filter(|e| {
                let s = &e.summary;
                s.bin == cur.bin
                    && s.threads == cur.threads
                    && s.backend == cur.backend
                    && s.table_fingerprint == cur.table_fingerprint
                    && (s.scale - cur.scale).abs() <= 1e-12 * s.scale.abs().max(1.0)
            })
            .collect()
    }
}

/// Gate thresholds. A subject regresses only when it exceeds the baseline
/// median by **both** bounds.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Relative bound: regression requires `current > median × max_ratio`.
    pub max_ratio: f64,
    /// Absolute floor in seconds: regression requires
    /// `current − median > min_abs_s`.
    pub min_abs_s: f64,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig { max_ratio: 1.6, min_abs_s: 0.05 }
    }
}

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context only.
    Info,
    /// Suspicious but not gating.
    Warn,
    /// Gates: `mica-prof check` exits nonzero.
    Regression,
}

impl Severity {
    /// Uppercase tag for report lines.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Regression => "REGRESSION",
        }
    }
}

/// One gate observation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Severity; any [`Severity::Regression`] fails the gate.
    pub severity: Severity,
    /// What the finding is about (`total`, `stage profile`, …).
    pub subject: String,
    /// Human-readable explanation with the numbers.
    pub message: String,
}

impl Finding {
    fn new(severity: Severity, subject: &str, message: String) -> Finding {
        Finding { severity, subject: subject.to_string(), message }
    }
}

fn judge(subject: &str, cur: f64, med: f64, n: usize, cfg: &CheckConfig, out: &mut Vec<Finding>) {
    let regressed = cur > med * cfg.max_ratio && cur - med > cfg.min_abs_s;
    let severity = if regressed { Severity::Regression } else { Severity::Info };
    let ratio = if med > 0.0 { cur / med } else { f64::INFINITY };
    out.push(Finding::new(
        severity,
        subject,
        format!(
            "{subject}: {cur:.3}s vs baseline median {med:.3}s over {n} run(s) ({ratio:.2}x, \
             gate {:.2}x + {:.3}s)",
            cfg.max_ratio, cfg.min_abs_s
        ),
    ));
}

/// Compare `cur` against the baseline trajectory. The gate fails iff any
/// returned finding is [`Severity::Regression`].
pub fn check(base: &Baseline, cur: &RunSummary, cfg: &CheckConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let comparable = base.comparable(cur);
    if comparable.is_empty() {
        findings.push(Finding::new(
            Severity::Info,
            "baseline",
            format!(
                "no comparable baseline entries for bin={} threads={} scale={} \
                 backend={} fingerprint={:#x} ({} total entries) — gate passes \
                 vacuously",
                cur.bin,
                cur.threads,
                cur.scale,
                cur.backend,
                cur.table_fingerprint,
                base.entries.len()
            ),
        ));
        return findings;
    }

    let walls: Vec<f64> = comparable.iter().map(|e| e.summary.wall_s).collect();
    judge("total", cur.wall_s, median(&walls), walls.len(), cfg, &mut findings);

    for stage in &cur.stages {
        let base_walls: Vec<f64> = comparable
            .iter()
            .filter_map(|e| {
                e.summary.stages.iter().find(|s| s.name == stage.name).map(|s| s.wall_s)
            })
            .collect();
        if base_walls.is_empty() {
            findings.push(Finding::new(
                Severity::Info,
                &format!("stage {}", stage.name),
                format!("stage {}: new, no baseline ({:.3}s)", stage.name, stage.wall_s),
            ));
            continue;
        }
        judge(
            &format!("stage {}", stage.name),
            stage.wall_s,
            median(&base_walls),
            base_walls.len(),
            cfg,
            &mut findings,
        );
    }

    // Health warnings that should never silently ride through CI.
    if !cur.quarantined.is_empty() {
        findings.push(Finding::new(
            Severity::Warn,
            "quarantine",
            format!("{} benchmark(s) quarantined this run", cur.quarantined.len()),
        ));
    }
    for dropped in ["obs.events.dropped_lines", "obs.trace.dropped_events"] {
        if let Some(c) = cur.counters.iter().find(|c| c.name == dropped) {
            if c.value > 0 {
                findings.push(Finding::new(
                    Severity::Warn,
                    dropped,
                    format!("{dropped} = {} — observability lost records", c.value),
                ));
            }
        }
    }
    findings
}

/// Render findings, worst first, as the report `mica-prof check` prints.
pub fn render_findings(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by_key(|f| std::cmp::Reverse(f.severity));
    let mut out = String::new();
    for f in sorted {
        out.push_str(&format!("[{}] {}\n", f.severity.tag(), f.message));
    }
    out
}

/// Whether any finding gates.
pub fn has_regression(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Regression)
}

//! Offline analytics over one run: critical-path decomposition, pool
//! utilization, kernel latency, and allocation attribution.
//!
//! Input is the pair every instrumented binary leaves behind — the
//! `MICA_EVENTS` JSON-lines stream ([`Trace`]) and the `run-<bin>.json`
//! summary ([`RunSummary`]) — either of which may be absent; the analysis
//! reports what the available half supports.
//!
//! The critical path is computed over the reconstructed span forest: start
//! at the `run` span and repeatedly descend into the *longest* child (for
//! a `par_map` pool span the descent crosses threads, into its longest
//! `chunk`). The chain that falls out is the sequence of spans that
//! dominated the run's wall time — the first places to look when the
//! regression gate fires.

use crate::trace::{FlushInfo, SpanNode, SpanRec, Trace};
use mica_experiments::runner::RunSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One stage of the run, with its share of total wall time.
#[derive(Debug, Clone)]
pub struct StageCost {
    /// Stage name.
    pub name: String,
    /// Stage wall-clock seconds.
    pub wall_s: f64,
    /// Fraction of the run's wall time (0 when the run wall is unknown).
    pub frac: f64,
}

/// One step of the critical path, root first.
#[derive(Debug, Clone)]
pub struct CritStep {
    /// Span category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Logical thread the span ran on.
    pub tid: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
    /// Duration not covered by the next step down, microseconds.
    pub self_us: u64,
}

/// Per-worker share of one pool invocation.
#[derive(Debug, Clone)]
pub struct WorkerShare {
    /// Logical thread id (`1 + worker index`).
    pub tid: u64,
    /// Chunks this worker claimed.
    pub chunks: u64,
    /// Microseconds spent inside chunk spans.
    pub busy_us: u64,
    /// Longest idle gap inside the pool interval, microseconds.
    pub max_idle_us: u64,
}

/// One `par_map` pool invocation.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Pool span start, microseconds since tracing started.
    pub ts_us: u64,
    /// Pool span duration, microseconds.
    pub dur_us: u64,
    /// Worker count (`threads` attribute).
    pub threads: u64,
    /// Items mapped (`items` attribute).
    pub items: u64,
    /// Total chunk spans observed.
    pub chunks: u64,
    /// Σ busy time / (threads × duration); 1.0 = perfectly saturated.
    pub utilization: f64,
    /// Max worker busy time / mean worker busy time; 1.0 = perfectly even.
    pub imbalance: f64,
    /// Per-worker breakdown, by tid.
    pub workers: Vec<WorkerShare>,
}

/// One kernel (per-benchmark `profile` span) cost.
#[derive(Debug, Clone)]
pub struct KernelCost {
    /// Benchmark name (e.g. `MiBench/CRC32/pcm`).
    pub name: String,
    /// Profiling duration, microseconds.
    pub dur_us: u64,
    /// Allocations charged to the span (`MICA_ALLOC=1` runs only).
    pub alloc_n: Option<u64>,
    /// Bytes charged to the span (`MICA_ALLOC=1` runs only).
    pub alloc_b: Option<u64>,
}

/// Latency quantiles recomputed from a run summary histogram's raw
/// power-of-two buckets (upper bounds, hence "≤").
#[derive(Debug, Clone)]
pub struct QuantileRow {
    /// Histogram name (e.g. `par.chunk_us`).
    pub name: String,
    /// Recorded values.
    pub count: u64,
    /// Upper bound on the median.
    pub p50: u64,
    /// Upper bound on the 95th percentile.
    pub p95: u64,
    /// Upper bound on the 99th percentile.
    pub p99: u64,
}

/// Everything [`analyze`] derives from one run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Binary name, from the summary or the `run` span.
    pub bin: Option<String>,
    /// Run wall seconds, from the summary or the `run` span.
    pub wall_s: Option<f64>,
    /// Whether the trace is provably incomplete.
    pub truncated: bool,
    /// Unparseable lines skipped while loading the trace.
    pub skipped_lines: usize,
    /// The trace's terminating flush record, when present.
    pub flush: Option<FlushInfo>,
    /// Stage decomposition, in execution order.
    pub stages: Vec<StageCost>,
    /// Critical path, root first.
    pub critical_path: Vec<CritStep>,
    /// Pool invocations, in start order.
    pub pools: Vec<PoolStats>,
    /// Kernel spans observed.
    pub kernel_count: usize,
    /// Exact kernel-latency quantiles (p50, p95, p99), microseconds.
    pub kernel_quantiles_us: Option<(u64, u64, u64)>,
    /// Most expensive kernels, descending, capped at ten.
    pub kernels_top: Vec<KernelCost>,
    /// Bucket-quantile rows for every summary histogram.
    pub hist_quantiles: Vec<QuantileRow>,
    /// Every summary counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-analyzer delivery wall time from the `profile.analyzer.*_us`
    /// counters (collected under `MICA_ANALYZER_TIMING=1`), descending.
    pub analyzer_us: Vec<(String, u64)>,
    /// `profile.cache.hit / (hit + miss*)`, when the counters exist.
    pub cache_hit_ratio: Option<f64>,
    /// Σ of `fault.*` injection counters.
    pub fault_injections: u64,
    /// Σ of dropped-record counters (trace events + event lines).
    pub dropped_records: u64,
    /// Process-wide allocation totals (`alloc.count`, `alloc.bytes`).
    pub alloc_totals: Option<(u64, u64)>,
}

/// Exact quantile over raw values: the smallest element with at least
/// `ceil(q·n)` values at or below it.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn median_f64(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Analyze one run from whichever halves are available.
pub fn analyze(trace: &Trace, summary: Option<&RunSummary>) -> Analysis {
    let mut a = Analysis {
        truncated: trace.truncated(),
        skipped_lines: trace.skipped_lines,
        flush: trace.flush,
        ..Analysis::default()
    };

    if let Some(s) = summary {
        a.bin = Some(s.bin.clone());
        a.wall_s = Some(s.wall_s);
        a.stages = s
            .stages
            .iter()
            .map(|st| StageCost {
                name: st.name.clone(),
                wall_s: st.wall_s,
                frac: if s.wall_s > 0.0 { st.wall_s / s.wall_s } else { 0.0 },
            })
            .collect();
        a.counters = s.counters.iter().map(|c| (c.name.clone(), c.value)).collect();
        a.hist_quantiles = s
            .histograms
            .iter()
            .map(|h| {
                let snap = h.to_snapshot();
                QuantileRow {
                    name: h.name.clone(),
                    count: h.count,
                    p50: snap.quantile_upper_bound(0.50),
                    p95: snap.quantile_upper_bound(0.95),
                    p99: snap.quantile_upper_bound(0.99),
                }
            })
            .collect();
        derive_counter_metrics(&mut a);
    }

    analyze_spans(trace, &mut a);
    a
}

fn derive_counter_metrics(a: &mut Analysis) {
    let get = |name: &str| a.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    let hits = get("profile.cache.hit");
    let misses: u64 = a
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("profile.cache.miss"))
        .map(|&(_, v)| v)
        .sum();
    if let Some(h) = hits {
        let total = h + misses;
        if total > 0 {
            a.cache_hit_ratio = Some(h as f64 / total as f64);
        }
    }
    a.analyzer_us = a
        .counters
        .iter()
        .filter_map(|(n, v)| {
            let name = n.strip_prefix("profile.analyzer.")?.strip_suffix("_us")?;
            Some((name.to_string(), *v))
        })
        .collect();
    a.analyzer_us.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    a.fault_injections =
        a.counters.iter().filter(|(n, _)| n.starts_with("fault.injected.")).map(|&(_, v)| v).sum();
    a.dropped_records = get("obs.trace.dropped_events").unwrap_or(0)
        + get("obs.events.dropped_lines").unwrap_or(0);
    if let (Some(n), Some(b)) = (get("alloc.count"), get("alloc.bytes")) {
        if n > 0 {
            a.alloc_totals = Some((n, b));
        }
    }
}

fn is_pool(s: &SpanRec) -> bool {
    s.cat == "par" && s.name == "par_map"
}

fn is_chunk(s: &SpanRec) -> bool {
    s.cat == "par" && s.name == "chunk"
}

fn is_kernel(s: &SpanRec) -> bool {
    s.cat == "profile" && s.name != "profile_all"
}

fn analyze_spans(trace: &Trace, a: &mut Analysis) {
    // Run identity from the trace when no summary was given.
    if a.bin.is_none() {
        if let Some(run) = trace.spans.iter().find(|s| s.cat == "run") {
            a.bin = Some(run.name.clone());
            a.wall_s = Some(run.dur_us as f64 / 1e6);
        }
    }
    if a.stages.is_empty() {
        let wall = a.wall_s.unwrap_or(0.0);
        a.stages = trace
            .spans
            .iter()
            .filter(|s| s.cat == "stage")
            .map(|s| {
                let wall_s = s.dur_us as f64 / 1e6;
                StageCost {
                    name: s.name.clone(),
                    wall_s,
                    frac: if wall > 0.0 { wall_s / wall } else { 0.0 },
                }
            })
            .collect();
    }

    // Kernel latency and allocation attribution.
    let mut kernels: Vec<KernelCost> = trace
        .spans
        .iter()
        .filter(|s| is_kernel(s))
        .map(|s| KernelCost {
            name: s.name.clone(),
            dur_us: s.dur_us,
            alloc_n: s.attr_u64("alloc_n"),
            alloc_b: s.attr_u64("alloc_b"),
        })
        .collect();
    a.kernel_count = kernels.len();
    if !kernels.is_empty() {
        let mut durs: Vec<u64> = kernels.iter().map(|k| k.dur_us).collect();
        durs.sort_unstable();
        a.kernel_quantiles_us = Some((
            exact_quantile(&durs, 0.50),
            exact_quantile(&durs, 0.95),
            exact_quantile(&durs, 0.99),
        ));
        kernels.sort_by(|x, y| y.dur_us.cmp(&x.dur_us).then(x.name.cmp(&y.name)));
        kernels.truncate(10);
        a.kernels_top = kernels;
    }

    // Pool utilization.
    let chunks: Vec<&SpanRec> = trace.spans.iter().filter(|s| is_chunk(s)).collect();
    let mut pools: Vec<&SpanRec> = trace.spans.iter().filter(|s| is_pool(s)).collect();
    pools.sort_by_key(|s| s.ts_us);
    for pool in pools {
        a.pools.push(pool_stats(pool, &chunks));
    }

    a.critical_path = critical_path(trace);
}

fn pool_stats(pool: &SpanRec, chunks: &[&SpanRec]) -> PoolStats {
    let threads = pool.attr_u64("threads").unwrap_or(0);
    let mine: Vec<&&SpanRec> = chunks
        .iter()
        .filter(|c| c.ts_us >= pool.ts_us && c.end_us() <= pool.end_us())
        .collect();
    let mut by_tid: BTreeMap<u64, Vec<&SpanRec>> = BTreeMap::new();
    for c in &mine {
        by_tid.entry(c.tid).or_default().push(c);
    }
    let mut workers = Vec::new();
    for (tid, mut spans) in by_tid {
        spans.sort_by_key(|s| s.ts_us);
        let busy_us: u64 = spans.iter().map(|s| s.dur_us).sum();
        let mut max_idle = spans[0].ts_us.saturating_sub(pool.ts_us);
        for pair in spans.windows(2) {
            max_idle = max_idle.max(pair[1].ts_us.saturating_sub(pair[0].end_us()));
        }
        max_idle = max_idle.max(pool.end_us().saturating_sub(spans.last().expect("nonempty").end_us()));
        workers.push(WorkerShare { tid, chunks: spans.len() as u64, busy_us, max_idle_us: max_idle });
    }
    let busy_total: u64 = workers.iter().map(|w| w.busy_us).sum();
    let capacity = threads.saturating_mul(pool.dur_us);
    let utilization = if capacity > 0 { busy_total as f64 / capacity as f64 } else { 0.0 };
    // Mean over the configured thread count: a worker that claimed nothing
    // still dilutes the mean, which is exactly the imbalance story.
    let mean = if threads > 0 { busy_total as f64 / threads as f64 } else { 0.0 };
    let max = workers.iter().map(|w| w.busy_us).max().unwrap_or(0) as f64;
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    PoolStats {
        ts_us: pool.ts_us,
        dur_us: pool.dur_us,
        threads,
        items: pool.attr_u64("items").unwrap_or(0),
        chunks: mine.len() as u64,
        utilization,
        imbalance,
        workers,
    }
}

/// The dominant-cost chain from the `run` root down: at every level
/// descend into the longest child (ties to the later-finishing one) — for
/// sequential stages that is the stage that dominated the wall time, and
/// for a fork-join `par_map` the descent crosses threads into the longest
/// `chunk`, which is the lower bound no amount of stealing can beat. A
/// `self` time is what the chosen child does not account for.
fn critical_path(trace: &Trace) -> Vec<CritStep> {
    let forest = trace.forest();
    // Node lookup for cross-thread descent: chunk span index -> subtree.
    fn index_nodes<'f>(
        nodes: &'f [SpanNode],
        into: &mut BTreeMap<usize, &'f SpanNode>,
    ) {
        for n in nodes {
            into.insert(n.span, n);
            index_nodes(&n.children, into);
        }
    }
    let mut by_span: BTreeMap<usize, &SpanNode> = BTreeMap::new();
    for roots in forest.values() {
        index_nodes(roots, &mut by_span);
    }

    let root = by_span
        .values()
        .find(|n| trace.spans[n.span].cat == "run")
        .or_else(|| {
            by_span.values().max_by_key(|n| trace.spans[n.span].dur_us)
        })
        .map(|n| n.span);
    let Some(mut current) = root else { return Vec::new() };

    let mut path = Vec::new();
    loop {
        let span = &trace.spans[current];
        let node = by_span.get(&current).expect("indexed");
        // Same-thread children, plus cross-thread chunks for pool spans.
        let mut candidates: Vec<usize> = node.children.iter().map(|c| c.span).collect();
        if is_pool(span) {
            candidates.extend(
                trace
                    .spans
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| {
                        is_chunk(c) && c.ts_us >= span.ts_us && c.end_us() <= span.end_us()
                    })
                    .map(|(i, _)| i),
            );
        }
        let next = candidates.into_iter().max_by_key(|&i| {
            let c = &trace.spans[i];
            (c.dur_us, c.end_us())
        });
        let child_dur = next.map(|i| trace.spans[i].dur_us).unwrap_or(0);
        path.push(CritStep {
            cat: span.cat.clone(),
            name: span.name.clone(),
            tid: span.tid,
            dur_us: span.dur_us,
            self_us: span.dur_us.saturating_sub(child_dur),
        });
        match next {
            Some(i) if path.len() < 32 => current = i,
            _ => break,
        }
    }
    path
}

/// Render the analysis as the human-readable report `mica-prof analyze`
/// prints.
pub fn render(a: &Analysis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let bin = a.bin.as_deref().unwrap_or("<unknown>");
    let _ = writeln!(out, "# mica-prof report: {bin}");
    if let Some(w) = a.wall_s {
        let _ = writeln!(out, "wall time: {w:.3}s");
    }
    if a.truncated {
        let _ = writeln!(
            out,
            "WARNING: trace is incomplete ({}; {} line(s) skipped) — numbers below undercount",
            match a.flush {
                None => "no terminating flush record".to_string(),
                Some(f) => format!("{} line(s) dropped by the sink", f.dropped_lines),
            },
            a.skipped_lines,
        );
    }

    if !a.stages.is_empty() {
        let _ = writeln!(out, "\n## Stage decomposition");
        for st in &a.stages {
            let _ =
                writeln!(out, "  {:24} {:>9.3}s  {:>5.1}%", st.name, st.wall_s, st.frac * 100.0);
        }
    }

    if !a.critical_path.is_empty() {
        let _ = writeln!(out, "\n## Critical path (root first)");
        for (i, step) in a.critical_path.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:indent$}{}/{} on tid {}: {:.3}s ({:.3}s self)",
                "",
                step.cat,
                step.name,
                step.tid,
                step.dur_us as f64 / 1e6,
                step.self_us as f64 / 1e6,
                indent = i * 2,
            );
        }
    }

    for (i, p) in a.pools.iter().enumerate() {
        let _ = writeln!(
            out,
            "\n## Pool #{i}: {} items, {} threads, {} chunks, {:.3}s",
            p.items,
            p.threads,
            p.chunks,
            p.dur_us as f64 / 1e6,
        );
        let _ = writeln!(
            out,
            "  utilization {:.1}%  imbalance {:.2}x",
            p.utilization * 100.0,
            p.imbalance
        );
        for w in &p.workers {
            let _ = writeln!(
                out,
                "  tid {:>3}: {:>4} chunks, busy {:>9.3}s, max idle {:>9.3}s",
                w.tid,
                w.chunks,
                w.busy_us as f64 / 1e6,
                w.max_idle_us as f64 / 1e6,
            );
        }
    }

    if a.kernel_count > 0 {
        let _ = writeln!(out, "\n## Kernels ({} spans)", a.kernel_count);
        if let Some((p50, p95, p99)) = a.kernel_quantiles_us {
            let _ = writeln!(out, "  latency p50 {p50}us  p95 {p95}us  p99 {p99}us");
        }
        for k in &a.kernels_top {
            let alloc = match (k.alloc_n, k.alloc_b) {
                (Some(n), Some(b)) => format!("  {n} allocs / {b} B"),
                _ => String::new(),
            };
            let _ = writeln!(out, "  {:40} {:>9}us{alloc}", k.name, k.dur_us);
        }
    }

    if !a.hist_quantiles.is_empty() {
        let _ = writeln!(out, "\n## Histogram quantiles (bucket upper bounds)");
        for q in &a.hist_quantiles {
            let _ = writeln!(
                out,
                "  {:24} n={:<8} p50≤{:<10} p95≤{:<10} p99≤{}",
                q.name, q.count, q.p50, q.p95, q.p99
            );
        }
    }

    if !a.analyzer_us.is_empty() {
        let total: u64 = a.analyzer_us.iter().map(|&(_, v)| v).sum();
        let _ = writeln!(out, "\n## Profile wall time by analyzer");
        for (name, us) in &a.analyzer_us {
            let frac = if total > 0 { *us as f64 / total as f64 * 100.0 } else { 0.0 };
            let _ = writeln!(out, "  {name:10} {us:>9}us  {frac:>5.1}%");
        }
    }

    if !a.counters.is_empty() {
        let _ = writeln!(out, "\n## Counters");
        if let Some(r) = a.cache_hit_ratio {
            let _ = writeln!(out, "  cache hit ratio: {:.1}%", r * 100.0);
        }
        if let Some((n, b)) = a.alloc_totals {
            let _ = writeln!(out, "  allocations: {n} ({b} bytes)");
        }
        let _ = writeln!(out, "  fault injections: {}", a.fault_injections);
        let _ = writeln!(out, "  dropped records: {}", a.dropped_records);
        for (name, value) in &a.counters {
            let _ = writeln!(out, "  {name:32} {value}");
        }
    }
    out
}

/// Median of `values` (0.0 when empty); used by the regression gate and
/// exposed for its tests.
pub fn median(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    median_f64(&mut v)
}

/// Machine-readable mirror of [`Analysis`] for `mica-prof analyze --json`.
///
/// A separate type (rather than `Serialize` on [`Analysis`]) so the JSON
/// schema is an explicit, stable contract: quantile triples become named
/// fields, span indices and other internal bookkeeping stay out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonReport {
    /// Binary name, when known.
    pub bin: Option<String>,
    /// Run wall seconds, when known.
    pub wall_s: Option<f64>,
    /// Whether the trace is provably incomplete.
    pub truncated: bool,
    /// Unparseable lines skipped while loading the trace.
    pub skipped_lines: u64,
    /// Stage decomposition, in execution order.
    pub stages: Vec<JsonStage>,
    /// Critical path, root first.
    pub critical_path: Vec<JsonCritStep>,
    /// Kernel spans observed.
    pub kernel_count: u64,
    /// Exact kernel-latency quantiles, microseconds.
    pub kernel_p50_us: Option<u64>,
    /// 95th percentile.
    pub kernel_p95_us: Option<u64>,
    /// 99th percentile.
    pub kernel_p99_us: Option<u64>,
    /// Most expensive kernels, descending, capped at ten.
    pub kernels_top: Vec<JsonKernel>,
    /// Every summary counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-analyzer delivery wall time, descending.
    pub analyzer_us: Vec<(String, u64)>,
    /// `profile.cache.hit / (hit + miss*)`, when the counters exist.
    pub cache_hit_ratio: Option<f64>,
    /// Σ of `fault.*` injection counters.
    pub fault_injections: u64,
    /// Σ of dropped-record counters.
    pub dropped_records: u64,
}

/// One stage in a [`JsonReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonStage {
    /// Stage name.
    pub name: String,
    /// Stage wall-clock seconds.
    pub wall_s: f64,
    /// Fraction of the run's wall time.
    pub frac: f64,
}

/// One critical-path step in a [`JsonReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonCritStep {
    /// Span category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Logical thread the span ran on.
    pub tid: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
    /// Duration not covered by the next step down, microseconds.
    pub self_us: u64,
}

/// One hot kernel in a [`JsonReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonKernel {
    /// Benchmark name.
    pub name: String,
    /// Profiling duration, microseconds.
    pub dur_us: u64,
    /// Allocations charged to the span, when tracked.
    pub alloc_n: Option<u64>,
    /// Bytes charged to the span, when tracked.
    pub alloc_b: Option<u64>,
}

impl JsonReport {
    /// Project an [`Analysis`] onto the stable JSON schema.
    pub fn from_analysis(a: &Analysis) -> JsonReport {
        let (p50, p95, p99) = match a.kernel_quantiles_us {
            Some((p50, p95, p99)) => (Some(p50), Some(p95), Some(p99)),
            None => (None, None, None),
        };
        JsonReport {
            bin: a.bin.clone(),
            wall_s: a.wall_s,
            truncated: a.truncated,
            skipped_lines: a.skipped_lines as u64,
            stages: a
                .stages
                .iter()
                .map(|s| JsonStage { name: s.name.clone(), wall_s: s.wall_s, frac: s.frac })
                .collect(),
            critical_path: a
                .critical_path
                .iter()
                .map(|c| JsonCritStep {
                    cat: c.cat.clone(),
                    name: c.name.clone(),
                    tid: c.tid,
                    dur_us: c.dur_us,
                    self_us: c.self_us,
                })
                .collect(),
            kernel_count: a.kernel_count as u64,
            kernel_p50_us: p50,
            kernel_p95_us: p95,
            kernel_p99_us: p99,
            kernels_top: a
                .kernels_top
                .iter()
                .map(|k| JsonKernel {
                    name: k.name.clone(),
                    dur_us: k.dur_us,
                    alloc_n: k.alloc_n,
                    alloc_b: k.alloc_b,
                })
                .collect(),
            counters: a.counters.clone(),
            analyzer_us: a.analyzer_us.clone(),
            cache_hit_ratio: a.cache_hit_ratio,
            fault_injections: a.fault_injections,
            dropped_records: a.dropped_records,
        }
    }
}

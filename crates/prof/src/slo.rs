//! Offline SLO audit over the serve daemon's access log.
//!
//! `mica-serve` scores its latency objective live (windowed counters for
//! `ops` scrapes, lifetime totals in the drain summary). This module is
//! the *offline referee*: it replays `<results>/serve-access.jsonl` and
//! recomputes attainment from the per-request records, so CI can gate on
//! an artifact rather than trusting the daemon's own bookkeeping.
//!
//! Parsing follows the [`crate::trace`] philosophy: tolerant. A line that
//! does not parse or lacks the fields this version needs is counted and
//! skipped, never fatal — the audit says what it can about logs written
//! by newer or older servers.
//!
//! Scoring matches the server's definition with one stated difference:
//! the log records `queue_wait_us` and `exec_us` but not the response
//! write, so offline latency is `queue_wait_us + exec_us` — a lower bound
//! on the server's admission-to-response-written measure. A request is
//! **good** when its outcome is `ok` and that latency is within the
//! objective. Refusals (`overloaded`/`draining`), unparseable request
//! lines (`kind: "invalid"`) and control-plane `ops` scrapes are excluded
//! from the denominator, exactly as the server excludes them.

use serde::Value;
use std::collections::BTreeMap;

/// The audit's result over one access log.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The latency objective the log was scored against, milliseconds.
    pub slo_ms: u64,
    /// The attainment objective in `[0, 1)`.
    pub target: f64,
    /// Log lines read.
    pub lines: u64,
    /// Lines skipped as unparseable or missing required fields.
    pub skipped: u64,
    /// Data-plane answers scored (the attainment denominator).
    pub answered: u64,
    /// Answers that met the objective.
    pub good: u64,
    /// Admission refusals (excluded from scoring).
    pub refused: u64,
    /// Control-plane scrapes (excluded from scoring).
    pub ops: u64,
    /// Unparseable request lines the server refused (excluded).
    pub invalid: u64,
    /// Worst scored latency seen, microseconds.
    pub worst_us: u64,
    /// Scored answers by outcome (`ok`, `error`, `panic`, `deadline`).
    pub by_outcome: BTreeMap<String, u64>,
}

impl SloReport {
    /// `good / answered`; a log with nothing scored attains 1.0.
    pub fn attainment(&self) -> f64 {
        if self.answered == 0 {
            1.0
        } else {
            self.good as f64 / self.answered as f64
        }
    }

    /// Error-budget burn rate against `target` (1.0 = exactly
    /// sustainable).
    pub fn burn_rate(&self) -> f64 {
        (1.0 - self.attainment()) / (1.0 - self.target).max(1e-9)
    }

    /// Whether the log misses the objective.
    pub fn breached(&self) -> bool {
        self.attainment() < self.target
    }
}

fn get_u64(obj: &Value, key: &str) -> Option<u64> {
    match obj.field(key)? {
        Value::Number(n) => n.as_u64(),
        _ => None,
    }
}

fn get_str<'v>(obj: &'v Value, key: &str) -> Option<&'v str> {
    match obj.field(key)? {
        Value::String(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Score an access log (the file's text) against the objective.
pub fn audit(log_text: &str, slo_ms: u64, target: f64) -> SloReport {
    let mut report = SloReport {
        slo_ms,
        target,
        lines: 0,
        skipped: 0,
        answered: 0,
        good: 0,
        refused: 0,
        ops: 0,
        invalid: 0,
        worst_us: 0,
        by_outcome: BTreeMap::new(),
    };
    for line in log_text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        let Ok(obj) = serde_json::from_str::<Value>(line) else {
            report.skipped += 1;
            continue;
        };
        let (Some(kind), Some(outcome)) = (get_str(&obj, "kind"), get_str(&obj, "outcome"))
        else {
            report.skipped += 1;
            continue;
        };
        match kind {
            "ops" => {
                report.ops += 1;
                continue;
            }
            "invalid" => {
                report.invalid += 1;
                continue;
            }
            _ => {}
        }
        if outcome == "overloaded" || outcome == "draining" {
            report.refused += 1;
            continue;
        }
        let (Some(wait), Some(exec)) =
            (get_u64(&obj, "queue_wait_us"), get_u64(&obj, "exec_us"))
        else {
            report.skipped += 1;
            continue;
        };
        let latency_us = wait.saturating_add(exec);
        report.answered += 1;
        report.worst_us = report.worst_us.max(latency_us);
        *report.by_outcome.entry(outcome.to_string()).or_insert(0) += 1;
        if outcome == "ok" && latency_us <= slo_ms.saturating_mul(1_000) {
            report.good += 1;
        }
    }
    report
}

/// Render the audit as the report `mica-prof slo` prints.
pub fn render(report: &SloReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "SLO audit: {} lines ({} skipped), objective ok within {}ms at target {}\n",
        report.lines, report.skipped, report.slo_ms, report.target
    ));
    out.push_str(&format!(
        "  scored {} answers: {} good, worst latency {}us\n",
        report.answered, report.good, report.worst_us
    ));
    for (outcome, n) in &report.by_outcome {
        out.push_str(&format!("    {outcome}: {n}\n"));
    }
    out.push_str(&format!(
        "  excluded: {} refused, {} ops, {} invalid\n",
        report.refused, report.ops, report.invalid
    ));
    out.push_str(&format!(
        "  attainment {:.6}, burn rate {:.3}: {}\n",
        report.attainment(),
        report.burn_rate(),
        if report.breached() { "BREACH" } else { "within objective" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(kind: &str, outcome: &str, wait: u64, exec: u64) -> String {
        format!(
            "{{\"ts_us\":1,\"id\":\"q\",\"trace\":\"00000000000000aa\",\"kind\":\"{kind}\",\
             \"outcome\":\"{outcome}\",\"queue_wait_us\":{wait},\"exec_us\":{exec},\
             \"fuel\":0,\"deadline_slack_ms\":5}}"
        )
    }

    #[test]
    fn scores_only_data_plane_answers() {
        let log = [
            line("table", "ok", 100, 200),
            line("asm", "ok", 0, 2_000_000), // 2s: past a 1s objective
            line("asm", "deadline", 0, 500),
            line("zoo", "overloaded", 0, 0),
            line("ops", "ok", 0, 0),
            line("invalid", "error", 0, 0),
            "not json at all".to_string(),
        ]
        .join("\n");
        let report = audit(&log, 1_000, 0.99);
        assert_eq!(report.lines, 7);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.answered, 3);
        assert_eq!(report.good, 1);
        assert_eq!(report.refused, 1);
        assert_eq!(report.ops, 1);
        assert_eq!(report.invalid, 1);
        assert_eq!(report.worst_us, 2_000_000);
        assert_eq!(report.by_outcome.get("deadline"), Some(&1));
        assert!(report.breached());
        let text = render(&report);
        assert!(text.contains("BREACH"), "{text}");
    }

    #[test]
    fn empty_log_attains_perfectly() {
        let report = audit("", 1_000, 0.99);
        assert_eq!(report.attainment(), 1.0);
        assert_eq!(report.burn_rate(), 0.0);
        assert!(!report.breached());
    }

    #[test]
    fn tolerates_unknown_and_missing_fields() {
        // A future server adding fields must not break the audit; a line
        // missing what we need is skipped, not fatal.
        let log = "{\"kind\":\"table\",\"outcome\":\"ok\",\"queue_wait_us\":1,\
                   \"exec_us\":2,\"new_field\":true}\n{\"kind\":\"table\"}";
        let report = audit(log, 1_000, 0.5);
        assert_eq!(report.answered, 1);
        assert_eq!(report.good, 1);
        assert_eq!(report.skipped, 1);
        assert!(!report.breached());
    }
}

//! End-to-end gate tests against the real `mica-prof` binary: an
//! unmodified run passes (exit 0), a synthetic 2× stage slowdown fails
//! (exit 2) and the report names the regressed stage.

use mica_experiments::runner::{CounterEntry, RunSummary, StageSummary};
use mica_prof::baseline::{Baseline, MAX_ENTRIES};
use std::path::{Path, PathBuf};
use std::process::Command;

fn summary(profile_s: f64) -> RunSummary {
    RunSummary {
        bin: "profile".to_string(),
        scale: 1e-6,
        threads: 4,
        backend: "ref".to_string(),
        pmu_period: None,
        table_fingerprint: 0xabcd,
        wall_s: profile_s + 0.1,
        stages: vec![
            StageSummary { name: "profile".to_string(), wall_s: profile_s },
            StageSummary { name: "save".to_string(), wall_s: 0.1 },
        ],
        counters: vec![CounterEntry { name: "profile.kernels".to_string(), value: 122 }],
        histograms: Vec::new(),
        quarantined: Vec::new(),
    }
}

fn write_baseline(path: &Path, walls: &[f64]) {
    let mut base = Baseline::empty();
    for (i, &w) in walls.iter().enumerate() {
        base.record(summary(w), &format!("seed-{i}"), 1_700_000_000 + i as u64);
    }
    base.save(path).expect("baseline written");
}

fn write_summary(path: &Path, s: &RunSummary) {
    std::fs::write(path, serde_json::to_string_pretty(s).unwrap()).expect("summary written");
}

struct Gate {
    code: i32,
    stdout: String,
}

fn run_check(dir: &Path, extra: &[&str]) -> Gate {
    let out = Command::new(env!("CARGO_BIN_EXE_mica-prof"))
        .arg("check")
        .arg("--summary")
        .arg(dir.join("current.json"))
        .arg("--baseline")
        .arg(dir.join("baseline.json"))
        .args(extra)
        .output()
        .expect("mica-prof runs");
    Gate {
        code: out.status.code().expect("exit code"),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mica_prof_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn unmodified_run_passes_the_gate() {
    let dir = temp_dir("pass");
    write_baseline(&dir.join("baseline.json"), &[2.0, 2.1, 1.9]);
    write_summary(&dir.join("current.json"), &summary(2.05));
    let gate = run_check(&dir, &[]);
    assert_eq!(gate.code, 0, "stdout:\n{}", gate.stdout);
    assert!(gate.stdout.contains("gate passed"), "{}", gate.stdout);
    assert!(!gate.stdout.contains("REGRESSION"), "{}", gate.stdout);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn doubled_stage_fails_the_gate_and_names_the_stage() {
    let dir = temp_dir("fail");
    write_baseline(&dir.join("baseline.json"), &[2.0, 2.1, 1.9]);
    write_summary(&dir.join("current.json"), &summary(4.0));
    let gate = run_check(&dir, &[]);
    assert_eq!(gate.code, 2, "stdout:\n{}", gate.stdout);
    assert!(
        gate.stdout.contains("[REGRESSION] stage profile"),
        "report must name the regressed stage:\n{}",
        gate.stdout
    );
    // The untouched stage stays informational.
    assert!(!gate.stdout.contains("[REGRESSION] stage save"), "{}", gate.stdout);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn incomparable_baseline_passes_vacuously() {
    let dir = temp_dir("vacuous");
    write_baseline(&dir.join("baseline.json"), &[2.0]);
    let mut cur = summary(100.0);
    cur.threads = 8; // different configuration — timings not comparable
    write_summary(&dir.join("current.json"), &cur);
    let gate = run_check(&dir, &[]);
    assert_eq!(gate.code, 0, "stdout:\n{}", gate.stdout);
    assert!(gate.stdout.contains("vacuously"), "{}", gate.stdout);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn thresholds_are_tunable_from_the_command_line() {
    let dir = temp_dir("tunable");
    write_baseline(&dir.join("baseline.json"), &[2.0, 2.0, 2.0]);
    write_summary(&dir.join("current.json"), &summary(4.0));
    // A 3x allowance lets the 2x slowdown through.
    let gate = run_check(&dir, &["--max-ratio", "3.0"]);
    assert_eq!(gate.code, 0, "stdout:\n{}", gate.stdout);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn record_appends_assigns_seqs_and_rebuilds_legacy_files() {
    let dir = temp_dir("record");
    let baseline = dir.join("baseline.json");
    // A legacy (pre-trajectory) file was a bare RunSummary: unreadable as
    // a trajectory, so `record` starts a fresh one instead of failing.
    write_summary(&baseline, &summary(2.0));

    write_summary(&dir.join("current.json"), &summary(2.0));
    for i in 0..2 {
        let out = Command::new(env!("CARGO_BIN_EXE_mica-prof"))
            .arg("record")
            .arg("--summary")
            .arg(dir.join("current.json"))
            .arg("--baseline")
            .arg(&baseline)
            .arg("--label")
            .arg(format!("commit-{i}"))
            .output()
            .expect("mica-prof runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }

    let base = Baseline::load_or_empty(&baseline);
    assert_eq!(base.entries.len(), 2, "legacy file was replaced by a fresh trajectory");
    assert_eq!(
        base.entries.iter().map(|e| e.seq).collect::<Vec<u64>>(),
        [0, 1],
        "sequence numbers are assigned in order"
    );
    assert!(base.entries.len() <= MAX_ENTRIES);
    assert_eq!(base.entries.last().unwrap().label, "commit-1");
    std::fs::remove_dir_all(dir).ok();
}

//! The analytics engine against a synthetic but fully-shaped trace: a run
//! span over one stage over one `par_map` pool whose chunks land on two
//! worker threads and carry kernel spans with allocation attribution.

use mica_experiments::runner::{CounterEntry, HistogramEntry, RunSummary, StageSummary};
use mica_prof::analysis::{analyze, render};
use mica_prof::trace::Trace;

fn span(ts: u64, dur: u64, tid: u64, depth: u64, cat: &str, name: &str, attrs: &str) -> String {
    format!(
        "{{\"t\":\"span\",\"ts_us\":{ts},\"dur_us\":{dur},\"tid\":{tid},\"depth\":{depth},\
         \"cat\":\"{cat}\",\"name\":\"{name}\",\"attrs\":{{{attrs}}}}}"
    )
}

/// run[0..1000] > stage profile[0..1000] > par_map[0..1000, 2 threads];
/// tid 1 runs one chunk [0..400] holding kernel A, then idles; tid 2 runs
/// chunks [0..500] and [500..1000] holding kernels B and C.
fn synthetic_trace() -> String {
    let lines = [
        span(0, 390, 1, 1, "profile", "MiBench/CRC32/pcm", "\"alloc_n\":10,\"alloc_b\":640"),
        span(0, 400, 1, 0, "par", "chunk", "\"start\":0,\"len\":8"),
        span(0, 490, 2, 1, "profile", "SPEC2000/bzip2/graphic", "\"alloc_n\":20,\"alloc_b\":1280"),
        span(0, 500, 2, 0, "par", "chunk", "\"start\":8,\"len\":8"),
        span(500, 490, 2, 1, "profile", "SPEC2000/gcc/166", ""),
        span(500, 500, 2, 0, "par", "chunk", "\"start\":16,\"len\":8"),
        span(0, 1000, 0, 2, "par", "par_map", "\"items\":24,\"threads\":2"),
        span(0, 1000, 0, 1, "stage", "profile", ""),
        span(0, 1000, 0, 0, "run", "profile", ""),
        "{\"t\":\"flush\",\"events\":0,\"spans\":9,\"dropped_lines\":0}".to_string(),
    ];
    lines.join("\n") + "\n"
}

fn summary() -> RunSummary {
    RunSummary {
        bin: "profile".to_string(),
        scale: 1.0,
        threads: 2,
        backend: "ref".to_string(),
        pmu_period: None,
        table_fingerprint: 0xfeed,
        wall_s: 0.001,
        stages: vec![StageSummary { name: "profile".to_string(), wall_s: 0.001 }],
        counters: vec![
            CounterEntry { name: "alloc.bytes".to_string(), value: 1920 },
            CounterEntry { name: "alloc.count".to_string(), value: 30 },
            CounterEntry { name: "profile.cache.hit".to_string(), value: 3 },
            CounterEntry { name: "profile.cache.miss.absent".to_string(), value: 1 },
        ],
        histograms: vec![HistogramEntry {
            name: "par.chunk_us".to_string(),
            count: 3,
            sum: 1400,
            buckets: vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2],
        }],
        quarantined: Vec::new(),
    }
}

#[test]
fn full_analysis_of_a_synthetic_run() {
    let trace = Trace::parse(&synthetic_trace());
    assert!(!trace.truncated());
    let a = analyze(&trace, Some(&summary()));

    assert_eq!(a.bin.as_deref(), Some("profile"));
    assert_eq!(a.stages.len(), 1);
    assert!((a.stages[0].frac - 1.0).abs() < 1e-9);

    // Pool: busy = 400 + 500 + 500 = 1400 over 2×1000 capacity.
    assert_eq!(a.pools.len(), 1);
    let p = &a.pools[0];
    assert_eq!((p.threads, p.items, p.chunks), (2, 24, 3));
    assert!((p.utilization - 0.7).abs() < 1e-9, "utilization {}", p.utilization);
    // max busy 1000 / mean 700.
    assert!((p.imbalance - 1000.0 / 700.0).abs() < 1e-9, "imbalance {}", p.imbalance);
    let w1 = p.workers.iter().find(|w| w.tid == 1).expect("worker 1");
    assert_eq!((w1.chunks, w1.busy_us), (1, 400));
    assert_eq!(w1.max_idle_us, 600, "tid 1 idles from 400 to pool end");

    // Kernels: three spans, exact quantiles over [390, 490, 490].
    assert_eq!(a.kernel_count, 3);
    assert_eq!(a.kernel_quantiles_us, Some((490, 490, 490)));
    assert_eq!(a.kernels_top[0].name, "SPEC2000/bzip2/graphic");
    assert_eq!(a.kernels_top[0].alloc_n, Some(20));
    assert_eq!(a.kernels_top[0].alloc_b, Some(1280));

    // Critical path: run > stage > par_map > longest (and last-finishing)
    // chunk on tid 2 > its kernel.
    let names: Vec<&str> = a.critical_path.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["profile", "profile", "par_map", "chunk", "SPEC2000/gcc/166"]);
    assert_eq!(a.critical_path[3].tid, 2, "descends across threads into the dominant chunk");

    // Counter-derived metrics and histogram quantiles from the summary.
    assert_eq!(a.cache_hit_ratio, Some(0.75));
    assert_eq!(a.alloc_totals, Some((30, 1920)));
    assert_eq!(a.hist_quantiles.len(), 1);
    let q = &a.hist_quantiles[0];
    // Buckets: one value of bit length 9 (≤511), two of bit length 10 (≤1023).
    assert_eq!((q.p50, q.p95, q.p99), (1023, 1023, 1023));

    let report = render(&a);
    for needle in [
        "Stage decomposition",
        "Critical path",
        "utilization 70.0%",
        "SPEC2000/gcc/166",
        "cache hit ratio: 75.0%",
        "par.chunk_us",
    ] {
        assert!(report.contains(needle), "report missing {needle:?}:\n{report}");
    }
    assert!(!report.contains("WARNING"), "clean trace must not warn:\n{report}");
}

#[test]
fn truncated_trace_is_reported_not_hidden() {
    // Same trace without the flush record: the stream died mid-run.
    let text: String =
        synthetic_trace().lines().filter(|l| !l.contains("\"flush\"")).collect::<Vec<_>>().join("\n");
    let trace = Trace::parse(&text);
    assert!(trace.truncated());
    let report = render(&analyze(&trace, None));
    assert!(report.contains("WARNING"), "truncation must surface:\n{report}");
    assert!(report.contains("no terminating flush record"), "{report}");
}

#[test]
fn analysis_without_summary_recovers_run_identity_from_spans() {
    let trace = Trace::parse(&synthetic_trace());
    let a = analyze(&trace, None);
    assert_eq!(a.bin.as_deref(), Some("profile"));
    assert_eq!(a.stages.len(), 1, "stages recovered from stage spans");
    assert!(a.counters.is_empty(), "no summary, no counters");
    assert_eq!(a.pools.len(), 1);
}

#[test]
fn analyzer_attribution_renders_when_its_counters_exist() {
    let trace = Trace::parse(&synthetic_trace());
    let mut s = summary();
    s.counters.push(CounterEntry { name: "profile.analyzer.ppm_us".to_string(), value: 600 });
    s.counters.push(CounterEntry { name: "profile.analyzer.mix_us".to_string(), value: 200 });
    s.counters.push(CounterEntry { name: "profile.analyzer.hpc_us".to_string(), value: 200 });
    let a = analyze(&trace, Some(&s));
    assert_eq!(a.analyzer_us[0], ("ppm".to_string(), 600), "descending by time: {:?}", a.analyzer_us);
    assert_eq!(a.analyzer_us.len(), 3);
    let report = render(&a);
    assert!(report.contains("Profile wall time by analyzer"), "{report}");
    assert!(report.contains("60.0%"), "ppm's share of 1000us:\n{report}");

    // A run without MICA_ANALYZER_TIMING has none of the counters and the
    // section stays out of the report entirely.
    let plain = render(&analyze(&trace, Some(&summary())));
    assert!(!plain.contains("by analyzer"), "{plain}");
}

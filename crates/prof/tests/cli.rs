//! End-to-end tests of the `mica-prof` binary's non-gate commands:
//! `analyze` error handling and `--json` output, `heat`, and the
//! `heat-diff` drift detector.

use mica_pmu::{BlockHeat, KernelHeat};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

struct Run {
    code: i32,
    stdout: String,
    stderr: String,
}

fn run(args: &[&str]) -> Run {
    let out = Command::new(env!("CARGO_BIN_EXE_mica-prof"))
        .args(args)
        .output()
        .expect("mica-prof runs");
    Run {
        code: out.status.code().expect("exit code"),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mica_prof_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A minimal but complete events stream: run > stage > kernel span plus a
/// consistent flush record, so the trace is not truncated.
fn events_text() -> String {
    [
        "{\"t\":\"span\",\"ts_us\":10,\"dur_us\":80,\"tid\":0,\"depth\":2,\
         \"cat\":\"profile\",\"name\":\"MiBench/CRC32/pcm\",\"attrs\":{}}",
        "{\"t\":\"span\",\"ts_us\":5,\"dur_us\":90,\"tid\":0,\"depth\":1,\
         \"cat\":\"stage\",\"name\":\"profile\",\"attrs\":{}}",
        "{\"t\":\"span\",\"ts_us\":0,\"dur_us\":100,\"tid\":0,\"depth\":0,\
         \"cat\":\"run\",\"name\":\"profile\",\"attrs\":{}}",
        "{\"t\":\"flush\",\"events\":0,\"spans\":3,\"dropped_lines\":0}",
    ]
    .join("\n")
        + "\n"
}

fn heat(kernel: &str, shares: &[(u64, f64)]) -> KernelHeat {
    let retired: u64 = shares.iter().map(|&(_, s)| (s * 1000.0) as u64).sum();
    KernelHeat {
        kernel: kernel.to_string(),
        period: 101,
        retired,
        samples: shares.len() as u64,
        taken_branches: 7,
        not_taken_branches: 3,
        mem_read_bytes: 64,
        mem_write_bytes: 32,
        class_counts: BTreeMap::from([("IntAlu".to_string(), retired)]),
        blocks: shares
            .iter()
            .map(|&(pc, share)| BlockHeat {
                pc,
                first_idx: 0,
                insts: 4,
                hits: 2,
                retired: (share * 1000.0) as u64,
                samples: 1,
                share,
                loop_depth: 1,
                loop_chain: vec![pc],
                static_mix: BTreeMap::from([("IntAlu".to_string(), 4)]),
            })
            .collect(),
    }
}

fn write_heat_dir(dir: &Path, heats: &[KernelHeat]) {
    std::fs::create_dir_all(dir).unwrap();
    for h in heats {
        let path = dir.join(format!("{}.json", KernelHeat::file_stem(&h.kernel)));
        std::fs::write(path, h.to_json()).unwrap();
    }
    // The real heat directory also holds non-JSON renderings; the loader
    // must skip them rather than choke.
    std::fs::write(dir.join("flamegraph.collapsed"), "k;block@0x10 1\n").unwrap();
}

#[test]
fn analyze_on_a_missing_events_file_exits_nonzero_and_names_the_path() {
    let missing = temp_dir("absent").join("no-such-events.jsonl");
    let r = run(&["analyze", "--events", missing.to_str().unwrap()]);
    assert_eq!(r.code, 1, "stderr:\n{}", r.stderr);
    assert!(
        r.stderr.contains("no-such-events.jsonl"),
        "error must name the offending path:\n{}",
        r.stderr
    );
    assert!(r.stderr.contains("cannot read events"), "{}", r.stderr);
}

#[test]
fn analyze_json_writes_a_parseable_machine_report() {
    let dir = temp_dir("json");
    let events = dir.join("events.jsonl");
    std::fs::write(&events, events_text()).unwrap();
    let json_path = dir.join("report.json");
    let r = run(&[
        "analyze",
        "--events",
        events.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(r.code, 0, "stderr:\n{}", r.stderr);
    assert!(r.stdout.contains("# mica-prof report"), "human report still printed");
    let text = std::fs::read_to_string(&json_path).expect("JSON report written");
    let report: mica_prof::analysis::JsonReport =
        serde_json::from_str(&text).expect("JSON report parses");
    assert_eq!(report.bin.as_deref(), Some("profile"));
    assert_eq!(report.kernel_count, 1);
    assert_eq!(report.kernels_top[0].name, "MiBench/CRC32/pcm");
    assert!(!report.truncated);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn heat_renders_the_hottest_blocks() {
    let dir = temp_dir("heat");
    write_heat_dir(&dir, &[heat("m/a/x", &[(0x10000, 0.9), (0x10020, 0.1)])]);
    let r = run(&["heat", "--dir", dir.to_str().unwrap(), "--top", "1"]);
    assert_eq!(r.code, 0, "stderr:\n{}", r.stderr);
    assert!(r.stdout.contains("m/a/x"), "{}", r.stdout);
    assert!(r.stdout.contains("0x10000"), "hottest block listed:\n{}", r.stdout);
    assert!(!r.stdout.contains("0x10020"), "--top 1 truncates:\n{}", r.stdout);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn heat_on_an_empty_directory_fails_and_names_it() {
    let dir = temp_dir("heat_empty");
    let r = run(&["heat", "--dir", dir.to_str().unwrap()]);
    assert_eq!(r.code, 1);
    assert!(r.stderr.contains("no heat artifacts"), "{}", r.stderr);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn heat_diff_of_identical_runs_is_clean() {
    let root = temp_dir("diff_clean");
    let heats = [heat("m/a/x", &[(0x10000, 0.7), (0x10020, 0.3)])];
    write_heat_dir(&root.join("a"), &heats);
    write_heat_dir(&root.join("b"), &heats);
    let r = run(&[
        "heat-diff",
        root.join("a").to_str().unwrap(),
        root.join("b").to_str().unwrap(),
    ]);
    assert_eq!(r.code, 0, "stdout:\n{}\nstderr:\n{}", r.stdout, r.stderr);
    assert!(r.stdout.contains("no hotspot drift"), "{}", r.stdout);
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn heat_diff_flags_a_perturbed_kernel_and_exits_2() {
    let root = temp_dir("diff_drift");
    write_heat_dir(&root.join("a"), &[heat("m/a/x", &[(0x10000, 0.7), (0x10020, 0.3)])]);
    write_heat_dir(&root.join("b"), &[heat("m/a/x", &[(0x10000, 0.5), (0x10020, 0.5)])]);
    let r = run(&[
        "heat-diff",
        root.join("a").to_str().unwrap(),
        root.join("b").to_str().unwrap(),
        "--threshold",
        "0.05",
    ]);
    assert_eq!(r.code, 2, "stdout:\n{}\nstderr:\n{}", r.stdout, r.stderr);
    assert!(r.stdout.contains("DRIFT m/a/x block 0x10000"), "{}", r.stdout);
    assert!(r.stderr.contains("hotspot drift detected"), "{}", r.stderr);
    std::fs::remove_dir_all(root).ok();
}

//! Renderings of [`KernelHeat`] profiles: a text heat table, a collapsed-
//! stack flamegraph export, and a self-contained SVG heat strip.
//!
//! All three are pure functions of the artifact data — rendering a saved
//! `results/heat/*.json` reproduces the run's view exactly.

use crate::{BlockHeat, KernelHeat};
use std::fmt::Write as _;

/// The top-`k` hottest blocks of `heat` (by samples, then retired), as an
/// aligned text table joining dynamic hotness with static loop context.
pub fn render_text(heat: &KernelHeat, k: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} — {} retired, {} samples @ period {}",
        heat.kernel, heat.retired, heat.samples, heat.period
    );
    let _ = writeln!(
        out,
        "  branches {} taken / {} not taken; memory {} B read / {} B written",
        heat.taken_branches, heat.not_taken_branches, heat.mem_read_bytes, heat.mem_write_bytes
    );
    let mut blocks: Vec<&BlockHeat> = heat.blocks.iter().collect();
    blocks.sort_by(|a, b| {
        b.samples.cmp(&a.samples).then(b.retired.cmp(&a.retired)).then(a.pc.cmp(&b.pc))
    });
    let _ = writeln!(
        out,
        "  {:>10}  {:>6}  {:>9}  {:>8}  {:>7}  {:>5}  mix",
        "block", "share", "retired", "hits", "samples", "depth"
    );
    for b in blocks.iter().take(k) {
        let mut mix: Vec<(&String, &usize)> = b.static_mix.iter().collect();
        mix.sort_by(|x, y| y.1.cmp(x.1).then(x.0.cmp(y.0)));
        let mix: Vec<String> = mix.iter().map(|(c, n)| format!("{c}:{n}")).collect();
        let _ = writeln!(
            out,
            "  {:#10x}  {:>5.1}%  {:>9}  {:>8}  {:>7}  {:>5}  {}",
            b.pc,
            b.share * 100.0,
            b.retired,
            b.hits,
            b.samples,
            b.loop_depth,
            mix.join(" ")
        );
    }
    out
}

/// Collapsed-stack flamegraph lines for standard flamegraph tooling: one
/// line per sampled block, `kernel;loop@0xH;...;block@0xPC count`, with
/// the loop-nest chain (outermost-first) as the stack.
pub fn collapsed_stacks(heats: &[KernelHeat]) -> String {
    let mut out = String::new();
    for heat in heats {
        for b in &heat.blocks {
            if b.samples == 0 {
                continue;
            }
            let mut frames = vec![heat.kernel.clone()];
            frames.extend(b.loop_chain.iter().map(|h| format!("loop@{h:#x}")));
            frames.push(format!("block@{:#x}", b.pc));
            let _ = writeln!(out, "{} {}", frames.join(";"), b.samples);
        }
    }
    out
}

/// Linear red-yellow heat color for a share in `[0, 1]`.
fn heat_color(share: f64) -> String {
    let s = share.clamp(0.0, 1.0);
    let g = (230.0 - 180.0 * s) as u32;
    format!("#e6{g:02x}32")
}

/// A self-contained SVG heat strip: one row per kernel, each block drawn
/// with width proportional to its share of the kernel's retired
/// instructions and color intensity by that share. Every block carries a
/// `<title>` tooltip with its pc, share, and loop depth.
pub fn render_svg(heats: &[KernelHeat]) -> String {
    const WIDTH: f64 = 860.0;
    const LABEL: f64 = 220.0;
    const ROW: f64 = 18.0;
    const PAD: f64 = 2.0;
    let height = 24.0 + heats.len() as f64 * ROW;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">"
    );
    let _ = writeln!(
        out,
        "  <text x=\"4\" y=\"14\">block-level heat by share of retired instructions</text>"
    );
    for (row, heat) in heats.iter().enumerate() {
        let y = 24.0 + row as f64 * ROW;
        let _ = writeln!(
            out,
            "  <text x=\"4\" y=\"{:.1}\">{}</text>",
            y + ROW - 6.0,
            xml_escape(&heat.kernel)
        );
        let mut x = LABEL;
        let span = WIDTH - LABEL - 4.0;
        for b in &heat.blocks {
            let w = (b.share * span).max(0.5);
            let _ = writeln!(
                out,
                "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"{}\"><title>{} block {:#x}: {:.1}% retired, {} samples, \
                 loop depth {}</title></rect>",
                x,
                y + PAD,
                w,
                ROW - 2.0 * PAD,
                heat_color(b.share),
                xml_escape(&heat.kernel),
                b.pc,
                b.share * 100.0,
                b.samples,
                b.loop_depth
            );
            x += w;
        }
    }
    let _ = writeln!(out, "</svg>");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn heat() -> KernelHeat {
        KernelHeat {
            kernel: "suite/prog/in".to_string(),
            period: 100,
            retired: 1000,
            samples: 10,
            taken_branches: 90,
            not_taken_branches: 10,
            mem_read_bytes: 512,
            mem_write_bytes: 256,
            class_counts: BTreeMap::from([("IntAlu".to_string(), 1000)]),
            blocks: vec![
                BlockHeat {
                    pc: 0x1_0000,
                    first_idx: 0,
                    insts: 3,
                    hits: 1,
                    retired: 100,
                    samples: 0,
                    share: 0.1,
                    loop_depth: 0,
                    loop_chain: vec![],
                    static_mix: BTreeMap::from([("IntAlu".to_string(), 3)]),
                },
                BlockHeat {
                    pc: 0x1_000c,
                    first_idx: 3,
                    insts: 5,
                    hits: 180,
                    retired: 900,
                    samples: 10,
                    share: 0.9,
                    loop_depth: 2,
                    loop_chain: vec![0x1_0004, 0x1_000c],
                    static_mix: BTreeMap::from([("IntAlu".to_string(), 5)]),
                },
            ],
        }
    }

    #[test]
    fn text_orders_by_samples_and_joins_static_context() {
        let text = render_text(&heat(), 10);
        let hot = text.find("0x1000c").expect("hot block listed");
        let cold = text.find("0x10000").expect("cold block listed");
        assert!(hot < cold, "hottest first");
        assert!(text.contains("90.0%"));
        assert!(text.contains("IntAlu:5"));
    }

    #[test]
    fn collapsed_stacks_use_the_loop_chain() {
        let lines = collapsed_stacks(&[heat()]);
        assert_eq!(
            lines.trim(),
            "suite/prog/in;loop@0x10004;loop@0x1000c;block@0x1000c 10",
            "only the sampled block appears, under its loop nest"
        );
    }

    #[test]
    fn svg_is_well_formed_and_scales_by_share() {
        let svg = render_svg(&[heat()]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 2);
        assert!(svg.contains("loop depth 2"));
    }
}

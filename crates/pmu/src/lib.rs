//! A simulated performance-monitoring unit for tinyisa.
//!
//! The [`Pmu`] is a [`TraceSink`]: it rides the same `retire_block` batch
//! path as every analyzer, so attaching it to a run adds one more fan-out
//! leg, not a second execution. It maintains the programmable event
//! counters a hardware PMU would — retired instructions by
//! [`InstClass`], taken/not-taken conditional branches, memory bytes read
//! and written — plus per-basic-block hit and retire counts, and a
//! **deterministic sampling profiler**: every `period` retired
//! instructions (a countdown, not a timer) the instruction that tripped
//! the counter is attributed pc → block → loop through the
//! [`mica_verify`] dominator/loop machinery.
//!
//! # Determinism contract
//!
//! Everything the PMU counts is a pure function of the retired-instruction
//! sequence and the period. The countdown carries across batch boundaries
//! and [`Pmu::retire`] is literally `retire_block` of a one-instruction
//! slice, so per-instruction (`MICA_BACKEND=ref`) and batched
//! (`MICA_BACKEND=batch`) delivery produce bit-identical [`KernelHeat`],
//! for any batch partition and any thread count. Wall clocks, thread ids,
//! and allocation state never enter the data.
//!
//! # Gating
//!
//! `MICA_PMU` gates collection with the same fast-path contract as the
//! observability layer: when the flag is off, [`PmuConfig::from_env`] is a
//! cached atomic load returning `None` and no PMU is ever constructed —
//! the profiling hot loop is byte-for-byte the non-PMU code path.
//! `MICA_PMU_PERIOD` programs the sampling period (default
//! [`DEFAULT_PERIOD`]); an unparseable or zero period panics up front,
//! like a bad `MICA_BACKEND`.

use mica_obs::{self as obs, EnvFlag};
use mica_verify::{Cfg, DomTree, LoopForest};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tinyisa::{DynInst, InstClass, Program, TraceSink, INST_BYTES};

mod render;

pub use render::{collapsed_stacks, render_svg, render_text};

/// The `MICA_PMU` gate (on = any non-empty value other than `0`).
static PMU_FLAG: EnvFlag = EnvFlag::new("MICA_PMU");

/// Default sampling period: a prime, so the sample stream does not phase-
/// lock with power-of-two loop trip counts, small enough that even the
/// 10 000-instruction CI-scale budget yields a handful of samples per
/// kernel.
pub const DEFAULT_PERIOD: u64 = 1009;

/// Samples taken across all kernels (merged into run summaries).
static SAMPLES: obs::Counter = obs::Counter::new("pmu.samples");
/// Kernels that produced a heat profile.
static KERNELS: obs::Counter = obs::Counter::new("pmu.kernels");
/// Instructions the PMU observed.
static RETIRED: obs::Counter = obs::Counter::new("pmu.retired");

/// The `MICA_PMU` flag, exposed so tests can [`EnvFlag::force`] a state
/// instead of racing on `set_var`.
pub fn env_flag() -> &'static EnvFlag {
    &PMU_FLAG
}

/// How to run the PMU: for now, just the sampling period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmuConfig {
    /// Sample every `period` retired instructions. Always ≥ 1.
    pub period: u64,
}

impl PmuConfig {
    /// A config with the given period.
    ///
    /// # Panics
    ///
    /// Panics on a zero period — the countdown would never fire.
    pub fn new(period: u64) -> PmuConfig {
        assert!(period > 0, "PMU sampling period must be positive");
        PmuConfig { period }
    }

    /// Read `MICA_PMU` / `MICA_PMU_PERIOD`: `None` when the PMU is off
    /// (one atomic load after the first call), otherwise the configured
    /// period.
    ///
    /// # Panics
    ///
    /// Panics when `MICA_PMU_PERIOD` is set but not a positive integer —
    /// loudly, before any work, like an unrecognized `MICA_BACKEND`.
    pub fn from_env() -> Option<PmuConfig> {
        if !PMU_FLAG.enabled() {
            return None;
        }
        let period = match std::env::var("MICA_PMU_PERIOD") {
            Err(_) => DEFAULT_PERIOD,
            Ok(v) => match v.parse::<u64>() {
                Ok(p) if p > 0 => p,
                _ => panic!("MICA_PMU_PERIOD must be a positive integer, got {v:?}"),
            },
        };
        Some(PmuConfig { period })
    }
}

/// Dynamic heat of one basic block, joined with its static context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockHeat {
    /// Byte address of the block's first instruction.
    pub pc: u64,
    /// Instruction index of the block's first instruction.
    pub first_idx: usize,
    /// Static instruction count of the block.
    pub insts: usize,
    /// Dynamic entries into the block (control transfers in, plus
    /// straight-line crossings of the leader).
    pub hits: u64,
    /// Dynamic instructions retired inside the block.
    pub retired: u64,
    /// Samples attributed to the block.
    pub samples: u64,
    /// `retired / kernel total` — the block's share of the kernel's
    /// dynamic instructions.
    pub share: f64,
    /// Loop nesting depth of the block (0 = outside every loop), from the
    /// static loop forest.
    pub loop_depth: usize,
    /// Header pcs of the loops containing this block, outermost-first —
    /// the flamegraph stack.
    pub loop_chain: Vec<u64>,
    /// Static class mix of the block's instructions, keyed by
    /// [`InstClass::name`] (the same keys as the `--static` report).
    pub static_mix: BTreeMap<String, usize>,
}

/// One kernel's complete PMU readout: event counters plus the block-level
/// heat map. This is the schema of `results/heat/<kernel>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelHeat {
    /// `suite/program/input` identifier.
    pub kernel: String,
    /// Sampling period the profile was collected at.
    pub period: u64,
    /// Total retired instructions observed.
    pub retired: u64,
    /// Total samples taken (`retired / period`, rounded down).
    pub samples: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
    /// Not-taken conditional branches.
    pub not_taken_branches: u64,
    /// Bytes read by loads.
    pub mem_read_bytes: u64,
    /// Bytes written by stores.
    pub mem_write_bytes: u64,
    /// Retired instructions by class, keyed by [`InstClass::name`].
    /// Classes that never retired are omitted.
    pub class_counts: BTreeMap<String, u64>,
    /// Heat of every block that retired at least one instruction, in text
    /// order.
    pub blocks: Vec<BlockHeat>,
}

impl KernelHeat {
    /// Serialize as the pretty JSON artifact shape.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("KernelHeat serializes")
    }

    /// Parse a heat artifact.
    ///
    /// # Errors
    ///
    /// Returns the parse error text when `text` is not a `KernelHeat`.
    pub fn from_json(text: &str) -> Result<KernelHeat, String> {
        serde_json::from_str(text).map_err(|e| format!("{e:?}"))
    }

    /// Filesystem-safe stem for a kernel's artifact file:
    /// `MiBench/CRC32/pcm` → `MiBench_CRC32_pcm`.
    pub fn file_stem(kernel: &str) -> String {
        kernel
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect()
    }

    /// The block with the most samples (ties to the most retired, then the
    /// lowest pc), if any instruction retired.
    pub fn hottest(&self) -> Option<&BlockHeat> {
        self.blocks
            .iter()
            .max_by(|a, b| {
                a.samples
                    .cmp(&b.samples)
                    .then(a.retired.cmp(&b.retired))
                    .then(b.pc.cmp(&a.pc))
            })
    }
}

/// The simulated PMU: one per kernel run, attached as an extra
/// [`TraceSink`] leg.
#[derive(Debug, Clone)]
pub struct Pmu {
    base: u64,
    period: u64,
    countdown: u64,
    /// Whether any instruction has retired yet (the first one always
    /// counts as a block entry).
    started: bool,
    /// Whether the previously retired instruction was a control transfer
    /// (every control transfer ends a dynamic block, taken or not).
    prev_ctrl: bool,
    prev_block: u32,
    /// `block_of[i]` = CFG block index of instruction `i`.
    block_of: Vec<u32>,
    /// Static class of every instruction, for the per-block mix.
    classes: Vec<InstClass>,
    /// Per-block static geometry: first instruction index and length.
    block_first: Vec<u32>,
    block_len: Vec<u32>,
    /// Per-block static loop context.
    loop_depth: Vec<u32>,
    loop_chain_pcs: Vec<Vec<u64>>,
    /// Per-block dynamic counters.
    hits: Vec<u64>,
    block_retired: Vec<u64>,
    block_samples: Vec<u64>,
    /// Event counters.
    class_counts: [u64; InstClass::ALL.len()],
    taken: u64,
    not_taken: u64,
    mem_read_bytes: u64,
    mem_write_bytes: u64,
    retired: u64,
    samples: u64,
}

impl Pmu {
    /// Program a PMU for `prog` at the given sampling period: builds the
    /// CFG, dominator tree, and loop forest once, up front, so delivery
    /// never touches the static machinery.
    pub fn new(prog: &Program, config: PmuConfig) -> Pmu {
        let cfg = Cfg::build(prog);
        let dom = DomTree::compute(&cfg);
        let loops = LoopForest::compute(&cfg, &dom);
        let nb = cfg.blocks().len();
        let n = prog.insts().len();
        let block_of: Vec<u32> = (0..n).map(|i| cfg.block_of(i) as u32).collect();
        let mut block_first = Vec::with_capacity(nb);
        let mut block_len = Vec::with_capacity(nb);
        let mut loop_depth = Vec::with_capacity(nb);
        let mut loop_chain_pcs = Vec::with_capacity(nb);
        for (b, blk) in cfg.blocks().iter().enumerate() {
            block_first.push(blk.start as u32);
            block_len.push((blk.end - blk.start) as u32);
            loop_depth.push(loops.depth_of(b) as u32);
            loop_chain_pcs.push(
                loops
                    .chain_headers(b)
                    .into_iter()
                    .map(|h| prog.pc_of(cfg.blocks()[h].start))
                    .collect(),
            );
        }
        Pmu {
            base: prog.base(),
            period: config.period,
            countdown: config.period,
            started: false,
            prev_ctrl: false,
            prev_block: 0,
            block_of,
            classes: prog.insts().iter().map(|op| op.class()).collect(),
            block_first,
            block_len,
            loop_depth,
            loop_chain_pcs,
            hits: vec![0; nb],
            block_retired: vec![0; nb],
            block_samples: vec![0; nb],
            class_counts: [0; InstClass::ALL.len()],
            taken: 0,
            not_taken: 0,
            mem_read_bytes: 0,
            mem_write_bytes: 0,
            retired: 0,
            samples: 0,
        }
    }

    /// Total retired instructions observed so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Total samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Close the profile: bump the global `pmu.*` counters and produce the
    /// artifact for `kernel`.
    pub fn finish(&self, kernel: &str) -> KernelHeat {
        KERNELS.incr();
        SAMPLES.add(self.samples);
        RETIRED.add(self.retired);
        let total = self.retired;
        let mut blocks = Vec::new();
        for (b, &retired) in self.block_retired.iter().enumerate() {
            if retired == 0 {
                continue;
            }
            let first = self.block_first[b] as usize;
            let len = self.block_len[b] as usize;
            let mut static_mix = BTreeMap::new();
            for c in &self.classes[first..first + len] {
                *static_mix.entry(c.name().to_string()).or_insert(0) += 1;
            }
            blocks.push(BlockHeat {
                pc: self.base + first as u64 * INST_BYTES,
                first_idx: first,
                insts: len,
                hits: self.hits[b],
                retired,
                samples: self.block_samples[b],
                share: retired as f64 / total as f64,
                loop_depth: self.loop_depth[b] as usize,
                loop_chain: self.loop_chain_pcs[b].clone(),
                static_mix,
            });
        }
        let mut class_counts = BTreeMap::new();
        for (i, &n) in self.class_counts.iter().enumerate() {
            if n > 0 {
                class_counts.insert(InstClass::ALL[i].name().to_string(), n);
            }
        }
        KernelHeat {
            kernel: kernel.to_string(),
            period: self.period,
            retired: self.retired,
            samples: self.samples,
            taken_branches: self.taken,
            not_taken_branches: self.not_taken,
            mem_read_bytes: self.mem_read_bytes,
            mem_write_bytes: self.mem_write_bytes,
            class_counts,
            blocks,
        }
    }
}

impl TraceSink for Pmu {
    fn retire(&mut self, inst: &DynInst) {
        // Identical to batched delivery by construction: the reference
        // tier is the batch tier at block size one.
        self.retire_block(std::slice::from_ref(inst));
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Scalar event counters accumulate in locals and land on the
        // struct once per batch; per-block vectors are indexed directly.
        let mut class = [0u64; InstClass::ALL.len()];
        let (mut taken, mut not_taken) = (0u64, 0u64);
        let (mut read_b, mut write_b) = (0u64, 0u64);
        let mut samples = 0u64;
        for inst in block {
            let idx = ((inst.pc - self.base) / INST_BYTES) as usize;
            let b = self.block_of[idx] as usize;
            // A dynamic block entry: the first instruction ever, any
            // instruction after a control transfer (taken or not), or a
            // straight-line crossing into a new leader.
            if !self.started || self.prev_ctrl || b as u32 != self.prev_block {
                self.hits[b] += 1;
            }
            self.started = true;
            self.prev_block = b as u32;
            self.prev_ctrl = inst.ctrl.is_some();
            self.block_retired[b] += 1;
            class[inst.class.index()] += 1;
            if let Some(c) = inst.ctrl {
                if c.conditional {
                    if c.taken {
                        taken += 1;
                    } else {
                        not_taken += 1;
                    }
                }
            }
            if let Some(m) = inst.mem {
                if m.is_store {
                    write_b += m.size;
                } else {
                    read_b += m.size;
                }
            }
            // The sampling countdown: carries across batches, so the
            // sample positions are a pure function of the retired stream.
            self.countdown -= 1;
            if self.countdown == 0 {
                self.block_samples[b] += 1;
                samples += 1;
                self.countdown = self.period;
            }
        }
        for (acc, n) in self.class_counts.iter_mut().zip(class) {
            *acc += n;
        }
        self.taken += taken;
        self.not_taken += not_taken;
        self.mem_read_bytes += read_b;
        self.mem_write_bytes += write_b;
        self.retired += block.len() as u64;
        self.samples += samples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm, TraceRecorder, Vm};

    /// A two-level loop nest: outer 8 iterations, inner 8 each, with a
    /// load+store pair in the inner body.
    fn nest_program() -> Program {
        let mut a = Asm::new();
        let (outer, inner) = (a.label(), a.label());
        a.li(T0, 0);
        a.li(T3, 0x2_0000);
        a.bind(outer);
        a.li(T1, 0);
        a.bind(inner);
        a.ld8(T2, T3, 0);
        a.addi(T2, T2, 1);
        a.st8(T2, T3, 0);
        a.addi(T1, T1, 1);
        a.slti(T2, T1, 8);
        a.bne(T2, ZERO, inner);
        a.addi(T0, T0, 1);
        a.slti(T2, T0, 8);
        a.bne(T2, ZERO, outer);
        a.halt();
        a.assemble().expect("nest assembles")
    }

    fn run_pmu(prog: &Program, budget: u64, period: u64) -> KernelHeat {
        let mut vm = Vm::new(prog.clone());
        let mut pmu = Pmu::new(prog, PmuConfig::new(period));
        vm.run(&mut pmu, budget).expect("runs");
        pmu.finish("test/nest/1")
    }

    #[test]
    fn counters_match_hand_counts_on_the_nest() {
        let prog = nest_program();
        let heat = run_pmu(&prog, 10_000, 97);
        // The program halts: 2 (preamble) + 8×(1 + 8×6 + 3) + 1 insts.
        let expect_retired = 2 + 8 * (1 + 8 * 6 + 3) + 1;
        assert_eq!(heat.retired, expect_retired);
        assert_eq!(heat.samples, expect_retired / 97);
        // Branches: inner bne 8×8 (7 taken + 1 not each inner run), outer
        // bne 8 (7 taken, 1 not).
        assert_eq!(heat.taken_branches, 8 * 7 + 7);
        assert_eq!(heat.not_taken_branches, 8 + 1);
        // One 8-byte load and one 8-byte store per inner iteration.
        assert_eq!(heat.mem_read_bytes, 8 * 64);
        assert_eq!(heat.mem_write_bytes, 8 * 64);
        assert_eq!(heat.class_counts["Load"], 64);
        assert_eq!(heat.class_counts["Store"], 64);
        // The share over reported blocks covers every retired instruction.
        let share: f64 = heat.blocks.iter().map(|b| b.share).sum();
        assert!((share - 1.0).abs() < 1e-12, "shares sum to 1, got {share}");
        let retired: u64 = heat.blocks.iter().map(|b| b.retired).sum();
        assert_eq!(retired, heat.retired);
        // The hottest block is the inner loop body at depth 2, and its
        // flamegraph chain is outer-then-inner.
        let hot = heat.hottest().expect("has blocks");
        assert_eq!(hot.loop_depth, 2);
        assert_eq!(hot.loop_chain.len(), 2);
        assert_eq!(hot.hits, 64, "inner body entered once per inner iteration");
        // Sample conservation.
        let samples: u64 = heat.blocks.iter().map(|b| b.samples).sum();
        assert_eq!(samples, heat.samples);
    }

    #[test]
    fn heat_is_partition_independent() {
        let prog = nest_program();
        let mut rec = TraceRecorder::new();
        let mut vm = Vm::new(prog.clone());
        vm.run(&mut rec, 10_000).expect("runs");
        let trace = rec.into_trace();

        let mut reference = Pmu::new(&prog, PmuConfig::new(13));
        trace.replay(&mut reference);
        let ref_heat = reference.finish("k");
        for block_size in [1usize, 2, 3, 7, 64, 256, usize::MAX] {
            let mut pmu = Pmu::new(&prog, PmuConfig::new(13));
            trace.replay_blocks(&mut pmu, block_size);
            assert_eq!(pmu.finish("k"), ref_heat, "block size {block_size}");
        }
        // And live batched delivery equals the replayed reference.
        let live = run_pmu(&prog, 10_000, 13);
        assert_eq!(live.retired, ref_heat.retired);
        assert_eq!(live.blocks, ref_heat.blocks);
    }

    #[test]
    fn self_loop_reentries_count_as_hits() {
        // A one-block self-loop: every iteration re-enters the block even
        // though the block index never changes.
        let mut a = Asm::new();
        let spin = a.label();
        a.li(T0, 0);
        a.bind(spin);
        a.addi(T0, T0, 1);
        a.slti(T1, T0, 100);
        a.bne(T1, ZERO, spin);
        a.halt();
        let prog = a.assemble().expect("assembles");
        let heat = run_pmu(&prog, 10_000, DEFAULT_PERIOD);
        let spin_block =
            heat.blocks.iter().find(|b| b.loop_depth == 1).expect("loop block");
        assert_eq!(spin_block.hits, 100, "each taken back edge re-enters");
    }

    #[test]
    fn artifact_round_trips_and_stems_are_safe() {
        let heat = run_pmu(&nest_program(), 10_000, 1009);
        let parsed = KernelHeat::from_json(&heat.to_json()).expect("parses");
        assert_eq!(parsed, heat);
        assert_eq!(KernelHeat::file_stem("MiBench/CRC32/pcm"), "MiBench_CRC32_pcm");
        assert_eq!(KernelHeat::file_stem("a b:c"), "a_b_c");
    }

    #[test]
    fn zoo_kernel_produces_a_plausible_profile() {
        let spec = mica_workloads::benchmark_table()
            .into_iter()
            .find(|s| s.program == "CRC32")
            .expect("CRC32 exists");
        let mut vm = spec.build_vm().expect("assembles");
        let mut pmu = Pmu::new(vm.program(), PmuConfig::new(DEFAULT_PERIOD));
        vm.run(&mut pmu, 10_000).expect("runs");
        let heat = pmu.finish(&spec.name());
        assert_eq!(heat.retired, 10_000);
        assert_eq!(heat.samples, 10_000 / DEFAULT_PERIOD);
        assert!(!heat.blocks.is_empty());
        assert!(heat.hottest().expect("hot block").loop_depth >= 1, "hot code is in a loop");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_is_rejected() {
        let _ = PmuConfig::new(0);
    }
}

//! Dynamic refutation of the abstract interpretation over the full
//! 122-kernel zoo.
//!
//! For every benchmark, build the complete [`Analysis`] (dominators,
//! loops, liveness, intervals, indirect refinement) and then single-step
//! the kernel under [`check_execution`], which asserts on every retired
//! instruction that
//!
//! - the claimed per-instruction abstract state contains the concrete
//!   register file (interval containment, bit-exact FP constants),
//! - every dynamically-read register is statically live at the read,
//! - every dynamic control-flow edge exists in the refined CFG, and
//! - loops are only entered through their headers.
//!
//! One refuted claim anywhere fails the gate: the interpreter's transfer
//! functions must track [`tinyisa::Vm`] semantics exactly. The analysis is
//! built with the default config (no entry registers), which matches the
//! workload harness: `Vm::new` zeroes the register file and the kernels
//! materialize every input with `li`/`fli`.

use mica_par::par_map;
use mica_verify::{check_execution, Analysis, VerifyConfig};
use mica_workloads::benchmark_table;

/// Retired instructions per kernel: single-stepping with containment
/// checks on all 63 registers is ~50x slower than the plain CFG soundness
/// sweep, so this is smaller than that test's fuel but still clears every
/// kernel's init preamble and several steady-state loop iterations.
const FUEL: u64 = 24_000;

#[test]
fn abstract_interpretation_survives_the_zoo() {
    let specs = benchmark_table();
    let config = VerifyConfig::default();
    let outcomes = par_map(&specs, |spec| {
        let vm = spec.build_vm().unwrap_or_else(|e| {
            panic!("{}: kernel failed to assemble: {e}", spec.name());
        });
        let prog = vm.program().clone();
        let analysis = Analysis::build(&prog, &config);
        let mut vm = vm;
        let report = check_execution(&prog, &analysis, &mut vm, FUEL);
        (spec.name(), report)
    });

    assert_eq!(outcomes.len(), mica_workloads::NUM_BENCHMARKS);
    let mut failures = Vec::new();
    for (name, report) in &outcomes {
        for v in &report.violations {
            failures.push(format!(
                "{name}: step {} inst {} pc {:#x}: {}",
                v.step, v.idx, v.pc, v.message
            ));
        }
        // The zoo kernels are endless and fault-free: a VmError here means
        // either a kernel regression or a harness bug, so surface it.
        if let Some(e) = &report.vm_error {
            failures.push(format!("{name}: vm fault during soundness run: {e:?}"));
        }
        assert!(report.steps > 0, "{name}: no instructions retired");
    }
    assert!(
        failures.is_empty(),
        "{} refuted static claim(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

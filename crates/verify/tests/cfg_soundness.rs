//! Soundness of the static model against real executions.
//!
//! For every benchmark in the 122-kernel table, run the VM with a
//! [`TraceSink`] that checks each retired instruction against the static
//! analyses as it streams by:
//!
//! - **CFG edge soundness**: every dynamic control-flow edge (each
//!   consecutive pair of retired instructions) must exist in the static
//!   CFG — within a block only as the `i -> i+1` fall-through, across
//!   blocks only along a recorded successor edge landing on the target
//!   block's leader. The CFG may over-approximate (conservative indirect
//!   pool), but must never miss an edge the machine actually takes.
//! - **Def/use model soundness**: the `DynInst` dst/srcs the VM reports
//!   must equal [`Op::def`] / [`Op::uses`] — the static operand model the
//!   dataflow lints are built on.

use mica_par::par_map;
use mica_verify::Cfg;
use mica_workloads::benchmark_table;
use tinyisa::{DynInst, Op, Program, TraceSink, INST_BYTES};

/// Retired instructions to execute per kernel: enough to leave the init
/// preamble and run several steady-state iterations of every loop nest.
const FUEL: u64 = 60_000;

/// Cap on recorded violations per kernel, so a broken model fails with a
/// readable message instead of a gigabyte of assertions.
const MAX_VIOLATIONS: usize = 5;

struct SoundnessChecker<'a> {
    prog: &'a Program,
    cfg: &'a Cfg,
    prev_idx: Option<usize>,
    edges_checked: u64,
    violations: Vec<String>,
}

impl<'a> SoundnessChecker<'a> {
    fn new(prog: &'a Program, cfg: &'a Cfg) -> Self {
        SoundnessChecker { prog, cfg, prev_idx: None, edges_checked: 0, violations: Vec::new() }
    }

    fn flag(&mut self, msg: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(msg);
        }
    }

    fn check_operands(&mut self, idx: usize, op: &Op, inst: &DynInst) {
        if inst.dst != op.def() {
            self.flag(format!(
                "inst {idx} ({op:?}): dynamic dst {:?} != static def {:?}",
                inst.dst,
                op.def()
            ));
        }
        if inst.srcs != op.uses() {
            self.flag(format!(
                "inst {idx} ({op:?}): dynamic srcs {:?} != static uses {:?}",
                inst.srcs,
                op.uses()
            ));
        }
    }

    fn check_edge(&mut self, prev: usize, cur: usize) {
        let pb = self.cfg.block_of(prev);
        let cb = self.cfg.block_of(cur);
        self.edges_checked += 1;
        if self.cfg.blocks()[pb].last() != prev {
            // Mid-block: the only legal successor is the next instruction
            // of the same block.
            if cur != prev + 1 || cb != pb {
                self.flag(format!("mid-block inst {prev} retired, then {cur} (not {prev}+1)"));
            }
        } else {
            // Block terminator: must follow a static edge, and can only
            // enter the successor at its leader.
            if !self.cfg.has_edge(pb, cb) {
                self.flag(format!(
                    "dynamic edge inst {prev} -> inst {cur} (block {pb} -> {cb}) missing \
                     from the static CFG"
                ));
            } else if self.cfg.blocks()[cb].start != cur {
                self.flag(format!(
                    "block {cb} entered mid-block at inst {cur} (leader is inst {})",
                    self.cfg.blocks()[cb].start
                ));
            }
        }
    }
}

impl TraceSink for SoundnessChecker<'_> {
    fn retire(&mut self, inst: &DynInst) {
        let idx = ((inst.pc - self.prog.base()) / INST_BYTES) as usize;
        let op = self.prog.insts()[idx];
        self.check_operands(idx, &op, inst);
        if let Some(prev) = self.prev_idx {
            self.check_edge(prev, idx);
        }
        self.prev_idx = Some(idx);
    }
}

#[test]
fn every_dynamic_edge_exists_in_the_static_cfg() {
    let specs = benchmark_table();
    let results: Vec<(String, u64, Vec<String>)> = par_map(&specs, |spec| {
        let mut vm = spec.build_vm().expect("kernel must assemble");
        let prog = vm.program().clone();
        let cfg = Cfg::build(&prog);
        let mut checker = SoundnessChecker::new(&prog, &cfg);
        // Kernels are endless; FuelExhausted is the expected exit. A VmError
        // (bad pc) would itself be a soundness bug worth failing on.
        vm.run(&mut checker, FUEL)
            .unwrap_or_else(|e| panic!("{}: vm error during soundness run: {e}", spec.name()));
        (spec.name(), checker.edges_checked, checker.violations)
    });

    let mut failures = Vec::new();
    for (name, edges_checked, violations) in &results {
        assert!(
            *edges_checked >= FUEL / 2,
            "{name}: only {edges_checked} edges checked; the run did not exercise the kernel"
        );
        for v in violations {
            failures.push(format!("{name}: {v}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} static-model violation(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

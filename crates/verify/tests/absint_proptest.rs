//! Property testing of the abstract interpreter against adversarial
//! control flow.
//!
//! Random small programs — arbitrary branch targets, so arbitrary CFG
//! shapes including self-loops, nested and irreducible cycles, and
//! unreachable tails — are analyzed with [`Analysis::build`] and then
//! executed under [`check_execution`]. The analysis must terminate
//! (widening) and must never be refuted by the machine: every claimed
//! interval contains the concrete value, every read is statically live,
//! every dynamic edge is in the CFG. A [`VmError`] (e.g. a wild store) is
//! tolerated — the generator does not try to produce well-behaved
//! programs, only *analyzable* ones.
//!
//! Indirect transfers (`jr`/`ret`/`callr`) are deliberately absent from
//! the generator: the CFG's conservative indirect pool only covers
//! `li`-materialized text addresses and call return sites, and a random
//! arithmetic result used as a jump target is exactly the case the static
//! model does not claim to cover.

use mica_verify::{check_execution, Analysis, VerifyConfig};
use proptest::prelude::*;
use tinyisa::{regs::*, Asm, Reg, Vm};

/// Fuel per random program: tiny programs, but backward branches make
/// endless loops likely, so bound the walk.
const FUEL: u64 = 2_000;

/// One generated instruction: an opcode selector, three register fields,
/// and a branch-target selector (resolved modulo the label count).
type RandInst = (usize, u8, u8, u8, usize);

fn emit(a: &mut Asm, inst: RandInst, labels: &[tinyisa::Label]) {
    let (op, d, x, y, t) = inst;
    let (d, x, y) = (Reg(d % 16), Reg(x % 16), Reg(y % 16));
    let target = labels[t % labels.len()];
    match op {
        0 => a.add(d, x, y),
        1 => a.sub(d, x, y),
        2 => a.mul(d, x, y),
        3 => a.div(d, x, y),
        4 => a.rem(d, x, y),
        5 => a.sll(d, x, y),
        6 => a.and(d, x, y),
        // A signed immediate derived from the operand fields, spanning
        // negative, small and large magnitudes.
        7 => a.li(d, ((x.0 as i64) << (y.0 % 48)) - t as i64),
        8 => a.slti(d, x, y.0 as i64 - 8),
        9 => a.beq(x, y, target),
        10 => a.bne(x, y, target),
        11 => a.blt(x, y, target),
        _ => a.jmp(target),
    }
}

fn run_one(seeds: &[u64], body: &[RandInst]) {
    let mut a = Asm::new();
    // Labels: one bound before each body instruction plus one at the
    // final halt, so branches can target any point, forward or backward —
    // self-loops, cross-jumps into loop bodies, the lot.
    let labels: Vec<_> = (0..=body.len()).map(|_| a.label()).collect();
    for (i, &v) in seeds.iter().enumerate() {
        a.li(Reg(i as u8 + 1), v as i64);
    }
    for (i, &inst) in body.iter().enumerate() {
        a.bind(labels[i]);
        emit(&mut a, inst, &labels);
    }
    a.bind(labels[body.len()]);
    a.halt();

    let prog = a.assemble().expect("generated programs always assemble");
    let analysis = Analysis::build(&prog, &VerifyConfig::default());
    let mut vm = Vm::new(prog.clone());
    let report = check_execution(&prog, &analysis, &mut vm, FUEL);
    assert!(
        report.is_sound(),
        "program {body:?} with seeds {seeds:?} refuted the analysis: {:#?}",
        report.violations
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_control_flow_never_refutes_the_analysis(
        seeds in proptest::collection::vec(any::<u64>(), 3),
        body in proptest::collection::vec(
            (0usize..13, 0u8..16, 0u8..16, 0u8..16, 0usize..32),
            6..20,
        ),
    ) {
        run_one(&seeds, &body);
    }

    #[test]
    fn branch_heavy_programs_never_refute_the_analysis(
        seeds in proptest::collection::vec(any::<u64>(), 3),
        // Restricted to branches and jumps: maximizes blocks-per-
        // instruction and the odds of irreducible shapes.
        body in proptest::collection::vec(
            (9usize..13, 0u8..16, 0u8..16, 0u8..16, 0usize..32),
            6..20,
        ),
    ) {
        run_one(&seeds, &body);
    }
}

/// A cycle entered other than through the block that dominates it: the
/// edge `b -> a` below is retreating in RPO but `a` does not dominate `b`
/// (the entry jump lands on `b` directly), so the loop forest records it
/// as irreducible. Widening still has to fire there and the states must
/// stay sound along the dynamically-taken `a <-> b` walk.
#[test]
fn directed_irreducible_cycle_is_sound() {
    let mut a = Asm::new();
    let (la, lb) = (a.label(), a.label());
    a.li(S0, 8);
    a.jmp(lb);
    a.bind(la);
    a.addi(T0, T0, 1);
    a.bind(lb);
    a.addi(T1, T1, 1);
    a.blt(T1, S0, la);
    a.halt();
    let prog = a.assemble().unwrap();
    let analysis = Analysis::build(&prog, &VerifyConfig::default());
    let mut vm = Vm::new(prog.clone());
    let report = check_execution(&prog, &analysis, &mut vm, FUEL);
    assert!(report.is_sound(), "{:#?}", report.violations);
    assert!(report.vm_error.is_none());
    assert!(report.steps > 16, "walked the cycle several times");
}

/// A single-block self-loop: header == latch, the tightest widening site.
#[test]
fn directed_self_loop_is_sound() {
    let mut a = Asm::new();
    let l = a.label();
    a.li(S0, 100);
    a.bind(l);
    a.addi(T0, T0, 3);
    a.blt(T0, S0, l);
    a.halt();
    let prog = a.assemble().unwrap();
    let analysis = Analysis::build(&prog, &VerifyConfig::default());
    let mut vm = Vm::new(prog.clone());
    let report = check_execution(&prog, &analysis, &mut vm, FUEL);
    assert!(report.is_sound(), "{:#?}", report.violations);
    assert!(report.vm_error.is_none());
}

//! Basic-block control-flow graph construction over assembled programs.
//!
//! Direct branch/jump/call targets are read straight from the [`Op`]
//! operands ([`Op::flow`]). Indirect transfers (`jr`, `callr`, `ret`) have
//! no static target; they are modeled conservatively against a shared pool
//! of *plausible indirect targets*:
//!
//! - the return site of every `call`/`callr` (where a `ret` lands), and
//! - every text address materialized by a `li` constant (the only way a
//!   kernel can compute a code pointer without arithmetic).
//!
//! Every pool member becomes a block leader and every indirect transfer
//! gets an edge to every pool member, so the static edge set
//! over-approximates anything the program can do short of *arithmetically*
//! constructing a code address (a case the verifier reports as a
//! [`Lint::IndirectUnresolved`](crate::Lint::IndirectUnresolved) warning
//! rather than silently mismodeling).

use std::collections::BTreeSet;
use tinyisa::{Flow, Op, Program, INST_BYTES};

/// One basic block: the half-open instruction index range `start..end` plus
/// its CFG edges (as block indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Successor blocks, deduplicated, in ascending order.
    pub succs: Vec<usize>,
    /// Predecessor blocks, deduplicated, in ascending order.
    pub preds: Vec<usize>,
    /// True if execution can fall off the end of the text segment from this
    /// block (its last instruction falls through past the last instruction).
    pub falls_off_end: bool,
}

impl Block {
    /// Index of the block's terminator (its last instruction).
    pub fn last(&self) -> usize {
        self.end - 1
    }
}

/// The control-flow graph of a [`Program`].
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// `block_of[i]` is the index of the block containing instruction `i`.
    block_of: Vec<usize>,
    /// The conservative indirect-target pool (instruction indices).
    indirect_targets: Vec<usize>,
    /// Blocks reachable from the entry block, as a bitvec.
    reachable: Vec<bool>,
}

impl Cfg {
    /// Build the CFG of `prog`. Block 0 is the entry block (instruction 0).
    pub fn build(prog: &Program) -> Cfg {
        let insts = prog.insts();
        let n = insts.len();

        // The conservative indirect-target pool: call return sites plus
        // li-materialized text addresses.
        let mut pool: BTreeSet<usize> = BTreeSet::new();
        let text_end = prog.base() + n as u64 * INST_BYTES;
        for (i, op) in insts.iter().enumerate() {
            match op.flow() {
                Flow::Call(_) | Flow::IndirectCall if i + 1 < n => {
                    pool.insert(i + 1);
                }
                _ => {}
            }
            if let Op::Li(_, imm) = *op {
                let v = imm as u64;
                if v >= prog.base() && v < text_end && (v - prog.base()).is_multiple_of(INST_BYTES)
                {
                    pool.insert(((v - prog.base()) / INST_BYTES) as usize);
                }
            }
        }
        let indirect_targets: Vec<usize> = pool.iter().copied().collect();

        // Leaders: entry, direct targets, the instruction after any control
        // transfer, and every indirect-pool member.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (i, op) in insts.iter().enumerate() {
            let flow = op.flow();
            if let Some(t) = flow.direct_target() {
                if t < n {
                    leader[t] = true;
                }
            }
            if flow != Flow::Next && i + 1 < n {
                leader[i + 1] = true;
            }
        }
        for &t in &indirect_targets {
            leader[t] = true;
        }

        // Carve blocks and map instructions to them.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for i in 0..n {
            block_of[i] = blocks.len();
            let is_last = i + 1 == n || leader[i + 1];
            if is_last {
                blocks.push(Block {
                    start,
                    end: i + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                    falls_off_end: false,
                });
                start = i + 1;
            }
        }

        // Wire edges.
        let nb = blocks.len();
        for b in 0..nb {
            let last = blocks[b].last();
            let mut succs: BTreeSet<usize> = BTreeSet::new();
            let flow = insts[last].flow();
            match flow {
                Flow::Next | Flow::Branch(_) => {
                    if let Flow::Branch(t) = flow {
                        succs.insert(block_of[t]);
                    }
                    if last + 1 < n {
                        succs.insert(block_of[last + 1]);
                    } else {
                        blocks[b].falls_off_end = true;
                    }
                }
                Flow::Jump(t) | Flow::Call(t) => {
                    // A call's fall-through is its *return site*: control
                    // reaches it through the callee's `ret`, not from here.
                    succs.insert(block_of[t]);
                }
                Flow::IndirectJump | Flow::IndirectCall | Flow::Ret => {
                    for &t in &indirect_targets {
                        succs.insert(block_of[t]);
                    }
                }
                Flow::Halt => {}
            }
            let succs: Vec<usize> = succs.into_iter().collect();
            for &s in &succs {
                blocks[s].preds.push(b);
            }
            blocks[b].succs = succs;
        }
        for blk in &mut blocks {
            blk.preds.sort_unstable();
            blk.preds.dedup();
        }

        // Reachability from the entry block.
        let mut reachable = vec![false; nb];
        let mut stack = vec![0usize];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &blocks[b].succs {
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push(s);
                }
            }
        }

        Cfg { blocks, block_of, indirect_targets, reachable }
    }

    /// The basic blocks, in text order (block 0 is the entry).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Index of the block containing instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range of the program.
    pub fn block_of(&self, idx: usize) -> usize {
        self.block_of[idx]
    }

    /// True if `block` is reachable from the entry block.
    pub fn is_reachable(&self, block: usize) -> bool {
        self.reachable[block]
    }

    /// The conservative indirect-target pool (instruction indices): call
    /// return sites and li-materialized text addresses.
    pub fn indirect_targets(&self) -> &[usize] {
        &self.indirect_targets
    }

    /// True if the CFG has an edge from the block containing `from` to the
    /// block containing `to` — the check used by the dynamic-edge soundness
    /// property test.
    pub fn has_edge(&self, from_block: usize, to_block: usize) -> bool {
        self.blocks[from_block].succs.binary_search(&to_block).is_ok()
    }

    /// A copy of this CFG with the indirect terminators named in `resolved`
    /// narrowed to a single successor: `resolved` maps a block index (whose
    /// terminator is `jr`/`callr`/`ret`) to the one instruction index its
    /// target register provably holds. Each target must be a block leader —
    /// constant propagation only resolves to addresses, and a non-leader
    /// address would require re-carving blocks. Predecessor lists and
    /// reachability are recomputed; blocks, `block_of`, and the conservative
    /// pool are unchanged.
    pub fn refine_indirect(&self, resolved: &std::collections::BTreeMap<usize, usize>) -> Cfg {
        let mut blocks = self.blocks.clone();
        for (&b, &t) in resolved {
            debug_assert!(self.blocks[self.block_of(t)].start == t, "target must lead a block");
            blocks[b].succs = vec![self.block_of(t)];
        }
        for blk in &mut blocks {
            blk.preds.clear();
        }
        let nb = blocks.len();
        for b in 0..nb {
            let succs = blocks[b].succs.clone();
            for s in succs {
                blocks[s].preds.push(b);
            }
        }
        for blk in &mut blocks {
            blk.preds.sort_unstable();
            blk.preds.dedup();
        }
        let mut reachable = vec![false; nb];
        let mut stack = vec![0usize];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &blocks[b].succs {
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push(s);
                }
            }
        }
        Cfg {
            blocks,
            block_of: self.block_of.clone(),
            indirect_targets: self.indirect_targets.clone(),
            reachable,
        }
    }

    /// True if some reachable block contains a `halt`.
    pub fn reachable_halt(&self, prog: &Program) -> bool {
        self.blocks.iter().enumerate().any(|(i, b)| {
            self.reachable[i] && prog.insts()[b.start..b.end].contains(&Op::Halt)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm};

    fn cfg_of(build: impl FnOnce(&mut Asm)) -> (Program, Cfg) {
        let mut a = Asm::new();
        build(&mut a);
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        (p, cfg)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, cfg) = cfg_of(|a| {
            a.li(T0, 1);
            a.addi(T0, T0, 2);
            a.halt();
        });
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].succs.is_empty());
        assert!(cfg.is_reachable(0));
    }

    #[test]
    fn branch_splits_blocks_and_wires_both_edges() {
        let (_, cfg) = cfg_of(|a| {
            let done = a.label();
            a.li(T0, 1); // b0
            a.beq(T0, ZERO, done);
            a.addi(T0, T0, 1); // b1 (fallthrough)
            a.bind(done);
            a.halt(); // b2
        });
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].succs, vec![1, 2]);
        assert_eq!(cfg.blocks()[1].succs, vec![2]);
        assert_eq!(cfg.blocks()[2].preds, vec![0, 1]);
    }

    #[test]
    fn back_edge_forms_a_loop() {
        let (_, cfg) = cfg_of(|a| {
            let head = a.label();
            a.li(T0, 0); // b0
            a.bind(head);
            a.addi(T0, T0, 1); // b1
            a.slti(T1, T0, 9);
            a.bne(T1, ZERO, head);
            a.halt(); // b2
        });
        assert_eq!(cfg.blocks().len(), 3);
        assert!(cfg.has_edge(1, 1));
        assert!(cfg.has_edge(1, 2));
    }

    #[test]
    fn call_edges_go_to_callee_and_ret_returns_to_return_sites() {
        let (p, cfg) = cfg_of(|a| {
            let (f, after) = (a.label(), a.label());
            a.call(f); // b0: edge to callee only
            a.jmp(after); // b1: the return site
            a.bind(f);
            a.addi(A0, A0, 1); // b2
            a.ret();
            a.bind(after);
            a.halt(); // b3
        });
        let callee = cfg.block_of(2);
        let ret_site = cfg.block_of(1);
        assert_eq!(cfg.blocks()[0].succs, vec![callee]);
        assert!(cfg.has_edge(callee, ret_site), "ret must reach the call return site");
        assert!(cfg.reachable_halt(&p));
        assert_eq!(cfg.indirect_targets(), &[1]);
    }

    #[test]
    fn li_text_constant_joins_the_indirect_pool() {
        let (p, cfg) = cfg_of(|a| {
            a.li(T0, (0x1_0000 + 2 * INST_BYTES) as i64); // address of inst 2
            a.jr(T0);
            a.halt(); // inst 2: indirect target
        });
        assert_eq!(cfg.indirect_targets(), &[2]);
        let jr_block = cfg.block_of(1);
        assert!(cfg.has_edge(jr_block, cfg.block_of(2)));
        assert!(cfg.reachable_halt(&p));
    }

    #[test]
    fn unreachable_code_after_a_jump_is_detected() {
        let (_, cfg) = cfg_of(|a| {
            let end = a.label();
            a.jmp(end); // b0
            a.li(T0, 7); // b1: unreachable
            a.bind(end);
            a.halt(); // b2
        });
        assert!(cfg.is_reachable(0));
        assert!(!cfg.is_reachable(cfg.block_of(1)));
        assert!(cfg.is_reachable(cfg.block_of(2)));
    }

    #[test]
    fn falling_off_the_end_is_flagged() {
        let (_, cfg) = cfg_of(|a| {
            a.li(T0, 1);
            a.addi(T0, T0, 1); // no halt, no jump: runs off text
        });
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].falls_off_end);
    }

    #[test]
    fn refine_indirect_narrows_succs_and_recomputes_reachability() {
        let (_, cfg) = cfg_of(|a| {
            let (f, g, after) = (a.label(), a.label(), a.label());
            a.call(f); // 0: return site is 1
            a.bind(after);
            a.jmp(after); // 1: spin at the return site
            a.bind(f);
            a.ret(); // 2: conservatively reaches every pool member
            a.bind(g);
            a.halt(); // 3: only reachable through the conservative ret edge
            let _ = g;
        });
        let ret_block = cfg.block_of(2);
        assert!(cfg.blocks()[ret_block].succs.len() >= 1);
        let resolved = std::collections::BTreeMap::from([(ret_block, 1usize)]);
        let refined = cfg.refine_indirect(&resolved);
        assert_eq!(refined.blocks()[ret_block].succs, vec![refined.block_of(1)]);
        assert!(refined.blocks()[refined.block_of(1)].preds.contains(&ret_block));
        // Block structure is untouched.
        assert_eq!(refined.blocks().len(), cfg.blocks().len());
    }

    #[test]
    fn endless_kernel_shape_has_no_halt_and_no_fall_off() {
        let (p, cfg) = cfg_of(|a| {
            let outer = a.label();
            a.li(T0, 0);
            a.bind(outer);
            a.addi(T0, T0, 1);
            a.jmp(outer);
        });
        assert!(!cfg.reachable_halt(&p));
        assert!(cfg.blocks().iter().all(|b| !b.falls_off_end));
    }
}

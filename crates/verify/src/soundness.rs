//! Dynamic refutation of the static analysis: single-step a [`Vm`] and
//! assert, on every retired instruction, that
//!
//! 1. the claimed [`AbsState`](crate::AbsState) at the instruction contains
//!    the concrete register file (interval containment for the integer
//!    side, bit-exact equality for FP constants),
//! 2. every register the instruction reads is statically live there,
//! 3. every dynamic control-flow edge exists in the (indirect-refined) CFG,
//!    and
//! 4. entering a natural loop from outside its body goes through its
//!    header.
//!
//! Any miss is a soundness bug in the analysis, not in the program — the
//! harness exists so the abstract interpreter cannot drift from the VM's
//! semantics unnoticed. A [`VmError`] is *not* a violation (the program
//! itself may be broken); it is surfaced in the report for caller policy.

use crate::absint::Analysis;
use tinyisa::{FReg, Program, Reg, RunExit, TraceSink, Vm, VmError};

/// Stop checking after this many violations; one real soundness bug tends
/// to fire on every subsequent step.
const MAX_VIOLATIONS: usize = 16;

/// One refuted static claim.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Retired-instruction count when the claim failed.
    pub step: u64,
    /// Instruction index of the offending site.
    pub idx: usize,
    /// Byte address of the offending site.
    pub pc: u64,
    /// What was claimed and what actually happened.
    pub message: String,
}

/// The outcome of [`check_execution`].
#[derive(Debug, Clone, Default)]
pub struct SoundnessReport {
    /// Instructions retired and checked.
    pub steps: u64,
    /// Cross-block control-flow edges validated against the CFG.
    pub edges_checked: u64,
    /// Refuted claims (empty = the analysis survived this execution).
    pub violations: Vec<Violation>,
    /// VM fault that ended the run early, if any (not itself a violation).
    pub vm_error: Option<VmError>,
}

impl SoundnessReport {
    /// True when no static claim was refuted.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A sink that keeps only whether the single stepped instruction retired.
struct OneStep(Option<tinyisa::DynInst>);

impl TraceSink for OneStep {
    fn retire(&mut self, inst: &tinyisa::DynInst) {
        self.0 = Some(*inst);
    }
}

/// Step `vm` for up to `fuel` retired instructions, refuting `analysis`
/// (which must have been built for `vm`'s program and entry configuration)
/// against the concrete execution. The `vm` should be freshly constructed:
/// the entry-state claim assumes the VM's zeroed register file, modulo the
/// `entry_regs` declared when the analysis was built.
pub fn check_execution(
    prog: &Program,
    analysis: &Analysis,
    vm: &mut Vm,
    fuel: u64,
) -> SoundnessReport {
    let mut report = SoundnessReport::default();
    let cfg = analysis.cfg();
    let insts = prog.insts();

    for _ in 0..fuel {
        if report.violations.len() >= MAX_VIOLATIONS {
            break;
        }
        let idx = vm.next_idx();
        if idx >= insts.len() {
            // About to fall off the end; let the VM report it.
            report.vm_error = vm.run(&mut OneStep(None), 1).err();
            break;
        }
        let pc = prog.pc_of(idx);
        let violate = |report: &mut SoundnessReport, message: String| {
            report.violations.push(Violation { step: report.steps, idx, pc, message });
        };

        // (1) containment: the claimed state holds the concrete one.
        match analysis.inst_state(idx) {
            None => violate(
                &mut report,
                "statically-unreachable instruction is about to execute".to_string(),
            ),
            Some(st) => {
                for r in 1..32u8 {
                    let concrete = vm.reg(Reg(r));
                    if !st.int[r as usize].contains(concrete) {
                        violate(
                            &mut report,
                            format!(
                                "x{r} = {concrete:#x} escapes the claimed interval \
                                 [{}, {}]",
                                st.int[r as usize].lo, st.int[r as usize].hi
                            ),
                        );
                    }
                }
                for f in 0..32u8 {
                    let bits = vm.freg(FReg(f)).to_bits();
                    if !st.fp[f as usize].contains(bits) {
                        violate(
                            &mut report,
                            format!("f{f} = {bits:#x} contradicts the claimed FP constant"),
                        );
                    }
                }
            }
        }

        // Execute exactly this instruction.
        let mut sink = OneStep(None);
        let exit = vm.run(&mut sink, 1);
        let Some(dyn_inst) = sink.0 else {
            report.vm_error = exit.err();
            break;
        };
        report.steps += 1;

        // (2) liveness: every dynamic read is statically live here.
        let live = analysis.liveness().inst_live_in(idx);
        for src in dyn_inst.sources() {
            if !live.contains(src) {
                violate(
                    &mut report,
                    format!("read of a register not statically live: {src:?}"),
                );
            }
        }

        match exit {
            Ok(RunExit::Halted) => break,
            Err(e) => {
                report.vm_error = Some(e);
                break;
            }
            Ok(RunExit::FuelExhausted) => {}
        }

        // (3)+(4): the dynamic edge to the next instruction.
        let next = vm.next_idx();
        if next >= insts.len() {
            continue; // the fall-off fault is caught at the top of the loop
        }
        let from_block = cfg.block_of(idx);
        if next == idx + 1 && cfg.block_of(next) == from_block {
            continue; // intra-block fallthrough
        }
        report.edges_checked += 1;
        let to_block = cfg.block_of(next);
        if idx != cfg.blocks()[from_block].last() {
            violate(&mut report, "control left a block from a non-terminator".to_string());
            continue;
        }
        if cfg.blocks()[to_block].start != next {
            violate(&mut report, "control entered a block past its leader".to_string());
            continue;
        }
        if !cfg.has_edge(from_block, to_block) {
            violate(
                &mut report,
                format!("dynamic edge block {from_block} -> block {to_block} is not in the CFG"),
            );
            continue;
        }
        for lp in analysis.loops().chain(to_block) {
            if !lp.contains(from_block) && to_block != lp.header {
                violate(
                    &mut report,
                    format!(
                        "entered the body of the loop headed at block {} without passing \
                         through its header",
                        lp.header
                    ),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VerifyConfig;
    use tinyisa::{regs::*, Asm};

    fn check(f: impl FnOnce(&mut Asm), fuel: u64) -> SoundnessReport {
        let mut a = Asm::new();
        f(&mut a);
        let prog = a.assemble().unwrap();
        let analysis = Analysis::build(&prog, &VerifyConfig::default());
        let mut vm = Vm::new(prog.clone());
        check_execution(&prog, &analysis, &mut vm, fuel)
    }

    #[test]
    fn straight_line_execution_is_sound() {
        let r = check(
            |a| {
                a.li(T0, 6);
                a.mul(T1, T0, T0);
                a.st8(T1, T0, 2); // addr 8
                a.halt();
            },
            100,
        );
        assert!(r.is_sound(), "{:?}", r.violations);
        assert_eq!(r.steps, 4);
        assert!(r.vm_error.is_none());
    }

    #[test]
    fn loop_with_widened_counter_is_sound() {
        let r = check(
            |a| {
                let head = a.label();
                a.li(T0, 0);
                a.li(S0, 64);
                a.bind(head);
                a.addi(T0, T0, 1);
                a.blt(T0, S0, head);
                a.halt();
            },
            1000,
        );
        assert!(r.is_sound(), "{:?}", r.violations);
        assert!(r.edges_checked >= 63, "every latch traversal is an edge check");
    }

    #[test]
    fn call_ret_and_fp_folding_are_sound() {
        let r = check(
            |a| {
                let (f, after) = (a.label(), a.label());
                a.fli(F0, 1.5);
                a.call(f);
                a.jmp(after);
                a.bind(f);
                a.fadd(F1, F0, F0);
                a.fcvtfi(T0, F1);
                a.st8(T0, ZERO, 16);
                a.ret();
                a.bind(after);
                a.halt();
            },
            100,
        );
        assert!(r.is_sound(), "{:?}", r.violations);
        assert!(r.vm_error.is_none());
    }

    #[test]
    fn vm_fault_is_reported_but_is_not_a_violation() {
        let r = check(
            |a| {
                a.li(T0, 3); // not a text address; jr faults
                a.jr(T0);
            },
            10,
        );
        assert!(r.is_sound(), "{:?}", r.violations);
        assert!(matches!(r.vm_error, Some(VmError::BadPc(3))));
    }

    #[test]
    fn endless_kernel_shape_checks_until_fuel_runs_out() {
        let r = check(
            |a| {
                let (outer, head) = (a.label(), a.label());
                a.li(T0, 0);
                a.bind(outer);
                a.li(T1, 0);
                a.bind(head);
                a.add(T0, T0, T1);
                a.addi(T1, T1, 1);
                a.slti(T2, T1, 8);
                a.bne(T2, ZERO, head);
                a.jmp(outer);
            },
            5000,
        );
        assert!(r.is_sound(), "{:?}", r.violations);
        assert_eq!(r.steps, 5000);
        assert!(r.vm_error.is_none());
    }
}

//! Forward abstract interpretation over the register file: signed
//! intervals for the 32 integer registers (a singleton interval doubles as
//! a must-constant) and a flat IEEE-bits constant domain for the 32 FP
//! registers.
//!
//! Soundness contract (dynamically refuted by the harness in
//! `soundness.rs`): at every reachable instruction, the claimed
//! [`AbsState`] contains the concrete architectural state of any execution
//! that starts from the configured entry state. The entry state itself is
//! exact — [`tinyisa::Vm::new`] zeroes every register — except registers the
//! harness presets (`VerifyConfig::entry_regs`), which start at top.
//!
//! Transfer functions mirror the VM's wrapping semantics: any result that
//! *could* wrap in 64 bits goes straight to top instead of pretending the
//! arithmetic is mathematical. Widening fires at the targets of retreating
//! edges (every CFG cycle contains one, reducible or not), so the fixpoint
//! terminates on arbitrary — including irreducible — graphs.
//!
//! The computed states are spent three ways: value-range lints
//! (out-of-bounds accesses, refuted loop exits), dead-edge refutation via
//! [`branch_outcome`], and tightening the conservative indirect-target pool
//! ([`Analysis::build`] re-resolves `jr`/`callr`/`ret` whose target register
//! is a singleton constant, then re-runs the fixpoint on the smaller graph).

use crate::cfg::Cfg;
use crate::dom::{DomTree, LoopForest};
use crate::liveness::{Liveness, ReachingDefs};
use crate::VerifyConfig;
use std::collections::{BTreeMap, VecDeque};
use tinyisa::{FCmpOp, Op, Program, Reg, RegRef, INST_BYTES};

/// Widen a block's in-state only after it has been updated this many times,
/// so short chains keep exact bounds and only genuine loop growth pays the
/// precision loss.
const WIDEN_AFTER: u32 = 3;

/// Upper bound on indirect-resolution rounds (each round re-runs the
/// fixpoint on a strictly smaller edge set).
const MAX_REFINE_ROUNDS: usize = 4;

/// A signed-interval abstraction of one integer register, over the i64 view
/// of the 64-bit value. A singleton interval is a must-constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntAbs {
    /// Smallest possible value (signed view).
    pub lo: i64,
    /// Largest possible value (signed view).
    pub hi: i64,
}

impl IntAbs {
    /// The unconstrained interval.
    pub const TOP: IntAbs = IntAbs { lo: i64::MIN, hi: i64::MAX };

    /// The singleton interval `[v, v]`.
    pub fn exact(v: i64) -> IntAbs {
        IntAbs { lo: v, hi: v }
    }

    /// The interval `[lo, hi]`; `lo <= hi` must hold.
    pub fn range(lo: i64, hi: i64) -> IntAbs {
        debug_assert!(lo <= hi);
        IntAbs { lo, hi }
    }

    /// The constant value, if this interval is a singleton.
    pub fn singleton(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// True if this is the unconstrained interval.
    pub fn is_top(self) -> bool {
        self == IntAbs::TOP
    }

    /// True if the concrete 64-bit value `v` (signed view) lies inside.
    pub fn contains(self, v: u64) -> bool {
        let s = v as i64;
        self.lo <= s && s <= self.hi
    }

    fn contains_val(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    fn join(self, o: IntAbs) -> IntAbs {
        IntAbs { lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) }
    }

    /// Standard interval widening: any bound that moved jumps to infinity.
    fn widen(self, grown: IntAbs) -> IntAbs {
        IntAbs {
            lo: if grown.lo < self.lo { i64::MIN } else { self.lo },
            hi: if grown.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    fn intersect(self, o: IntAbs) -> Option<IntAbs> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(IntAbs { lo, hi })
    }

    /// The interval as an unsigned range, when it does not straddle the
    /// sign bit (i64 order and u64 order agree within one sign class).
    fn as_unsigned(self) -> Option<(u64, u64)> {
        if self.lo >= 0 || self.hi < 0 {
            Some((self.lo as u64, self.hi as u64))
        } else {
            None
        }
    }
}

/// A flat constant abstraction of one FP register, over raw IEEE-754 bits.
/// Exact bit equality is the only claim — folding uses the very same Rust
/// float operations the VM executes, so the bits match or the value is top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpAbs {
    /// Holds exactly these bits on every path.
    Const(u64),
    /// Unknown.
    Top,
}

impl FpAbs {
    /// The constant value, if known.
    pub fn constant(self) -> Option<f64> {
        match self {
            FpAbs::Const(bits) => Some(f64::from_bits(bits)),
            FpAbs::Top => None,
        }
    }

    /// True if the concrete bit pattern is allowed by this abstraction.
    pub fn contains(self, bits: u64) -> bool {
        match self {
            FpAbs::Const(b) => b == bits,
            FpAbs::Top => true,
        }
    }

    fn join(self, o: FpAbs) -> FpAbs {
        match (self, o) {
            (FpAbs::Const(a), FpAbs::Const(b)) if a == b => FpAbs::Const(a),
            _ => FpAbs::Top,
        }
    }

    fn of(v: f64) -> FpAbs {
        FpAbs::Const(v.to_bits())
    }
}

/// The abstract register file at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// Integer registers (`x0` is pinned to `[0, 0]`).
    pub int: [IntAbs; 32],
    /// FP registers.
    pub fp: [FpAbs; 32],
}

impl AbsState {
    /// The entry state: every register exactly zero (the VM zero-fills),
    /// except harness-preset registers, which are unconstrained.
    pub fn entry(config: &VerifyConfig) -> AbsState {
        let mut st =
            AbsState { int: [IntAbs::exact(0); 32], fp: [FpAbs::of(0.0); 32] };
        for r in &config.entry_regs {
            match r {
                RegRef::Int(i) if *i != 0 => st.int[*i as usize] = IntAbs::TOP,
                RegRef::Int(_) => {}
                RegRef::Fp(i) => st.fp[*i as usize] = FpAbs::Top,
            }
        }
        st
    }

    /// The abstraction of integer register `r` (`x0` reads as exactly 0).
    pub fn read_int(&self, r: Reg) -> IntAbs {
        if r.0 == 0 {
            IntAbs::exact(0)
        } else {
            self.int[r.0 as usize]
        }
    }

    fn set_int(&mut self, r: Reg, v: IntAbs) {
        if r.0 != 0 {
            self.int[r.0 as usize] = v;
        }
    }

    fn join(&self, o: &AbsState) -> AbsState {
        let mut out = self.clone();
        for i in 0..32 {
            out.int[i] = out.int[i].join(o.int[i]);
            out.fp[i] = out.fp[i].join(o.fp[i]);
        }
        out
    }

    fn widen(&self, grown: &AbsState) -> AbsState {
        let mut out = grown.clone();
        for i in 0..32 {
            out.int[i] = self.int[i].widen(grown.int[i]);
            // The FP lattice is flat; the join already capped its height.
        }
        out
    }
}

fn fit(lo: i128, hi: i128) -> IntAbs {
    if lo >= i64::MIN as i128 && hi <= i64::MAX as i128 {
        IntAbs::range(lo as i64, hi as i64)
    } else {
        IntAbs::TOP // 64-bit wrap is possible: give up rather than lie
    }
}

fn add_i(a: IntAbs, b: IntAbs) -> IntAbs {
    fit(a.lo as i128 + b.lo as i128, a.hi as i128 + b.hi as i128)
}

fn sub_i(a: IntAbs, b: IntAbs) -> IntAbs {
    fit(a.lo as i128 - b.hi as i128, a.hi as i128 - b.lo as i128)
}

fn mul_i(a: IntAbs, b: IntAbs) -> IntAbs {
    let c = [
        a.lo as i128 * b.lo as i128,
        a.lo as i128 * b.hi as i128,
        a.hi as i128 * b.lo as i128,
        a.hi as i128 * b.hi as i128,
    ];
    fit(*c.iter().min().unwrap(), *c.iter().max().unwrap())
}

fn mulh_i(a: IntAbs, b: IntAbs) -> IntAbs {
    let (Some((al, ah)), Some((bl, bh))) = (a.as_unsigned(), b.as_unsigned()) else {
        return IntAbs::TOP;
    };
    // Unsigned high-multiply is monotone in both operands.
    let lo = ((al as u128 * bl as u128) >> 64) as u64;
    let hi = ((ah as u128 * bh as u128) >> 64) as u64;
    if hi <= i64::MAX as u64 || lo > i64::MAX as u64 {
        // Both bounds land on the same side of the sign bit, so the i64
        // reinterpretation is still an ordered interval.
        IntAbs::range(lo as i64, hi as i64)
    } else {
        IntAbs::TOP // the range straddles the sign bit
    }
}

fn vm_div(x: i64, y: i64) -> i64 {
    if y == 0 {
        -1 // the VM defines div-by-zero as u64::MAX
    } else {
        x.wrapping_div(y)
    }
}

fn vm_rem(x: i64, y: i64) -> i64 {
    if y == 0 {
        x
    } else {
        x.wrapping_rem(y)
    }
}

fn div_i(a: IntAbs, b: IntAbs) -> IntAbs {
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        return IntAbs::exact(vm_div(x, y));
    }
    if b.contains_val(0) {
        return IntAbs::TOP; // mixes quotients with the div-by-zero -1
    }
    if a.contains_val(i64::MIN) && b.contains_val(-1) {
        return IntAbs::TOP; // MIN / -1 wraps
    }
    // The divisor interval excludes 0, so the extreme quotients are at the
    // operand corners.
    let c = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
    IntAbs::range(*c.iter().min().unwrap(), *c.iter().max().unwrap())
}

fn rem_i(a: IntAbs, b: IntAbs) -> IntAbs {
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        return IntAbs::exact(vm_rem(x, y));
    }
    // |x % y| < max(|y|) and the result keeps the dividend's sign
    // (MIN % -1 wraps to 0, which every branch below contains).
    let maxabs = b.lo.unsigned_abs().max(b.hi.unsigned_abs());
    let m = maxabs.saturating_sub(1).min(i64::MAX as u64) as i64;
    let nonzero = if b.contains_val(0) {
        None // handled by joining with the dividend below
    } else if a.lo >= 0 {
        Some(IntAbs::range(0, a.hi.min(m)))
    } else if a.hi <= 0 {
        Some(IntAbs::range(a.lo.max(-m), 0))
    } else {
        Some(IntAbs::range(a.lo.max(-m), a.hi.min(m)))
    };
    match nonzero {
        Some(r) if !b.contains_val(0) => r,
        Some(r) => r.join(a),
        // Divisor may be zero (rem yields the dividend) or not (bounded by
        // m): the union covers both.
        None => a.join(IntAbs::range(-m, m)),
    }
}

fn and_i(a: IntAbs, b: IntAbs) -> IntAbs {
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        return IntAbs::exact(((x as u64) & (y as u64)) as i64);
    }
    // x & y is unsigned-≤ either operand; a non-negative operand therefore
    // caps the result inside [0, operand.hi].
    let mut out = IntAbs::TOP;
    if a.lo >= 0 {
        out = out.intersect(IntAbs::range(0, a.hi)).unwrap();
    }
    if b.lo >= 0 {
        out = out.intersect(IntAbs::range(0, b.hi)).unwrap();
    }
    out
}

fn or_i(a: IntAbs, b: IntAbs) -> IntAbs {
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        return IntAbs::exact(((x as u64) | (y as u64)) as i64);
    }
    if a.lo >= 0 && b.lo >= 0 {
        // x | y ≥ max(x, y) and x | y ≤ x + y; both stay below 2^63.
        IntAbs::range(a.lo.max(b.lo), a.hi.saturating_add(b.hi))
    } else {
        IntAbs::TOP
    }
}

fn xor_i(a: IntAbs, b: IntAbs) -> IntAbs {
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        return IntAbs::exact(((x as u64) ^ (y as u64)) as i64);
    }
    if a.lo >= 0 && b.lo >= 0 {
        IntAbs::range(0, a.hi.saturating_add(b.hi)) // x ^ y ≤ x | y ≤ x + y
    } else {
        IntAbs::TOP
    }
}

/// The VM masks every shift amount to 6 bits (`wrapping_shl`/`shr`).
fn mask_shift(s: i64) -> u32 {
    (s as u64 & 63) as u32
}

fn sll_i(a: IntAbs, b: IntAbs) -> IntAbs {
    if let Some(s) = b.singleton() {
        let s = mask_shift(s);
        return fit((a.lo as i128) << s, (a.hi as i128) << s);
    }
    if a.singleton() == Some(0) {
        return IntAbs::exact(0);
    }
    IntAbs::TOP
}

fn srl_i(a: IntAbs, b: IntAbs) -> IntAbs {
    if let Some(s) = b.singleton() {
        let s = mask_shift(s);
        if s == 0 {
            return a;
        }
        if let Some((l, h)) = a.as_unsigned() {
            // Unsigned shift-right is monotone; s ≥ 1 keeps it below 2^63.
            return IntAbs::range((l >> s) as i64, (h >> s) as i64);
        }
        return IntAbs::range(0, (u64::MAX >> s) as i64);
    }
    if a.lo >= 0 {
        return IntAbs::range(0, a.hi); // shifting a non-negative only shrinks
    }
    if b.lo >= 1 && b.hi <= 63 {
        return IntAbs::range(0, (u64::MAX >> (b.lo as u32)) as i64);
    }
    IntAbs::TOP
}

fn sra_i(a: IntAbs, b: IntAbs) -> IntAbs {
    if let Some(s) = b.singleton() {
        let s = mask_shift(s);
        return IntAbs::range(a.lo >> s, a.hi >> s);
    }
    // Any shift drives values toward 0 (non-negative) or -1 (negative).
    IntAbs::range(a.lo.min(0), a.hi.max(-1))
}

/// Signed `a < b`, when decidable.
fn lt_signed(a: IntAbs, b: IntAbs) -> Option<bool> {
    if a.hi < b.lo {
        Some(true)
    } else if a.lo >= b.hi {
        Some(false)
    } else {
        None
    }
}

/// Unsigned `a < b`, when decidable.
fn lt_unsigned(a: IntAbs, b: IntAbs) -> Option<bool> {
    let (al, ah) = a.as_unsigned()?;
    let (bl, bh) = b.as_unsigned()?;
    if ah < bl {
        Some(true)
    } else if al >= bh {
        Some(false)
    } else {
        None
    }
}

/// `a == b`, when decidable.
fn eq_i(a: IntAbs, b: IntAbs) -> Option<bool> {
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        Some(x == y)
    } else if a.hi < b.lo || b.hi < a.lo {
        Some(false)
    } else {
        None
    }
}

fn bool_abs(o: Option<bool>) -> IntAbs {
    match o {
        Some(true) => IntAbs::exact(1),
        Some(false) => IntAbs::exact(0),
        None => IntAbs::range(0, 1),
    }
}

fn fold_fp2(a: FpAbs, f: impl Fn(f64) -> f64) -> FpAbs {
    match a.constant() {
        Some(x) => FpAbs::of(f(x)),
        None => FpAbs::Top,
    }
}

fn fold_fp3(a: FpAbs, b: FpAbs, f: impl Fn(f64, f64) -> f64) -> FpAbs {
    match (a.constant(), b.constant()) {
        (Some(x), Some(y)) => FpAbs::of(f(x, y)),
        _ => FpAbs::Top,
    }
}

/// Apply the abstract transfer of instruction `idx` to `st`. Mirrors the
/// VM's interpreter case by case; every approximation errs toward top.
pub fn transfer(prog: &Program, idx: usize, st: &mut AbsState) {
    let op = &prog.insts()[idx];
    match *op {
        Op::Add(d, a, b) => st.set_int(d, add_i(st.read_int(a), st.read_int(b))),
        Op::Sub(d, a, b) => st.set_int(d, sub_i(st.read_int(a), st.read_int(b))),
        Op::And(d, a, b) => st.set_int(d, and_i(st.read_int(a), st.read_int(b))),
        Op::Or(d, a, b) => st.set_int(d, or_i(st.read_int(a), st.read_int(b))),
        Op::Xor(d, a, b) => st.set_int(d, xor_i(st.read_int(a), st.read_int(b))),
        Op::Sll(d, a, b) => st.set_int(d, sll_i(st.read_int(a), st.read_int(b))),
        Op::Srl(d, a, b) => st.set_int(d, srl_i(st.read_int(a), st.read_int(b))),
        Op::Sra(d, a, b) => st.set_int(d, sra_i(st.read_int(a), st.read_int(b))),
        Op::Slt(d, a, b) => {
            st.set_int(d, bool_abs(lt_signed(st.read_int(a), st.read_int(b))))
        }
        Op::Sltu(d, a, b) => {
            st.set_int(d, bool_abs(lt_unsigned(st.read_int(a), st.read_int(b))))
        }
        Op::Addi(d, a, imm) => st.set_int(d, add_i(st.read_int(a), IntAbs::exact(imm))),
        Op::Andi(d, a, imm) => st.set_int(d, and_i(st.read_int(a), IntAbs::exact(imm))),
        Op::Ori(d, a, imm) => st.set_int(d, or_i(st.read_int(a), IntAbs::exact(imm))),
        Op::Xori(d, a, imm) => st.set_int(d, xor_i(st.read_int(a), IntAbs::exact(imm))),
        Op::Slli(d, a, sh) => {
            st.set_int(d, sll_i(st.read_int(a), IntAbs::exact(sh as i64)))
        }
        Op::Srli(d, a, sh) => {
            st.set_int(d, srl_i(st.read_int(a), IntAbs::exact(sh as i64)))
        }
        Op::Srai(d, a, sh) => {
            st.set_int(d, sra_i(st.read_int(a), IntAbs::exact(sh as i64)))
        }
        Op::Slti(d, a, imm) => {
            st.set_int(d, bool_abs(lt_signed(st.read_int(a), IntAbs::exact(imm))))
        }
        Op::Li(d, imm) => st.set_int(d, IntAbs::exact(imm)),
        Op::Mul(d, a, b) => st.set_int(d, mul_i(st.read_int(a), st.read_int(b))),
        Op::Mulh(d, a, b) => st.set_int(d, mulh_i(st.read_int(a), st.read_int(b))),
        Op::Div(d, a, b) => st.set_int(d, div_i(st.read_int(a), st.read_int(b))),
        Op::Rem(d, a, b) => st.set_int(d, rem_i(st.read_int(a), st.read_int(b))),
        Op::Fadd(d, a, b) => st.fp[d.0 as usize] = fold_fp3(st.fp[a.0 as usize], st.fp[b.0 as usize], |x, y| x + y),
        Op::Fsub(d, a, b) => st.fp[d.0 as usize] = fold_fp3(st.fp[a.0 as usize], st.fp[b.0 as usize], |x, y| x - y),
        Op::Fmul(d, a, b) => st.fp[d.0 as usize] = fold_fp3(st.fp[a.0 as usize], st.fp[b.0 as usize], |x, y| x * y),
        Op::Fdiv(d, a, b) => st.fp[d.0 as usize] = fold_fp3(st.fp[a.0 as usize], st.fp[b.0 as usize], |x, y| x / y),
        Op::Fsqrt(d, a) => st.fp[d.0 as usize] = fold_fp2(st.fp[a.0 as usize], |x| x.sqrt()),
        Op::Fabs(d, a) => st.fp[d.0 as usize] = fold_fp2(st.fp[a.0 as usize], |x| x.abs()),
        Op::Fneg(d, a) => st.fp[d.0 as usize] = fold_fp2(st.fp[a.0 as usize], |x| -x),
        Op::Fmin(d, a, b) => st.fp[d.0 as usize] = fold_fp3(st.fp[a.0 as usize], st.fp[b.0 as usize], |x, y| x.min(y)),
        Op::Fmax(d, a, b) => st.fp[d.0 as usize] = fold_fp3(st.fp[a.0 as usize], st.fp[b.0 as usize], |x, y| x.max(y)),
        Op::Fli(d, imm) => st.fp[d.0 as usize] = FpAbs::of(imm),
        Op::Fmov(d, a) => st.fp[d.0 as usize] = st.fp[a.0 as usize],
        Op::Fcvtif(d, a) => {
            st.fp[d.0 as usize] = match st.read_int(a).singleton() {
                Some(v) => FpAbs::of(v as f64),
                None => FpAbs::Top,
            }
        }
        Op::Fcvtfi(d, a) => {
            let v = st.fp[a.0 as usize]
                .constant()
                .map(|x| if x.is_nan() { 0 } else { x as i64 });
            st.set_int(d, v.map(IntAbs::exact).unwrap_or(IntAbs::TOP));
        }
        Op::Fcmp(d, a, b, cmp) => {
            let v = match (st.fp[a.0 as usize].constant(), st.fp[b.0 as usize].constant()) {
                (Some(x), Some(y)) => Some(match cmp {
                    FCmpOp::Lt => x < y,
                    FCmpOp::Le => x <= y,
                    FCmpOp::Eq => x == y,
                }),
                _ => None,
            };
            st.set_int(d, bool_abs(v));
        }
        Op::Ld(d, _, _, w) => {
            // Loads are unmodeled memory, but a narrow load zero-extends.
            let v = match w.bytes() {
                8 => IntAbs::TOP,
                b => IntAbs::range(0, (1i64 << (8 * b)) - 1),
            };
            st.set_int(d, v);
        }
        Op::Ldf(d, _, _) => st.fp[d.0 as usize] = FpAbs::Top,
        Op::Call(_) | Op::Callr(_) => {
            // The RA write: the exact return byte address.
            st.int[31] = IntAbs::exact(prog.pc_of(idx + 1) as i64);
        }
        Op::St(..)
        | Op::Stf(..)
        | Op::Beq(..)
        | Op::Bne(..)
        | Op::Blt(..)
        | Op::Bge(..)
        | Op::Bltu(..)
        | Op::Bgeu(..)
        | Op::Jmp(_)
        | Op::Jr(_)
        | Op::Ret
        | Op::Halt => {}
    }
}

/// The statically-known outcome of a conditional branch in state `st`:
/// `Some(true)` = always taken, `Some(false)` = never taken, `None` =
/// undecidable. Non-branches return `None`.
pub fn branch_outcome(op: &Op, st: &AbsState) -> Option<bool> {
    match *op {
        Op::Beq(a, b, _) => eq_i(st.read_int(a), st.read_int(b)),
        Op::Bne(a, b, _) => eq_i(st.read_int(a), st.read_int(b)).map(|e| !e),
        Op::Blt(a, b, _) => lt_signed(st.read_int(a), st.read_int(b)),
        Op::Bge(a, b, _) => lt_signed(st.read_int(a), st.read_int(b)).map(|l| !l),
        Op::Bltu(a, b, _) => lt_unsigned(st.read_int(a), st.read_int(b)),
        Op::Bgeu(a, b, _) => lt_unsigned(st.read_int(a), st.read_int(b)).map(|l| !l),
        _ => None,
    }
}

/// Exclude value `v` from an interval, when it sits on an endpoint.
fn exclude(a: IntAbs, v: i64) -> Option<IntAbs> {
    if let Some(x) = a.singleton() {
        return (x != v).then_some(a);
    }
    if a.lo == v {
        Some(IntAbs::range(v + 1, a.hi))
    } else if a.hi == v {
        Some(IntAbs::range(a.lo, v - 1))
    } else {
        Some(a)
    }
}

/// The state on one outgoing edge of a conditional branch: `st` constrained
/// by the branch outcome, or `None` if that outcome is infeasible.
fn refine_edge(op: &Op, taken: bool, st: &AbsState) -> Option<AbsState> {
    if branch_outcome(op, st) == Some(!taken) {
        return None; // the interval analysis already refutes this edge
    }
    let mut out = st.clone();
    let constrain = |r: Reg, v: IntAbs, out: &mut AbsState| -> bool {
        if r.0 == 0 {
            return v.contains_val(0);
        }
        match out.int[r.0 as usize].intersect(v) {
            Some(n) => {
                out.int[r.0 as usize] = n;
                true
            }
            None => false,
        }
    };
    let feasible = match (*op, taken) {
        (Op::Beq(a, b, _), true) | (Op::Bne(a, b, _), false) => {
            // a == b: both collapse to the intersection.
            match st.read_int(a).intersect(st.read_int(b)) {
                Some(n) => constrain(a, n, &mut out) && constrain(b, n, &mut out),
                None => false,
            }
        }
        (Op::Beq(a, b, _), false) | (Op::Bne(a, b, _), true) => {
            // a != b: only a singleton on one side can trim the other.
            let (ia, ib) = (st.read_int(a), st.read_int(b));
            let na = match ib.singleton() {
                Some(v) => exclude(ia, v),
                None => Some(ia),
            };
            let nb = match ia.singleton() {
                Some(v) => exclude(ib, v),
                None => Some(ib),
            };
            match (na, nb) {
                (Some(na), Some(nb)) => constrain(a, na, &mut out) && constrain(b, nb, &mut out),
                _ => false,
            }
        }
        (Op::Blt(a, b, _), true) | (Op::Bge(a, b, _), false) => {
            // a < b
            let (ia, ib) = (st.read_int(a), st.read_int(b));
            ib.hi != i64::MIN
                && ia.lo != i64::MAX
                && constrain(a, IntAbs::range(i64::MIN, ib.hi - 1), &mut out)
                && constrain(b, IntAbs::range(ia.lo + 1, i64::MAX), &mut out)
        }
        (Op::Blt(a, b, _), false) | (Op::Bge(a, b, _), true) => {
            // a >= b
            let (ia, ib) = (st.read_int(a), st.read_int(b));
            constrain(a, IntAbs::range(ib.lo, i64::MAX), &mut out)
                && constrain(b, IntAbs::range(i64::MIN, ia.hi), &mut out)
        }
        // Unsigned comparisons: feasibility was already checked above;
        // interval trimming across the sign boundary is not worth the
        // subtlety, so pass the state through unchanged.
        (Op::Bltu(..), _) | (Op::Bgeu(..), _) => true,
        _ => true, // not a conditional branch
    };
    feasible.then_some(out)
}

/// Run the widening fixpoint over `cfg`, returning the abstract state at
/// the entry of every instruction (`None` = statically unreachable).
fn run_fixpoint(prog: &Program, cfg: &Cfg, config: &VerifyConfig) -> Vec<Option<AbsState>> {
    let insts = prog.insts();
    let nb = cfg.blocks().len();

    // Widening points: targets of retreating edges in some RPO. Every
    // cycle — natural or irreducible — has one, which bounds the fixpoint.
    let dom = DomTree::compute(cfg);
    let mut widen_point = vec![false; nb];
    for &u in dom.rpo() {
        for &v in &cfg.blocks()[u].succs {
            if let (Some(iv), Some(iu)) = (dom.rpo_index(v), dom.rpo_index(u)) {
                if iv <= iu {
                    widen_point[v] = true;
                }
            }
        }
    }

    let mut inb: Vec<Option<AbsState>> = vec![None; nb];
    inb[0] = Some(AbsState::entry(config));
    let mut updates = vec![0u32; nb];
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut queued = vec![false; nb];
    queued[0] = true;
    // Belt-and-braces cap: past it, widen on every update, which forces
    // convergence in a handful of further passes.
    let cap = 128 * (nb + 1);
    let mut steps = 0usize;

    while let Some(b) = queue.pop_front() {
        queued[b] = false;
        steps += 1;
        let force_widen = steps > cap;
        let Some(start_state) = inb[b].clone() else { continue };

        let block = &cfg.blocks()[b];
        let mut st = start_state;
        for idx in block.start..block.end {
            transfer(prog, idx, &mut st);
        }
        let last = block.last();
        let term = &insts[last];
        let taken_block = term.flow().direct_target().map(|t| cfg.block_of(t));
        let fall_block = (last + 1 < insts.len()).then(|| cfg.block_of(last + 1));

        for &s in &block.succs {
            let edge_state = if matches!(term.flow(), tinyisa::Flow::Branch(_)) {
                if Some(s) == taken_block && Some(s) == fall_block {
                    // Degenerate branch-to-fallthrough: both outcomes land
                    // here, so no constraint applies.
                    Some(st.clone())
                } else if Some(s) == taken_block {
                    refine_edge(term, true, &st)
                } else {
                    refine_edge(term, false, &st)
                }
            } else {
                Some(st.clone())
            };
            let Some(es) = edge_state else { continue };
            let joined = match &inb[s] {
                None => es,
                Some(old) => old.join(&es),
            };
            let next = if widen_point[s] && (updates[s] >= WIDEN_AFTER || force_widen) {
                match &inb[s] {
                    Some(old) => old.widen(&joined),
                    None => joined,
                }
            } else {
                joined
            };
            if inb[s].as_ref() != Some(&next) {
                inb[s] = Some(next);
                updates[s] += 1;
                if !queued[s] {
                    queued[s] = true;
                    queue.push_back(s);
                }
            }
        }
    }

    // Expand block-entry states to per-instruction states.
    let mut inst_in: Vec<Option<AbsState>> = vec![None; insts.len()];
    for (bi, block) in cfg.blocks().iter().enumerate() {
        if let Some(entry) = &inb[bi] {
            let mut st = entry.clone();
            for (off, slot) in inst_in[block.start..block.end].iter_mut().enumerate() {
                *slot = Some(st.clone());
                transfer(prog, block.start + off, &mut st);
            }
        }
    }
    inst_in
}

/// Resolve indirect terminators whose target register is a singleton
/// constant naming a block leader: `block index -> target instruction`.
fn resolve_indirect(
    prog: &Program,
    cfg: &Cfg,
    inst_in: &[Option<AbsState>],
) -> BTreeMap<usize, usize> {
    let insts = prog.insts();
    let mut resolved = BTreeMap::new();
    for (bi, block) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(bi) {
            continue;
        }
        let last = block.last();
        let reg = match insts[last] {
            Op::Jr(r) | Op::Callr(r) => r,
            Op::Ret => Reg(31),
            _ => continue,
        };
        let Some(st) = &inst_in[last] else { continue };
        let Some(v) = st.read_int(reg).singleton() else { continue };
        let addr = v as u64;
        let base = prog.base();
        if addr < base || !(addr - base).is_multiple_of(INST_BYTES) {
            continue;
        }
        let t = ((addr - base) / INST_BYTES) as usize;
        if t >= insts.len() {
            continue;
        }
        // Only a block leader can become the single successor without
        // re-carving blocks; non-leader targets keep the conservative pool.
        if cfg.blocks()[cfg.block_of(t)].start == t {
            resolved.insert(bi, t);
        }
    }
    resolved
}

/// Every analysis this crate computes for one program, over a shared
/// (possibly indirect-refined) CFG: dominators, natural loops, liveness,
/// reaching definitions, and per-instruction abstract states.
#[derive(Debug, Clone)]
pub struct Analysis {
    cfg: Cfg,
    dom: DomTree,
    loops: LoopForest,
    liveness: Liveness,
    reaching: ReachingDefs,
    inst_in: Vec<Option<AbsState>>,
    refined_blocks: usize,
    rounds: usize,
}

impl Analysis {
    /// Build the full analysis bundle: run the abstract interpretation,
    /// use singleton targets to narrow indirect edges, re-run on the
    /// refined graph until nothing else resolves (at most
    /// [`MAX_REFINE_ROUNDS`] rounds), then derive dominators, loops,
    /// liveness and reaching definitions from the final CFG.
    pub fn build(prog: &Program, config: &VerifyConfig) -> Analysis {
        let mut cfg = Cfg::build(prog);
        let mut resolved: BTreeMap<usize, usize> = BTreeMap::new();
        let mut rounds = 0;
        let inst_in = loop {
            rounds += 1;
            let inst_in = run_fixpoint(prog, &cfg, config);
            if rounds >= MAX_REFINE_ROUNDS {
                break inst_in;
            }
            let found = resolve_indirect(prog, &cfg, &inst_in);
            // Only edge-set changes warrant another fixpoint round; proven
            // targets that match the conservative pool still count as
            // resolved.
            let fresh: Vec<(usize, usize)> = found
                .iter()
                .map(|(&b, &t)| (b, t))
                .filter(|&(b, t)| cfg.blocks()[b].succs != [cfg.block_of(t)])
                .collect();
            resolved.extend(found);
            if fresh.is_empty() {
                break inst_in;
            }
            cfg = cfg.refine_indirect(&resolved);
        };
        let dom = DomTree::compute(&cfg);
        let loops = LoopForest::compute(&cfg, &dom);
        let liveness = Liveness::compute(prog, &cfg);
        let reaching = ReachingDefs::compute(prog, &cfg);
        Analysis {
            cfg,
            dom,
            loops,
            liveness,
            reaching,
            inst_in,
            refined_blocks: resolved.len(),
            rounds,
        }
    }

    /// The CFG all other analyses are computed over (indirect edges
    /// narrowed where constant propagation resolved them).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The dominator tree.
    pub fn dom(&self) -> &DomTree {
        &self.dom
    }

    /// The natural-loop forest.
    pub fn loops(&self) -> &LoopForest {
        &self.loops
    }

    /// Liveness facts.
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// Reaching definitions.
    pub fn reaching(&self) -> &ReachingDefs {
        &self.reaching
    }

    /// The abstract state on entry to instruction `idx`, `None` if the
    /// instruction is statically unreachable.
    pub fn inst_state(&self, idx: usize) -> Option<&AbsState> {
        self.inst_in[idx].as_ref()
    }

    /// How many indirect terminators were narrowed to a single target.
    pub fn refined_blocks(&self) -> usize {
        self.refined_blocks
    }

    /// Fixpoint/refinement rounds run (1 = nothing resolved).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm};

    fn analyze(f: impl FnOnce(&mut Asm)) -> (Program, Analysis) {
        let mut a = Asm::new();
        f(&mut a);
        let p = a.assemble().unwrap();
        let an = Analysis::build(&p, &VerifyConfig::default());
        (p, an)
    }

    #[test]
    fn straight_line_constants_stay_exact() {
        let (_, an) = analyze(|a| {
            a.li(T0, 10);
            a.addi(T1, T0, 5);
            a.mul(T2, T1, T0);
            a.sub(T3, T2, T1);
            a.halt(); // idx 4
        });
        let st = an.inst_state(4).unwrap();
        assert_eq!(st.read_int(T1).singleton(), Some(15));
        assert_eq!(st.read_int(T2).singleton(), Some(150));
        assert_eq!(st.read_int(T3).singleton(), Some(135));
    }

    #[test]
    fn entry_state_is_exactly_zero() {
        let (_, an) = analyze(|a| {
            a.add(T0, T1, T2); // everything still zero
            a.halt();
        });
        let st = an.inst_state(1).unwrap();
        assert_eq!(st.read_int(T0).singleton(), Some(0));
        assert_eq!(st.fp[3], FpAbs::of(0.0));
    }

    #[test]
    fn entry_regs_are_top() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        let config = VerifyConfig {
            entry_regs: vec![RegRef::Int(1), RegRef::Fp(0)],
            ..VerifyConfig::default()
        };
        let an = Analysis::build(&p, &config);
        let st = an.inst_state(0).unwrap();
        assert!(st.read_int(A0).is_top());
        assert_eq!(st.fp[0], FpAbs::Top);
        assert_eq!(st.read_int(T0).singleton(), Some(0));
    }

    #[test]
    fn loop_counter_widens_to_a_sound_range() {
        let (_, an) = analyze(|a| {
            let head = a.label();
            a.li(T0, 0);
            a.bind(head);
            a.addi(T0, T0, 1); // idx 1
            a.slti(T1, T0, 9);
            a.bne(T1, ZERO, head);
            a.halt(); // idx 4
        });
        // The header state must contain every concrete counter value
        // (0, 1, ..., 8 on entry to the addi).
        let st = an.inst_state(1).unwrap();
        for v in 0..=8u64 {
            assert!(st.read_int(T0).contains(v), "{:?} missing {v}", st.read_int(T0));
        }
        // And the flag is always 0/1.
        let st4 = an.inst_state(4).unwrap();
        assert!(IntAbs::range(0, 1).intersect(st4.read_int(T1)).is_some());
    }

    #[test]
    fn branch_refinement_constrains_the_taken_edge() {
        let (_, an) = analyze(|a| {
            let big = a.label();
            a.li(T0, 7);
            a.blt(T0, T1, big); // T1 is 0: never taken (7 < 0 is false)
            a.addi(T2, T0, 1); // idx 2: fallthrough, T0 = 7
            a.halt();
            a.bind(big);
            a.halt(); // idx 4: statically unreachable via refutation
        });
        assert_eq!(an.inst_state(2).unwrap().read_int(T0).singleton(), Some(7));
        // The refuted edge leaves the taken block unreached.
        assert!(an.inst_state(4).is_none(), "refuted branch target must stay bottom");
    }

    #[test]
    fn fp_constants_fold_bit_exactly() {
        let (_, an) = analyze(|a| {
            a.fli(F0, 0.1);
            a.fli(F1, 0.2);
            a.fadd(F2, F0, F1);
            a.fsqrt(F3, F2);
            a.fcvtfi(T0, F3);
            a.fcmplt(T1, F0, F1);
            a.halt(); // idx 6
        });
        let st = an.inst_state(6).unwrap();
        let expect = (0.1f64 + 0.2).sqrt();
        assert_eq!(st.fp[3], FpAbs::of(expect));
        assert_eq!(st.read_int(T0).singleton(), Some(expect as i64));
        assert_eq!(st.read_int(T1).singleton(), Some(1));
    }

    #[test]
    fn division_semantics_match_the_vm() {
        let (_, an) = analyze(|a| {
            a.li(T0, 42);
            a.div(T1, T0, ZERO); // div-by-zero: u64::MAX = -1 signed
            a.rem(T2, T0, ZERO); // rem-by-zero: dividend
            a.halt(); // idx 3
        });
        let st = an.inst_state(3).unwrap();
        assert_eq!(st.read_int(T1).singleton(), Some(-1));
        assert_eq!(st.read_int(T2).singleton(), Some(42));
    }

    #[test]
    fn narrow_loads_are_bounded_by_width() {
        let (_, an) = analyze(|a| {
            a.li(T0, 0x8000);
            a.ld1(T1, T0, 0);
            a.ld8(T2, T0, 0);
            a.halt(); // idx 3
        });
        let st = an.inst_state(3).unwrap();
        assert_eq!(st.read_int(T1), IntAbs::range(0, 255));
        assert!(st.read_int(T2).is_top());
    }

    #[test]
    fn ret_through_exact_ra_is_resolved_to_one_edge() {
        let (p, an) = analyze(|a| {
            let (f, after) = (a.label(), a.label());
            a.call(f); // 0
            a.jmp(after); // 1: the return site
            a.bind(f);
            a.addi(A0, A0, 1); // 2
            a.ret(); // 3
            a.bind(after);
            a.halt(); // 4
        });
        assert_eq!(an.refined_blocks(), 1);
        let ret_block = an.cfg().block_of(3);
        let ret_site = an.cfg().block_of(1);
        assert_eq!(an.cfg().blocks()[ret_block].succs, vec![ret_site]);
        // RA at the ret is the exact return address.
        let st = an.inst_state(3).unwrap();
        assert_eq!(st.read_int(RA).singleton(), Some(p.pc_of(1) as i64));
    }

    #[test]
    fn jr_through_li_text_address_is_resolved() {
        let (_, an) = analyze(|a| {
            a.li(T0, (0x1_0000 + 2 * INST_BYTES) as i64); // address of idx 2
            a.jr(T0); // 1
            a.halt(); // 2: pool member and actual target
        });
        assert_eq!(an.refined_blocks(), 1);
        let jr_block = an.cfg().block_of(1);
        assert_eq!(an.cfg().blocks()[jr_block].succs, vec![an.cfg().block_of(2)]);
    }

    #[test]
    fn two_call_sites_keep_ret_conservative() {
        let (_, an) = analyze(|a| {
            let (f, after) = (a.label(), a.label());
            a.call(f); // 0
            a.call(f); // 1 -> two return sites join RA to non-singleton
            a.jmp(after); // 2
            a.bind(f);
            a.ret(); // 3
            a.bind(after);
            a.halt(); // 4
        });
        assert_eq!(an.refined_blocks(), 0);
        let ret_block = an.cfg().block_of(3);
        assert!(an.cfg().blocks()[ret_block].succs.len() >= 2);
    }

    #[test]
    fn branch_outcome_decides_constant_comparisons() {
        let mut st = AbsState::entry(&VerifyConfig::default());
        st.int[7] = IntAbs::exact(5); // T0
        st.int[8] = IntAbs::range(10, 20); // T1
        assert_eq!(branch_outcome(&Op::Blt(T0, T1, 0), &st), Some(true));
        assert_eq!(branch_outcome(&Op::Bge(T0, T1, 0), &st), Some(false));
        assert_eq!(branch_outcome(&Op::Beq(T0, T1, 0), &st), Some(false));
        st.int[8] = IntAbs::range(0, 20);
        assert_eq!(branch_outcome(&Op::Blt(T0, T1, 0), &st), None);
    }

    #[test]
    fn interval_arithmetic_goes_top_on_possible_wrap() {
        let a = IntAbs::range(i64::MAX - 1, i64::MAX);
        assert!(add_i(a, IntAbs::exact(2)).is_top());
        assert_eq!(add_i(a, IntAbs::exact(-1)), IntAbs::range(i64::MAX - 2, i64::MAX - 1));
        assert!(mul_i(a, a).is_top());
        assert!(sll_i(IntAbs::exact(1), IntAbs::exact(63)).is_top());
    }

    #[test]
    fn shift_and_mask_bounds_are_sound() {
        // srl of a non-negative shrinks it; andi with a mask caps it.
        let a = IntAbs::range(0, 1000);
        assert_eq!(srl_i(a, IntAbs::exact(3)), IntAbs::range(0, 125));
        assert_eq!(and_i(IntAbs::TOP, IntAbs::exact(0xff)), IntAbs::range(0, 0xff));
        assert_eq!(sra_i(IntAbs::range(-8, 8), IntAbs::exact(1)), IntAbs::range(-4, 4));
        // Unknown shift amounts stay sound.
        assert_eq!(sra_i(IntAbs::range(-8, 8), IntAbs::TOP), IntAbs::range(-8, 8));
        assert_eq!(srl_i(a, IntAbs::TOP), IntAbs::range(0, 1000));
    }

    #[test]
    fn irreducible_cycle_terminates_and_stays_sound() {
        // Two-entry cycle with a growing counter: widening must fire even
        // though no natural loop forms.
        let (_, an) = analyze(|a| {
            let (x, y, out) = (a.label(), a.label(), a.label());
            a.li(T0, 1);
            a.beq(T0, ZERO, y);
            a.bind(x);
            a.addi(T1, T1, 1);
            a.jmp(y);
            a.bind(y);
            a.addi(T1, T1, 2);
            a.slti(T2, T1, 100);
            a.bne(T2, ZERO, x);
            a.bind(out);
            a.halt();
        });
        assert!(!an.loops().irreducible_edges.is_empty() || !an.loops().loops.is_empty());
        // Fixpoint converged (we got here) and the counter's state at y is
        // a sound superset of {2, 3, 5, ...}.
        let st = an.inst_state(4).unwrap();
        assert!(st.read_int(T1).contains(0) || st.read_int(T1).contains(1));
    }
}

//! Dominator tree and natural-loop forest over the CFG.
//!
//! Dominators are computed with the Cooper-Harvey-Kennedy iterative
//! algorithm over a reverse postorder of the reachable blocks; unreachable
//! blocks have no dominator information. Natural loops are formed from
//! *back edges* (an edge `u -> h` whose target `h` dominates `u`); a
//! retreating edge whose target does *not* dominate its source marks an
//! irreducible region, which is recorded rather than forced into a loop —
//! the analyses that consume the forest (widening points, loop lints, the
//! static report) treat irreducible edges conservatively.

use crate::cfg::Cfg;

/// The dominator tree of a [`Cfg`], plus the reverse postorder it was
/// computed over.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == Some(entry)`,
    /// unreachable blocks are `None`.
    idom: Vec<Option<usize>>,
    /// Position of each block in reverse postorder (`None` if unreachable).
    rpo_index: Vec<Option<usize>>,
    /// The reachable blocks in reverse postorder (entry first).
    rpo: Vec<usize>,
}

impl DomTree {
    /// Compute the dominator tree of `cfg`.
    pub fn compute(cfg: &Cfg) -> DomTree {
        let nb = cfg.blocks().len();

        // Iterative DFS postorder from the entry block.
        let mut post: Vec<usize> = Vec::new();
        let mut seen = vec![false; nb];
        // Stack of (block, next-successor-position) frames.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        seen[0] = true;
        while let Some(&mut (b, ref mut pos)) = stack.last_mut() {
            let succs = &cfg.blocks()[b].succs;
            if *pos < succs.len() {
                let s = succs[*pos];
                *pos += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = post.into_iter().rev().collect();
        let mut rpo_index = vec![None; nb];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = Some(i);
        }

        let mut idom: Vec<Option<usize>> = vec![None; nb];
        idom[0] = Some(0);
        let intersect = |idom: &[Option<usize>], rpo_index: &[Option<usize>], a: usize, b: usize| {
            let (mut x, mut y) = (a, b);
            while x != y {
                while rpo_index[x] > rpo_index[y] {
                    x = idom[x].expect("processed block has an idom");
                }
                while rpo_index[y] > rpo_index[x] {
                    y = idom[y].expect("processed block has an idom");
                }
            }
            x
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &cfg.blocks()[b].preds {
                    if idom[p].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if new_idom != idom[b] {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        DomTree { idom, rpo_index, rpo }
    }

    /// The immediate dominator of `b` (`Some(b)` itself for the entry,
    /// `None` for unreachable blocks).
    pub fn idom(&self, b: usize) -> Option<usize> {
        self.idom[b]
    }

    /// The reachable blocks in reverse postorder (entry first).
    pub fn rpo(&self) -> &[usize] {
        &self.rpo
    }

    /// Position of `b` in reverse postorder, `None` if unreachable.
    pub fn rpo_index(&self, b: usize) -> Option<usize> {
        self.rpo_index[b]
    }

    /// True if `a` dominates `b` (reflexive). Unreachable blocks dominate
    /// nothing and are dominated by nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom[b].is_none() || self.idom[a].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let up = self.idom[cur].expect("reachable block has an idom");
            if up == cur {
                return false; // reached the entry
            }
            cur = up;
        }
    }
}

/// One natural loop: a header and the set of blocks that can reach one of
/// its back edges without leaving through the header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (the single entry of the loop).
    pub header: usize,
    /// All blocks of the loop, sorted ascending (includes the header).
    pub body: Vec<usize>,
    /// Sources of the back edges (`latch -> header`), sorted ascending.
    pub latches: Vec<usize>,
    /// CFG edges leaving the loop: `(from, to)` with `from` in the body
    /// and `to` outside it.
    pub exits: Vec<(usize, usize)>,
    /// Nesting depth: 1 for an outermost loop.
    pub depth: usize,
    /// Index (into [`LoopForest::loops`]) of the innermost enclosing loop.
    pub parent: Option<usize>,
}

impl NaturalLoop {
    /// True if `block` belongs to this loop's body.
    pub fn contains(&self, block: usize) -> bool {
        self.body.binary_search(&block).is_ok()
    }
}

/// The natural loops of a CFG, with per-block innermost-loop lookup.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// All natural loops, one per distinct header, outermost-first by
    /// nesting (parents precede children).
    pub loops: Vec<NaturalLoop>,
    /// `innermost[b]` is the index of the innermost loop containing block
    /// `b`, if any.
    innermost: Vec<Option<usize>>,
    /// Retreating edges whose target does not dominate the source —
    /// irreducible control flow no natural loop models.
    pub irreducible_edges: Vec<(usize, usize)>,
}

impl LoopForest {
    /// Build the loop forest from a CFG and its dominator tree.
    pub fn compute(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let nb = cfg.blocks().len();

        // Classify edges; collect back-edge latches per header.
        let mut latches_of: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        let mut irreducible_edges = Vec::new();
        for &u in dom.rpo() {
            for &v in &cfg.blocks()[u].succs {
                let retreating = match (dom.rpo_index(v), dom.rpo_index(u)) {
                    (Some(iv), Some(iu)) => iv <= iu,
                    _ => false,
                };
                if !retreating {
                    continue;
                }
                if dom.dominates(v, u) {
                    latches_of.entry(v).or_default().push(u);
                } else {
                    irreducible_edges.push((u, v));
                }
            }
        }

        // Loop bodies: backward walk from the latches, stopping at the
        // header.
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (header, mut latches) in latches_of {
            latches.sort_unstable();
            let mut in_body = vec![false; nb];
            in_body[header] = true;
            let mut stack: Vec<usize> = latches.iter().copied().filter(|&l| l != header).collect();
            for &l in &stack {
                in_body[l] = true;
            }
            while let Some(b) = stack.pop() {
                for &p in &cfg.blocks()[b].preds {
                    if !in_body[p] && dom.rpo_index(p).is_some() {
                        in_body[p] = true;
                        stack.push(p);
                    }
                }
            }
            let body: Vec<usize> = (0..nb).filter(|&b| in_body[b]).collect();
            let mut exits = Vec::new();
            for &b in &body {
                for &s in &cfg.blocks()[b].succs {
                    if !in_body[s] {
                        exits.push((b, s));
                    }
                }
            }
            loops.push(NaturalLoop { header, body, latches, exits, depth: 1, parent: None });
        }

        // Nesting: parent = smallest other loop whose body strictly
        // contains this loop's body. Sort outermost-first so parents get
        // their depth before children.
        loops.sort_by_key(|l| std::cmp::Reverse(l.body.len()));
        let snapshot: Vec<(usize, Vec<usize>)> =
            loops.iter().map(|l| (l.header, l.body.clone())).collect();
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for (j, (header, body)) in snapshot.iter().enumerate() {
                if j == i || *header == loops[i].header {
                    continue;
                }
                let contains_all =
                    loops[i].body.iter().all(|b| body.binary_search(b).is_ok());
                if contains_all && body.len() > loops[i].body.len() {
                    let better = match best {
                        None => true,
                        Some(cur) => snapshot[cur].1.len() > body.len(),
                    };
                    if better {
                        best = Some(j);
                    }
                }
            }
            loops[i].parent = best;
            loops[i].depth = match best {
                Some(p) => loops[p].depth + 1,
                None => 1,
            };
        }

        // Innermost loop per block: the containing loop with the smallest
        // body. `loops` is sorted big-to-small, so later wins.
        let mut innermost = vec![None; nb];
        for (li, l) in loops.iter().enumerate() {
            for &b in &l.body {
                innermost[b] = Some(li);
            }
        }

        LoopForest { loops, innermost, irreducible_edges }
    }

    /// Index of the innermost loop containing `block`, if any.
    pub fn innermost(&self, block: usize) -> Option<usize> {
        self.innermost.get(block).copied().flatten()
    }

    /// Nesting depth of `block`: the depth of its innermost containing
    /// loop, or 0 for code outside every loop. This is the "how hot could
    /// this be" prior the PMU heat map attaches to each block.
    pub fn depth_of(&self, block: usize) -> usize {
        self.innermost(block).map_or(0, |li| self.loops[li].depth)
    }

    /// Header program points of the loops containing `block`,
    /// outermost-first — the stack a flamegraph collapses a block's samples
    /// under. Headers are returned as block indices; callers map them to
    /// pcs through the CFG.
    pub fn chain_headers(&self, block: usize) -> Vec<usize> {
        let mut headers: Vec<usize> = self.chain(block).map(|l| l.header).collect();
        headers.reverse();
        headers
    }

    /// Iterate the chain of loops containing `block`, innermost first.
    pub fn chain(&self, block: usize) -> impl Iterator<Item = &NaturalLoop> {
        let mut cur = self.innermost(block);
        std::iter::from_fn(move || {
            let li = cur?;
            cur = self.loops[li].parent;
            Some(&self.loops[li])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm, Program};

    fn build(f: impl FnOnce(&mut Asm)) -> (Program, Cfg, DomTree, LoopForest) {
        let mut a = Asm::new();
        f(&mut a);
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let dom = DomTree::compute(&cfg);
        let loops = LoopForest::compute(&cfg, &dom);
        (p, cfg, dom, loops)
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let (_, cfg, dom, _) = build(|a| {
            let (t, e) = (a.label(), a.label());
            a.li(T0, 1);
            a.beq(T0, ZERO, t);
            a.li(T1, 2);
            a.jmp(e);
            a.bind(t);
            a.li(T1, 3);
            a.bind(e);
            a.halt();
        });
        for b in 0..cfg.blocks().len() {
            if cfg.is_reachable(b) {
                assert!(dom.dominates(0, b), "entry must dominate block {b}");
            }
        }
    }

    #[test]
    fn diamond_join_is_dominated_by_the_fork_not_the_arms() {
        let (_, cfg, dom, _) = build(|a| {
            let (other, join) = (a.label(), a.label());
            a.li(T0, 1); // b0
            a.beq(T0, ZERO, other);
            a.li(T1, 2); // b1
            a.jmp(join);
            a.bind(other);
            a.li(T1, 3); // b2
            a.bind(join);
            a.halt(); // b3
        });
        let join = cfg.block_of(5);
        assert_eq!(dom.idom(join), Some(0));
        assert!(dom.dominates(0, join));
        assert!(!dom.dominates(cfg.block_of(2), join));
        assert!(!dom.dominates(cfg.block_of(4), join));
    }

    #[test]
    fn nested_loops_get_headers_bodies_and_depths() {
        let (_, cfg, _, loops) = build(|a| {
            let (outer, inner) = (a.label(), a.label());
            a.li(T0, 0); // b0: preamble
            a.bind(outer);
            a.li(T1, 0); // outer header
            a.bind(inner);
            a.addi(T1, T1, 1); // inner header/latch
            a.slti(T2, T1, 8);
            a.bne(T2, ZERO, inner);
            a.addi(T0, T0, 1); // outer latch tail
            a.slti(T2, T0, 8);
            a.bne(T2, ZERO, outer);
            a.halt();
        });
        assert_eq!(loops.loops.len(), 2);
        let outer = &loops.loops[0];
        let inner = &loops.loops[1];
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.parent, Some(0));
        assert!(outer.body.len() > inner.body.len());
        for b in &inner.body {
            assert!(outer.contains(*b), "inner body must nest inside outer");
        }
        // The innermost lookup prefers the deeper loop.
        let inner_header_block = cfg.block_of(2);
        assert_eq!(loops.innermost(inner_header_block), Some(1));
        assert_eq!(loops.chain(inner_header_block).count(), 2);
        // Exits: the inner loop exits to the outer latch tail.
        assert!(!inner.exits.is_empty());
        // depth_of / chain_headers: the flamegraph join helpers.
        assert_eq!(loops.depth_of(0), 0, "preamble is outside every loop");
        assert_eq!(loops.depth_of(inner_header_block), 2);
        assert_eq!(
            loops.chain_headers(inner_header_block),
            vec![outer.header, inner.header],
            "outermost-first"
        );
    }

    #[test]
    fn self_loop_is_a_one_block_loop() {
        let (_, cfg, _, loops) = build(|a| {
            let spin = a.label();
            a.li(T0, 1);
            a.bind(spin);
            a.addi(T0, T0, 1);
            a.jmp(spin);
        });
        assert_eq!(loops.loops.len(), 1);
        let l = &loops.loops[0];
        assert_eq!(l.body, vec![l.header]);
        assert_eq!(l.latches, vec![l.header]);
        assert!(l.exits.is_empty());
        assert_eq!(cfg.block_of(1), l.header);
    }

    #[test]
    fn irreducible_retreating_edge_is_recorded_not_looped() {
        // Two blocks jumping into each other's middle from a branch: the
        // classic two-entry cycle, reducible for neither header.
        let (_, _, _, loops) = build(|a| {
            let (x, y) = (a.label(), a.label());
            a.li(T0, 1); // b0
            a.beq(T0, ZERO, y); // enter the cycle at y ...
            a.bind(x);
            a.addi(T0, T0, 1);
            a.jmp(y);
            a.bind(y);
            a.addi(T0, T0, 2); // ... or fall in via x
            a.jmp(x);
        });
        // Neither x nor y dominates the other, so no natural loop forms,
        // but the retreating edge is recorded as irreducible.
        assert!(loops.loops.is_empty(), "{:?}", loops.loops);
        assert!(!loops.irreducible_edges.is_empty());
    }

    #[test]
    fn unreachable_blocks_have_no_dominator_info() {
        let (_, cfg, dom, _) = build(|a| {
            let end = a.label();
            a.jmp(end);
            a.li(T0, 7); // unreachable
            a.bind(end);
            a.halt();
        });
        let dead = cfg.block_of(1);
        assert_eq!(dom.idom(dead), None);
        assert_eq!(dom.rpo_index(dead), None);
        assert!(!dom.dominates(0, dead));
    }
}

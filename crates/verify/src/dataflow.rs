//! Forward dataflow analyses over the CFG: may-uninitialized registers and
//! must-constant propagation.
//!
//! Both are classic worklist fixpoints. Facts live at block boundaries;
//! reporting walks each reachable block once with its entry fact.

use crate::cfg::Cfg;
use tinyisa::{Op, Program, Reg, RegRef};

/// A set of architectural registers over the unified 64-register index
/// space ([`RegRef::unified`]): bits 0..32 integer, 32..64 FP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(pub u64);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// Every register, integer and FP.
    pub const ALL: RegSet = RegSet(u64::MAX);

    /// Insert a register.
    pub fn insert(&mut self, r: RegRef) {
        self.0 |= 1 << r.unified();
    }

    /// Remove a register.
    pub fn remove(&mut self, r: RegRef) {
        self.0 &= !(1 << r.unified());
    }

    /// Membership test.
    pub fn contains(self, r: RegRef) -> bool {
        self.0 & (1 << r.unified()) != 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }
}

/// One may-uninitialized read: instruction `idx` reads `reg` while some
/// path from the entry reaches it without writing `reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UninitRead {
    /// Instruction index of the reading site.
    pub idx: usize,
    /// The register read before any write.
    pub reg: RegRef,
}

/// May-uninitialized analysis: for every reachable instruction, which
/// registers could still hold their power-on value on some path.
///
/// `initialized_at_entry` is the entry fact — registers the harness
/// guarantees (the hardwired zero always; callers add any registers they
/// preset through `Vm::set_reg` before running). The lattice is the
/// powerset of registers ordered by inclusion, join is union (*may*), and
/// the transfer function of an instruction removes its definition
/// ([`Op::def`]); reads do not change the fact, so every use of a
/// maybe-uninitialized register is reported, not just the first.
pub fn may_uninit_reads(
    prog: &Program,
    cfg: &Cfg,
    initialized_at_entry: RegSet,
) -> Vec<UninitRead> {
    let insts = prog.insts();
    let nb = cfg.blocks().len();

    // Per-block transfer: the set of registers the block definitely writes.
    let defs: Vec<RegSet> = cfg
        .blocks()
        .iter()
        .map(|b| {
            let mut d = RegSet::EMPTY;
            for op in &insts[b.start..b.end] {
                if let Some(r) = op.def() {
                    d.insert(r);
                }
            }
            d
        })
        .collect();

    // in[b] = union of out[preds]; entry additionally seeds the
    // maybe-uninit universe. Blocks start at bottom (empty) so unreachable
    // predecessors contribute nothing.
    let mut entry_fact = RegSet::ALL;
    entry_fact.0 &= !initialized_at_entry.0;
    // x0 is never a dependence (filtered from uses), but keep it out of the
    // universe anyway.
    entry_fact.remove(RegRef::Int(0));

    let mut inb = vec![RegSet::EMPTY; nb];
    let mut outb = vec![RegSet::EMPTY; nb];
    inb[0] = entry_fact;
    let mut work: Vec<usize> = (0..nb).collect();
    while let Some(b) = work.pop() {
        let mut i = inb[b];
        if b == 0 {
            i = i.union(entry_fact);
        }
        for p in &cfg.blocks()[b].preds {
            i = i.union(outb[*p]);
        }
        inb[b] = i;
        let o = RegSet(i.0 & !defs[b].0);
        if o != outb[b] {
            outb[b] = o;
            for s in &cfg.blocks()[b].succs {
                if !work.contains(s) {
                    work.push(*s);
                }
            }
        }
    }

    // Report pass: walk each reachable block with its entry fact.
    let mut reads = Vec::new();
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(bi) {
            continue;
        }
        let mut fact = inb[bi];
        for (idx, op) in insts.iter().enumerate().take(b.end).skip(b.start) {
            for r in op.uses().iter().flatten() {
                if fact.contains(*r) {
                    reads.push(UninitRead { idx, reg: *r });
                }
            }
            if let Some(d) = op.def() {
                fact.remove(d);
            }
        }
    }
    reads.sort_by_key(|r| (r.idx, r.reg.unified()));
    reads
}

/// A must-constant lattice value for one integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Const {
    /// Not yet reached (bottom).
    Bot,
    /// Holds exactly this value on every path.
    Val(i64),
    /// Unknown (top).
    Top,
}

impl Const {
    fn join(self, other: Const) -> Const {
        match (self, other) {
            (Const::Bot, x) | (x, Const::Bot) => x,
            (Const::Val(a), Const::Val(b)) if a == b => Const::Val(a),
            _ => Const::Top,
        }
    }
}

/// Per-program-point integer-register constant facts.
type ConstFact = [Const; 32];

fn join_fact(a: &ConstFact, b: &ConstFact) -> ConstFact {
    let mut out = [Const::Bot; 32];
    for (i, o) in out.iter_mut().enumerate() {
        *o = a[i].join(b[i]);
    }
    out
}

fn const_transfer(op: &Op, fact: &mut ConstFact) {
    // `li` introduces constants; `addi` (which also encodes `mov`)
    // propagates them. Any other write invalidates. x0 stays pinned to 0.
    match *op {
        Op::Li(d, imm) => set_const(fact, d, Const::Val(imm)),
        Op::Addi(d, a, imm) => {
            let v = match read_const(fact, a) {
                Const::Val(x) => Const::Val(x.wrapping_add(imm)),
                c => c,
            };
            set_const(fact, d, v);
        }
        _ => {
            if let Some(RegRef::Int(d)) = op.def() {
                fact[d as usize] = Const::Top;
            }
        }
    }
}

fn read_const(fact: &ConstFact, r: Reg) -> Const {
    if r.0 == 0 {
        Const::Val(0)
    } else {
        fact[r.0 as usize]
    }
}

fn set_const(fact: &mut ConstFact, d: Reg, v: Const) {
    if d.0 != 0 {
        fact[d.0 as usize] = v;
    }
}

/// A memory access whose effective address is provably constant: the base
/// register held a known `li`/`addi` constant on every path to the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstAccess {
    /// Instruction index of the load/store.
    pub idx: usize,
    /// The provable effective byte address (`base + offset`).
    pub addr: u64,
    /// Access width in bytes.
    pub width: u64,
    /// True for stores.
    pub is_store: bool,
}

/// Must-constant propagation over integer registers, reporting every
/// reachable load/store whose effective address is statically known.
///
/// The lattice per register is flat (`Bot < Val(c) < Top`); `li` generates
/// constants, `addi`/`mov` propagate them, any other definition kills.
/// The entry fact is all-`Top` (a harness may preset registers), so a
/// reported address is sound for any entry state.
pub fn const_accesses(prog: &Program, cfg: &Cfg) -> Vec<ConstAccess> {
    let insts = prog.insts();
    let nb = cfg.blocks().len();

    let mut inb: Vec<ConstFact> = vec![[Const::Bot; 32]; nb];
    let mut outb: Vec<ConstFact> = vec![[Const::Bot; 32]; nb];
    inb[0] = [Const::Top; 32];
    let mut work: Vec<usize> = (0..nb).collect();
    while let Some(b) = work.pop() {
        let mut fact = if b == 0 { [Const::Top; 32] } else { [Const::Bot; 32] };
        for p in &cfg.blocks()[b].preds {
            fact = join_fact(&fact, &outb[*p]);
        }
        inb[b] = fact;
        for op in &insts[cfg.blocks()[b].start..cfg.blocks()[b].end] {
            const_transfer(op, &mut fact);
        }
        if fact != outb[b] {
            outb[b] = fact;
            for s in &cfg.blocks()[b].succs {
                if !work.contains(s) {
                    work.push(*s);
                }
            }
        }
    }

    let mut accesses = Vec::new();
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(bi) {
            continue;
        }
        let mut fact = inb[bi];
        for (idx, op) in insts.iter().enumerate().take(b.end).skip(b.start) {
            if let Some(m) = op.mem_ref() {
                if let Const::Val(base) = read_const(&fact, m.base) {
                    accesses.push(ConstAccess {
                        idx,
                        addr: (base as u64).wrapping_add(m.offset as u64),
                        width: m.width.bytes(),
                        is_store: m.is_store,
                    });
                }
            }
            const_transfer(op, &mut fact);
        }
    }
    accesses.sort_by_key(|a| a.idx);
    accesses
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm};

    fn analyze(build: impl FnOnce(&mut Asm)) -> (Program, Cfg) {
        let mut a = Asm::new();
        build(&mut a);
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        (p, cfg)
    }

    fn uninit(build: impl FnOnce(&mut Asm)) -> Vec<UninitRead> {
        let (p, cfg) = analyze(build);
        let mut entry = RegSet::EMPTY;
        entry.insert(RegRef::Int(0));
        may_uninit_reads(&p, &cfg, entry)
    }

    #[test]
    fn read_before_write_is_flagged_and_write_clears() {
        let reads = uninit(|a| {
            a.addi(T0, T1, 1); // T1 read uninitialized
            a.li(T1, 5);
            a.addi(T2, T1, 1); // T1 now initialized
            a.halt();
        });
        assert_eq!(reads, vec![UninitRead { idx: 0, reg: RegRef::Int(8) }]);
    }

    #[test]
    fn one_uninit_path_is_enough_for_may_analysis() {
        let reads = uninit(|a| {
            let (skip, join) = (a.label(), a.label());
            a.li(T0, 1);
            a.beq(T0, ZERO, skip); // never taken dynamically, but a path
            a.li(T1, 7);
            a.jmp(join);
            a.bind(skip);
            a.li(T2, 0); // T1 not written on this path
            a.bind(join);
            a.add(T3, T1, T0); // T1 maybe-uninit
            a.halt();
        });
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].reg, RegRef::Int(8));
    }

    #[test]
    fn both_paths_initialized_is_clean() {
        let reads = uninit(|a| {
            let (other, join) = (a.label(), a.label());
            a.li(T0, 1);
            a.beq(T0, ZERO, other);
            a.li(T1, 7);
            a.jmp(join);
            a.bind(other);
            a.li(T1, 9);
            a.bind(join);
            a.add(T3, T1, T0);
            a.halt();
        });
        assert!(reads.is_empty(), "{reads:?}");
    }

    #[test]
    fn fp_registers_are_tracked_separately() {
        let reads = uninit(|a| {
            a.fadd(F2, F0, F1); // both FP sources uninit
            a.fli(F0, 1.0);
            a.fadd(F3, F0, F2); // F2 written above: clean
            a.halt();
        });
        assert_eq!(
            reads,
            vec![
                UninitRead { idx: 0, reg: RegRef::Fp(0) },
                UninitRead { idx: 0, reg: RegRef::Fp(1) },
            ]
        );
    }

    #[test]
    fn x0_and_entry_registers_are_never_uninit() {
        let (p, cfg) = analyze(|a| {
            a.add(T0, ZERO, A0); // x0 filtered; A0 preset by the harness
            a.halt();
        });
        let mut entry = RegSet::EMPTY;
        entry.insert(RegRef::Int(0));
        entry.insert(RegRef::Int(1)); // A0
        assert!(may_uninit_reads(&p, &cfg, entry).is_empty());
    }

    #[test]
    fn loop_carried_initialization_converges() {
        // T1 is written inside the loop before the loop re-reads it; the
        // only uninit read is the first iteration's T1... which is written
        // at the top. Fixpoint must not oscillate.
        let reads = uninit(|a| {
            let head = a.label();
            a.li(T0, 0);
            a.bind(head);
            a.li(T1, 3);
            a.add(T0, T0, T1);
            a.slti(T2, T0, 100);
            a.bne(T2, ZERO, head);
            a.halt();
        });
        assert!(reads.is_empty(), "{reads:?}");
    }

    #[test]
    fn call_site_initialization_reaches_the_callee() {
        let reads = uninit(|a| {
            let (f, after) = (a.label(), a.label());
            a.li(A0, 10);
            a.call(f);
            a.jmp(after);
            a.bind(f);
            a.addi(A0, A0, 1); // A0 written at the call site
            a.ret(); // RA written by the call itself
            a.bind(after);
            a.halt();
        });
        assert!(reads.is_empty(), "{reads:?}");
    }

    #[test]
    fn const_prop_tracks_li_addi_and_mov() {
        let (p, cfg) = analyze(|a| {
            a.li(T0, 0x8000);
            a.addi(T1, T0, 0x10);
            a.mov(T2, T1);
            a.ld8(T3, T2, 8); // provably 0x8018
            a.add(T2, T2, T0); // killed
            a.ld8(T4, T2, 0); // no longer constant
            a.halt();
        });
        let acc = const_accesses(&p, &cfg);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0], ConstAccess { idx: 3, addr: 0x8018, width: 8, is_store: false });
    }

    #[test]
    fn const_prop_joins_divergent_values_to_top() {
        let (p, cfg) = analyze(|a| {
            let (other, join) = (a.label(), a.label());
            a.li(T0, 1);
            a.beq(T0, ZERO, other);
            a.li(T1, 0x8000);
            a.jmp(join);
            a.bind(other);
            a.li(T1, 0x9000);
            a.bind(join);
            a.st8(T0, T1, 0); // T1 is 0x8000 or 0x9000: not provable
            a.li(T2, 0x7000);
            a.st8(T0, T2, 16); // provable
            a.halt();
        });
        let acc = const_accesses(&p, &cfg);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].addr, 0x7010);
        assert!(acc[0].is_store);
    }

    #[test]
    fn x0_base_is_the_constant_zero() {
        let (p, cfg) = analyze(|a| {
            a.ld1(T0, ZERO, 0x40);
            a.halt();
        });
        let acc = const_accesses(&p, &cfg);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].addr, 0x40);
    }
}

//! Static verification of assembled [`tinyisa`] programs.
//!
//! The MICA methodology characterizes *inherent* program behavior: a kernel
//! that reads a register it never wrote, jumps out of its text segment, or
//! carries a dead half of its loop body silently skews the 47-metric
//! characterization without failing any dynamic test. This crate analyzes
//! the program text instead of observing an execution:
//!
//! 1. [`Cfg::build`] constructs a basic-block control-flow graph (direct
//!    targets from [`tinyisa::Op::flow`], indirect transfers modeled
//!    conservatively against call return sites and li-materialized text
//!    addresses);
//! 2. reachability lints: unreachable blocks, fall-through off the end of
//!    text, no-reachable-`halt` detection (opt-in — the workload kernels
//!    are endless steady-state loops by design);
//! 3. a forward may-uninitialized dataflow over the integer and FP register
//!    files ([`may_uninit_reads`]) flags read-before-write;
//! 4. memory lints on provably-constant addresses ([`const_accesses`]):
//!    segment bounds, text-segment collisions, width misalignment;
//! 5. structural lints: redundant jumps, no-op branches, self-loops with no
//!    exit, unresolvable indirect transfers;
//! 6. an abstract interpretation ([`Analysis`]) layering dominators and the
//!    natural-loop forest ([`DomTree`], [`LoopForest`]), backward liveness
//!    and reaching definitions ([`Liveness`], [`ReachingDefs`]), and a
//!    forward interval ∧ constant domain ([`AbsState`]) with widening at
//!    loop headers on top of the CFG — and uses constant propagation to
//!    *tighten* the conservative indirect-target pool before the other
//!    passes run;
//! 7. analysis-backed lints: dead stores, memory accesses whose whole value
//!    range provably misses every declared segment, loops whose every exit
//!    branch is statically refuted;
//! 8. a dynamic soundness harness ([`soundness::check_execution`]) that
//!    single-steps a [`tinyisa::Vm`] and refutes the static claims against
//!    every retired instruction.
//!
//! Findings carry a [`Severity`], the offending pc, and the
//! [`tinyisa::disassemble_op`] rendering of the instruction:
//!
//! ```
//! use tinyisa::{Asm, regs::*};
//! use mica_verify::{verify, VerifyConfig, Severity};
//!
//! let mut a = Asm::new();
//! let top = a.label();
//! a.bind(top);
//! a.addi(T0, T0, 1); // T0 is never initialized: read-before-init
//! a.jmp(top);
//! let prog = a.assemble().unwrap();
//!
//! let report = verify(&prog, &VerifyConfig::default());
//! assert_eq!(report.errors().count(), 1);
//! let f = report.errors().next().unwrap();
//! assert_eq!(f.severity, Severity::Error);
//! assert!(f.rendered().contains("addi x7, x7, 1"));
//! ```

mod absint;
mod cfg;
mod dataflow;
mod dom;
mod liveness;
pub mod soundness;

pub use absint::{branch_outcome, transfer, AbsState, Analysis, FpAbs, IntAbs};
pub use cfg::{Block, Cfg};
pub use dataflow::{const_accesses, may_uninit_reads, Const, ConstAccess, RegSet, UninitRead};
pub use dom::{DomTree, LoopForest, NaturalLoop};
pub use liveness::{Liveness, ReachingDefs};
pub use soundness::{check_execution, SoundnessReport, Violation};

use mica_obs as obs;
use std::fmt;
use tinyisa::{disassemble_op, Flow, Op, Program, RegRef, INST_BYTES};

/// Programs verified, across the process.
static PROGRAMS: obs::Counter = obs::Counter::new("verify.programs");
/// Findings produced (errors and warnings together).
static FINDINGS: obs::Counter = obs::Counter::new("verify.findings");

/// How bad a finding is. `Error` findings are behavioral defects (the
/// characterization of the program is not what the kernel author intended);
/// `Warn` findings are suspicious but possibly deliberate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious construct; may be intentional.
    Warn,
    /// Defect: the program does not faithfully express a workload.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// The lint catalog. Each variant is one check; [`Lint::severity`] gives
/// its fixed severity and [`Lint::name`] its stable kebab-case identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// A basic block no path from the entry reaches.
    UnreachableBlock,
    /// Execution can run past the last instruction of the text segment.
    FallsOffEnd,
    /// A register is read while some path from the entry never wrote it.
    UninitRead,
    /// A provably-constant address misses every declared data segment.
    OutOfSegment,
    /// A provably-constant data access lands inside the text segment.
    AccessInText,
    /// A direct branch/jump/call target is outside the text segment.
    BranchTargetOutOfText,
    /// No reachable `halt` (reported only when the config expects one).
    NoReachableHalt,
    /// A provably-constant address is not a multiple of the access width.
    MisalignedAccess,
    /// An unconditional jump to the next instruction (dead control flow).
    JumpToFallthrough,
    /// A conditional branch whose taken target is its own fall-through.
    BranchToFallthrough,
    /// A reachable block whose only successor is itself (reported only when
    /// the config expects a halt — endless steady-state kernels loop by
    /// design).
    SelfLoopNoExit,
    /// An indirect transfer with an empty conservative target pool.
    IndirectUnresolved,
    /// A `li` constant that lands inside the text segment but does not
    /// align to an instruction boundary (a jump through it would split an
    /// instruction).
    SplitTextAddress,
    /// A register written by a reachable instruction that no path ever
    /// reads afterwards (loads and the implicit `call` link write are
    /// exempt — the access, not the value, may be the point).
    DeadStore,
    /// A memory access whose *entire* possible address range (from the
    /// interval analysis) misses every declared data segment.
    IntervalOutOfSegment,
    /// A loop with conditional exit branches, every one of which the
    /// interval analysis refutes: the branch syntax promises an exit the
    /// values can never take.
    LoopNeverExits,
}

impl Lint {
    /// The fixed severity of this lint.
    pub fn severity(self) -> Severity {
        match self {
            Lint::UnreachableBlock
            | Lint::FallsOffEnd
            | Lint::UninitRead
            | Lint::OutOfSegment
            | Lint::AccessInText
            | Lint::BranchTargetOutOfText
            | Lint::DeadStore
            | Lint::IntervalOutOfSegment
            | Lint::LoopNeverExits => Severity::Error,
            Lint::NoReachableHalt
            | Lint::MisalignedAccess
            | Lint::JumpToFallthrough
            | Lint::BranchToFallthrough
            | Lint::SelfLoopNoExit
            | Lint::IndirectUnresolved
            | Lint::SplitTextAddress => Severity::Warn,
        }
    }

    /// Stable kebab-case identifier (used in rendered findings).
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnreachableBlock => "unreachable-block",
            Lint::FallsOffEnd => "falls-off-end",
            Lint::UninitRead => "uninit-read",
            Lint::OutOfSegment => "out-of-segment",
            Lint::AccessInText => "access-in-text",
            Lint::BranchTargetOutOfText => "branch-target-out-of-text",
            Lint::NoReachableHalt => "no-reachable-halt",
            Lint::MisalignedAccess => "misaligned-access",
            Lint::JumpToFallthrough => "jump-to-fallthrough",
            Lint::BranchToFallthrough => "branch-to-fallthrough",
            Lint::SelfLoopNoExit => "self-loop-no-exit",
            Lint::IndirectUnresolved => "indirect-unresolved",
            Lint::SplitTextAddress => "split-text-address",
            Lint::DeadStore => "dead-store",
            Lint::IntervalOutOfSegment => "interval-out-of-segment",
            Lint::LoopNeverExits => "loop-never-exits",
        }
    }
}

/// One verifier finding, anchored to an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity (always `lint.severity()`).
    pub severity: Severity,
    /// Which check fired.
    pub lint: Lint,
    /// Instruction index of the offending site.
    pub idx: usize,
    /// Byte address of the offending site.
    pub pc: u64,
    /// Human-readable description of the defect.
    pub message: String,
    /// `disassemble_op` rendering of the offending instruction.
    pub disasm: String,
}

impl Finding {
    /// One-line rendering: `error[uninit-read] 0x10004: ... | addi x7, x8, 1`.
    pub fn rendered(&self) -> String {
        format!(
            "{}[{}] {:#08x}: {}  |  {}",
            self.severity,
            self.lint.name(),
            self.pc,
            self.message,
            self.disasm
        )
    }
}

/// A named address range a program is allowed to touch with
/// provably-constant addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Human-readable name (shows up in findings).
    pub name: &'static str,
    /// First byte address of the segment.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Segment {
    /// True if `[addr, addr + width)` lies entirely inside the segment.
    fn contains(&self, addr: u64, width: u64) -> bool {
        addr >= self.start && addr.saturating_add(width) <= self.start.saturating_add(self.len)
    }
}

/// What the verifier assumes about the execution environment.
#[derive(Debug, Clone, Default)]
pub struct VerifyConfig {
    /// Registers (besides the hardwired zero) the harness initializes
    /// before running — e.g. arguments preset through `Vm::set_reg`.
    pub entry_regs: Vec<RegRef>,
    /// Declared data segments. When empty, the out-of-segment check is
    /// skipped (text-collision and alignment checks still run).
    pub segments: Vec<Segment>,
    /// Whether the program is expected to reach a `halt`. The workload
    /// kernels are endless steady-state loops, so this defaults to off.
    pub expect_halt: bool,
}

/// The result of [`verify`]: all findings, sorted by instruction index
/// with errors before warnings at the same site.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings.
    pub findings: Vec<Finding>,
}

impl Report {
    /// The `Error`-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error)
    }

    /// The `Warn`-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Warn)
    }

    /// True when no `Error`-severity finding was produced.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{}", finding.rendered())?;
        }
        Ok(())
    }
}

fn reg_name(r: RegRef) -> String {
    match r {
        RegRef::Int(i) => format!("x{i}"),
        RegRef::Fp(i) => format!("f{i}"),
    }
}

/// Run every check against `prog` and collect the findings.
pub fn verify(prog: &Program, config: &VerifyConfig) -> Report {
    let analysis = {
        let _span = obs::span("verify", "analysis");
        Analysis::build(prog, config)
    };
    verify_with_analysis(prog, &analysis, config)
}

/// Like [`verify`], reusing an already-built [`Analysis`] (callers that also
/// want the loop forest or abstract states build it once and share it).
pub fn verify_with_analysis(prog: &Program, analysis: &Analysis, config: &VerifyConfig) -> Report {
    let cfg = analysis.cfg();
    PROGRAMS.incr();
    let mut run_span = obs::span("verify", "verify");
    run_span.attr("insts", prog.insts().len() as u64);
    run_span.attr("blocks", cfg.blocks().len() as u64);
    let insts = prog.insts();
    let mut findings = Vec::new();
    let push = |findings: &mut Vec<Finding>, lint: Lint, idx: usize, message: String| {
        findings.push(Finding {
            severity: lint.severity(),
            lint,
            idx,
            pc: prog.pc_of(idx),
            message,
            disasm: disassemble_op(prog, &insts[idx]),
        });
    };

    // --- (a) reachability ---
    let reach_span = obs::span("verify", "reachability");
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(bi) {
            push(
                &mut findings,
                Lint::UnreachableBlock,
                b.start,
                format!("block of {} instruction(s) is unreachable from the entry", b.end - b.start),
            );
        } else if b.falls_off_end {
            push(
                &mut findings,
                Lint::FallsOffEnd,
                b.last(),
                "execution can fall off the end of the text segment here".to_string(),
            );
        }
    }
    if config.expect_halt && !cfg.reachable_halt(prog) {
        push(
            &mut findings,
            Lint::NoReachableHalt,
            0,
            "no halt instruction is reachable from the entry".to_string(),
        );
    }

    drop(reach_span);

    // --- (b) may-uninitialized register reads ---
    let dataflow_span = obs::span("verify", "dataflow");
    let mut entry = RegSet::EMPTY;
    entry.insert(RegRef::Int(0));
    for r in &config.entry_regs {
        entry.insert(*r);
    }
    let mut seen = std::collections::HashSet::new();
    for read in may_uninit_reads(prog, cfg, entry) {
        if seen.insert((read.idx, read.reg.unified())) {
            push(
                &mut findings,
                Lint::UninitRead,
                read.idx,
                format!(
                    "{} is read here, but some path from the entry never writes it",
                    reg_name(read.reg)
                ),
            );
        }
    }

    drop(dataflow_span);

    // --- (c) constant-address memory lints ---
    let memory_span = obs::span("verify", "memory");
    let text_start = prog.base();
    let text_end = prog.base() + insts.len() as u64 * INST_BYTES;
    for acc in const_accesses(prog, cfg) {
        let end = acc.addr.saturating_add(acc.width);
        let kind = if acc.is_store { "store" } else { "load" };
        if acc.addr < text_end && end > text_start {
            push(
                &mut findings,
                Lint::AccessInText,
                acc.idx,
                format!("{kind} of {} byte(s) at {:#x} lands in the text segment", acc.width, acc.addr),
            );
        } else if !config.segments.is_empty()
            && !config.segments.iter().any(|s| s.contains(acc.addr, acc.width))
        {
            let names: Vec<&str> = config.segments.iter().map(|s| s.name).collect();
            push(
                &mut findings,
                Lint::OutOfSegment,
                acc.idx,
                format!(
                    "{kind} of {} byte(s) at provably-constant address {:#x} misses every \
                     declared data segment ({})",
                    acc.width,
                    acc.addr,
                    names.join(", ")
                ),
            );
        }
        if acc.addr % acc.width != 0 {
            push(
                &mut findings,
                Lint::MisalignedAccess,
                acc.idx,
                format!(
                    "{kind} of {} byte(s) at {:#x} is not {}-byte aligned",
                    acc.width, acc.addr, acc.width
                ),
            );
        }
    }

    drop(memory_span);

    // --- (d) structural lints ---
    let structural_span = obs::span("verify", "structural");
    for (idx, op) in insts.iter().enumerate() {
        if let Some(t) = op.flow().direct_target() {
            if t >= insts.len() {
                push(
                    &mut findings,
                    Lint::BranchTargetOutOfText,
                    idx,
                    format!("target index {t} is outside the {}-instruction text", insts.len()),
                );
            }
        }
        if let Op::Li(_, imm) = *op {
            let v = imm as u64;
            if v > text_start && v < text_end && !(v - text_start).is_multiple_of(INST_BYTES) {
                push(
                    &mut findings,
                    Lint::SplitTextAddress,
                    idx,
                    format!(
                        "constant {v:#x} lands inside the text segment but splits an instruction"
                    ),
                );
            }
        }
    }
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(bi) {
            continue; // already reported as unreachable; avoid pile-on
        }
        let last = b.last();
        match insts[last].flow() {
            Flow::Jump(t) if t == last + 1 => push(
                &mut findings,
                Lint::JumpToFallthrough,
                last,
                "unconditional jump to the next instruction".to_string(),
            ),
            Flow::Branch(t) if t == last + 1 => push(
                &mut findings,
                Lint::BranchToFallthrough,
                last,
                "branch target equals its own fall-through; the branch decides nothing"
                    .to_string(),
            ),
            Flow::IndirectJump | Flow::IndirectCall | Flow::Ret
                if cfg.indirect_targets().is_empty() =>
            {
                push(
                    &mut findings,
                    Lint::IndirectUnresolved,
                    last,
                    "indirect transfer, but the program has no call return sites or \
                     li-materialized text addresses to model it with"
                        .to_string(),
                )
            }
            _ => {}
        }
        if config.expect_halt && b.succs == [bi] {
            push(
                &mut findings,
                Lint::SelfLoopNoExit,
                last,
                "this block's only successor is itself; execution can never leave it"
                    .to_string(),
            );
        }
    }

    drop(structural_span);

    // --- (e) liveness: dead stores ---
    let liveness_span = obs::span("verify", "liveness");
    let liveness = analysis.liveness();
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(bi) {
            continue;
        }
        for (off, op) in insts[b.start..b.end].iter().enumerate() {
            let idx = b.start + off;
            // A load may exist for the access; a call's RA write is ABI.
            if matches!(op, Op::Call(_) | Op::Callr(_)) || op.class() == tinyisa::InstClass::Load
            {
                continue;
            }
            if let Some(d) = op.def() {
                if !liveness.inst_live_out(idx).contains(d) {
                    push(
                        &mut findings,
                        Lint::DeadStore,
                        idx,
                        format!("{} is written here but no path ever reads it again", reg_name(d)),
                    );
                }
            }
        }
    }

    drop(liveness_span);

    // --- (f) interval-range memory lints ---
    let absint_span = obs::span("verify", "absint");
    if !config.segments.is_empty() {
        // Sites the flat-constant pass already reported keep one finding.
        let const_flagged: std::collections::HashSet<usize> = findings
            .iter()
            .filter(|f| matches!(f.lint, Lint::OutOfSegment | Lint::AccessInText))
            .map(|f| f.idx)
            .collect();
        for (bi, b) in cfg.blocks().iter().enumerate() {
            if !cfg.is_reachable(bi) {
                continue;
            }
            for (off, op) in insts[b.start..b.end].iter().enumerate() {
                let idx = b.start + off;
                let Some(m) = op.mem_ref() else { continue };
                if const_flagged.contains(&idx) {
                    continue;
                }
                let Some(st) = analysis.inst_state(idx) else { continue };
                let base = st.read_int(m.base);
                if base.is_top() {
                    continue;
                }
                let width = m.width.bytes();
                let lo = base.lo as i128 + m.offset as i128;
                let one_past = base.hi as i128 + m.offset as i128 + width as i128;
                if lo < 0 || one_past > i64::MAX as i128 {
                    continue; // range could wrap as an address: undecidable
                }
                let (lo, one_past) = (lo as u64, one_past as u64);
                let hits_segment = config
                    .segments
                    .iter()
                    .any(|s| lo < s.start.saturating_add(s.len) && one_past > s.start);
                let hits_text = lo < text_end && one_past > text_start;
                if !hits_segment && !hits_text {
                    let kind = if m.is_store { "store" } else { "load" };
                    push(
                        &mut findings,
                        Lint::IntervalOutOfSegment,
                        idx,
                        format!(
                            "{kind} of {width} byte(s) ranges over [{lo:#x}, {one_past:#x}), \
                             which misses every declared data segment"
                        ),
                    );
                }
            }
        }
    }

    // --- (g) loops whose every exit is statically refuted ---
    for lp in &analysis.loops().loops {
        if lp.exits.is_empty() || !cfg.is_reachable(lp.header) {
            continue; // endless steady-state loops are the kernel shape
        }
        let all_refuted = lp.exits.iter().all(|&(from, to)| {
            let term = cfg.blocks()[from].last();
            let op = &insts[term];
            let Flow::Branch(t) = op.flow() else { return false };
            if term + 1 >= insts.len() {
                return false;
            }
            let taken_block = cfg.block_of(t);
            if taken_block == cfg.block_of(term + 1) {
                return false; // degenerate branch: both ways land together
            }
            let Some(st) = analysis.inst_state(term) else {
                return true; // the exit branch itself can never execute
            };
            branch_outcome(op, st) == Some(to != taken_block)
        });
        if all_refuted {
            let hidx = cfg.blocks()[lp.header].start;
            push(
                &mut findings,
                Lint::LoopNeverExits,
                hidx,
                format!(
                    "loop at depth {} has {} exit branch(es), every one refuted by the value \
                     ranges: execution can never leave it",
                    lp.depth,
                    lp.exits.len()
                ),
            );
        }
    }

    drop(absint_span);

    findings.sort_by_key(|f| (f.idx, f.severity != Severity::Error, f.lint.name()));
    FINDINGS.add(findings.len() as u64);
    run_span.attr("findings", findings.len() as u64);
    Report { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm};

    fn report(build: impl FnOnce(&mut Asm)) -> Report {
        report_with(build, &VerifyConfig::default())
    }

    fn report_with(build: impl FnOnce(&mut Asm), config: &VerifyConfig) -> Report {
        let mut a = Asm::new();
        build(&mut a);
        verify(&a.assemble().unwrap(), config)
    }

    fn lints(r: &Report) -> Vec<Lint> {
        r.findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn clean_kernel_shape_produces_no_findings() {
        let r = report(|a| {
            let (outer, head) = (a.label(), a.label());
            a.li(T0, 0);
            a.li(S0, 0x0100_0000);
            a.bind(outer);
            a.li(T1, 0);
            a.bind(head);
            a.add(T2, S0, T1);
            a.ld1(T3, T2, 0);
            a.add(T0, T0, T3);
            a.addi(T1, T1, 1);
            a.slti(T4, T1, 64);
            a.bne(T4, ZERO, head);
            a.jmp(outer);
        });
        assert!(r.findings.is_empty(), "{r}");
    }

    #[test]
    fn unreachable_block_is_an_error() {
        let r = report(|a| {
            let end = a.label();
            a.jmp(end);
            a.li(T0, 7); // dead
            a.bind(end);
            a.halt();
        });
        assert_eq!(lints(&r), vec![Lint::UnreachableBlock]);
        assert_eq!(r.findings[0].idx, 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn fall_off_end_is_an_error() {
        let r = report(|a| {
            a.li(T0, 8);
            a.st8(T0, T0, 0); // keeps T0 live; still no halt or jump
        });
        assert_eq!(lints(&r), vec![Lint::FallsOffEnd]);
    }

    #[test]
    fn no_reachable_halt_is_opt_in() {
        let endless = |a: &mut Asm| {
            let top = a.label();
            a.li(T0, 0);
            a.li(T1, 1);
            a.bind(top);
            a.add(T0, T0, T1); // loop-carried: every write stays live
            a.jmp(top);
        };
        assert!(report(endless).findings.is_empty());
        let cfg = VerifyConfig { expect_halt: true, ..VerifyConfig::default() };
        let r = report_with(endless, &cfg);
        assert!(lints(&r).contains(&Lint::NoReachableHalt), "{r}");
        assert!(r.findings.iter().all(|f| f.severity == Severity::Warn));
        assert!(r.is_clean());
    }

    #[test]
    fn uninit_read_is_an_error_with_disasm() {
        let r = report(|a| {
            a.fadd(F2, F0, F1);
            a.stf(F2, ZERO, 8); // consume F2 so only the uninit reads lint
            a.halt();
        });
        assert_eq!(lints(&r), vec![Lint::UninitRead, Lint::UninitRead]);
        assert!(r.findings[0].rendered().contains("fadd f2, f0, f1"), "{r}");
        assert!(r.findings[0].message.contains("f0"));
    }

    #[test]
    fn entry_regs_suppress_uninit_reads() {
        let cfg = VerifyConfig {
            entry_regs: vec![RegRef::Int(1), RegRef::Fp(0)],
            ..VerifyConfig::default()
        };
        let r = report_with(
            |a| {
                a.fcvtif(F1, A0);
                a.fadd(F2, F0, F1);
                a.stf(F2, ZERO, 8);
                a.halt();
            },
            &cfg,
        );
        assert!(r.findings.is_empty(), "{r}");
    }

    #[test]
    fn out_of_segment_constant_store_is_an_error() {
        let cfg = VerifyConfig {
            segments: vec![Segment { name: "data", start: 0x8000, len: 0x100 }],
            ..VerifyConfig::default()
        };
        let r = report_with(
            |a| {
                a.li(T0, 0x8000);
                a.li(T1, 5);
                a.st8(T1, T0, 0x0f8); // last slot: fine
                a.st8(T1, T0, 0x100); // one past: out of segment
                a.halt();
            },
            &cfg,
        );
        assert_eq!(lints(&r), vec![Lint::OutOfSegment]);
        assert_eq!(r.findings[0].idx, 3);
        assert!(r.findings[0].message.contains("data"));
    }

    #[test]
    fn without_declared_segments_bounds_are_not_checked() {
        let r = report(|a| {
            a.li(T0, 0xdead_0000);
            a.st8(T0, T0, 0);
            a.halt();
        });
        assert!(r.findings.is_empty(), "{r}");
    }

    #[test]
    fn constant_access_in_text_is_an_error_even_without_segments() {
        let r = report(|a| {
            a.li(T0, 0x1_0000); // the text base itself
            a.st8(T0, T0, 0);
            a.halt();
        });
        assert_eq!(lints(&r), vec![Lint::AccessInText]);
    }

    #[test]
    fn misaligned_constant_access_is_a_warning() {
        let r = report(|a| {
            a.li(T0, 0x8004);
            a.ld8(T1, T0, 0); // 8-byte load at a 4-aligned address
            a.halt();
        });
        assert_eq!(lints(&r), vec![Lint::MisalignedAccess]);
        assert_eq!(r.findings[0].severity, Severity::Warn);
        assert!(r.is_clean());
    }

    #[test]
    fn jump_to_fallthrough_is_a_warning() {
        let r = report(|a| {
            let next = a.label();
            a.jmp(next);
            a.bind(next);
            a.halt();
        });
        assert_eq!(lints(&r), vec![Lint::JumpToFallthrough]);
    }

    #[test]
    fn branch_to_fallthrough_is_a_warning() {
        let r = report(|a| {
            let next = a.label();
            a.li(T0, 1);
            a.beq(T0, ZERO, next);
            a.bind(next);
            a.halt();
        });
        assert_eq!(lints(&r), vec![Lint::BranchToFallthrough]);
    }

    #[test]
    fn self_loop_without_exit_is_a_warning_only_when_a_halt_is_expected() {
        let spin = |a: &mut Asm| {
            let spin = a.label();
            a.li(T0, 1);
            a.bind(spin);
            a.addi(T0, T0, 1);
            a.jmp(spin);
        };
        // Endless loops are the intended kernel shape by default.
        assert!(report(spin).findings.is_empty());
        let cfg = VerifyConfig { expect_halt: true, ..VerifyConfig::default() };
        let r = report_with(spin, &cfg);
        assert!(lints(&r).contains(&Lint::SelfLoopNoExit), "{r}");
    }

    #[test]
    fn unresolvable_ret_is_a_warning() {
        // A `ret` with no call anywhere: the pool is empty.
        let r = report(|a| {
            a.li(RA, 99); // suppress uninit-read of RA... except li is exact
            a.ret();
        });
        // RA holds 99: not a text address, pool empty -> IndirectUnresolved.
        assert!(lints(&r).contains(&Lint::IndirectUnresolved), "{r}");
    }

    #[test]
    fn split_text_address_constant_is_a_warning() {
        let r = report(|a| {
            let top = a.label();
            a.bind(top);
            a.li(ZERO, 0x1_0002); // discarded on purpose; the constant lints
            a.jmp(top);
        });
        assert_eq!(lints(&r), vec![Lint::SplitTextAddress]);
    }

    #[test]
    fn dead_store_is_an_error() {
        let r = report(|a| {
            a.li(T0, 1); // never read again
            a.halt();
        });
        assert_eq!(lints(&r), vec![Lint::DeadStore]);
        assert!(r.findings[0].message.contains("x7"), "{r}");
    }

    #[test]
    fn dead_store_exempts_loads_and_the_call_link_write() {
        let r = report(|a| {
            let f = a.label();
            a.li(T0, 8);
            a.ld8(T1, T0, 0); // T1 unread: the access may be the point
            a.call(f); // RA unread: ABI write
            a.bind(f);
            a.halt();
        });
        assert!(r.findings.is_empty(), "{r}");
    }

    #[test]
    fn interval_range_out_of_segment_is_an_error() {
        let config = VerifyConfig {
            entry_regs: vec![RegRef::Int(1)], // A0 preset by the harness
            segments: vec![Segment { name: "data", start: 0x8000, len: 0x100 }],
            ..VerifyConfig::default()
        };
        let r = report_with(
            |a| {
                let top = a.label();
                a.li(T0, 0x9000);
                a.andi(T1, A0, 0xf8); // [0, 0xf8]: bounded but unknown
                a.add(T2, T0, T1); // [0x9000, 0x90f8]: misses "data" entirely
                a.bind(top);
                a.ld8(T3, T2, 0);
                a.jmp(top);
            },
            &config,
        );
        assert_eq!(lints(&r), vec![Lint::IntervalOutOfSegment]);
        assert!(r.findings[0].message.contains("0x9000"), "{r}");
    }

    #[test]
    fn loop_with_every_exit_refuted_is_an_error() {
        let r = report(|a| {
            let (head, out) = (a.label(), a.label());
            a.li(T0, 5);
            a.li(T1, 0);
            a.bind(head);
            a.addi(T1, T1, 1);
            a.beq(T0, ZERO, out); // T0 is always 5: the exit is fiction
            a.jmp(head);
            a.bind(out);
            a.halt();
        });
        assert_eq!(lints(&r), vec![Lint::LoopNeverExits]);
        assert_eq!(r.findings[0].idx, 2, "anchored at the loop header");
    }

    #[test]
    fn report_renders_one_line_per_finding() {
        let r = report(|a| {
            a.addi(T0, T1, 1);
            a.halt();
        });
        let text = r.to_string();
        assert_eq!(text.lines().count(), r.findings.len());
        assert!(text.contains("error[uninit-read]"), "{text}");
        assert!(text.contains("0x010000"), "{text}");
    }
}

//! Backward liveness and forward reaching definitions over the CFG.
//!
//! Liveness is the classic backward may-analysis: a register is live at a
//! point if some path from that point reads it before writing it. Because
//! the CFG over-approximates indirect control flow (see
//! [`Cfg`](crate::cfg::Cfg)), the computed live sets over-approximate the
//! dynamic ones — which is the sound direction for the dead-store lint (a
//! store is only reported dead if *no* static path reads it) and for the
//! soundness harness (every dynamic read must be statically live).
//!
//! Reaching definitions is the dual forward analysis over definition
//! *sites*: which instruction indices may have produced the current value
//! of each register. The JIT's region former consumes it for rematerialization
//! decisions; here it also backs a def-use consistency check.

use crate::cfg::Cfg;
use crate::dataflow::RegSet;
use tinyisa::{Program, RegRef};

/// Per-block and per-instruction liveness facts.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<RegSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<RegSet>,
    /// Registers live immediately *before* each instruction executes.
    inst_live_in: Vec<RegSet>,
    /// Registers live immediately *after* each instruction executes.
    inst_live_out: Vec<RegSet>,
}

impl Liveness {
    /// Compute liveness for `prog` over `cfg`.
    pub fn compute(prog: &Program, cfg: &Cfg) -> Liveness {
        let insts = prog.insts();
        let nb = cfg.blocks().len();

        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![RegSet::EMPTY; nb];
        let mut kill = vec![RegSet::EMPTY; nb];
        for (bi, b) in cfg.blocks().iter().enumerate() {
            for op in insts[b.start..b.end].iter().rev() {
                if let Some(d) = op.def() {
                    gen[bi].remove(d);
                    kill[bi].insert(d);
                }
                for u in op.uses().iter().flatten() {
                    gen[bi].insert(*u);
                }
            }
        }

        // Backward worklist: out[b] = union of in[succs]; blocks with no
        // successors (halt, fall-off-end) have an empty out set.
        let mut live_in = vec![RegSet::EMPTY; nb];
        let mut live_out = vec![RegSet::EMPTY; nb];
        let mut work: Vec<usize> = (0..nb).collect();
        while let Some(b) = work.pop() {
            let mut o = RegSet::EMPTY;
            for s in &cfg.blocks()[b].succs {
                o = o.union(live_in[*s]);
            }
            live_out[b] = o;
            let i = RegSet(gen[b].0 | (o.0 & !kill[b].0));
            if i != live_in[b] {
                live_in[b] = i;
                for p in &cfg.blocks()[b].preds {
                    if !work.contains(p) {
                        work.push(*p);
                    }
                }
            }
        }

        // Per-instruction facts by a single backward walk per block.
        let n = insts.len();
        let mut inst_live_in = vec![RegSet::EMPTY; n];
        let mut inst_live_out = vec![RegSet::EMPTY; n];
        for (bi, b) in cfg.blocks().iter().enumerate() {
            let mut live = live_out[bi];
            for idx in (b.start..b.end).rev() {
                inst_live_out[idx] = live;
                if let Some(d) = insts[idx].def() {
                    live.remove(d);
                }
                for u in insts[idx].uses().iter().flatten() {
                    live.insert(*u);
                }
                inst_live_in[idx] = live;
            }
        }

        Liveness { live_in, live_out, inst_live_in, inst_live_out }
    }

    /// Registers live immediately before instruction `idx` executes. Every
    /// register `idx` reads is in this set by construction; the interesting
    /// content is what flows through from later uses.
    pub fn inst_live_in(&self, idx: usize) -> RegSet {
        self.inst_live_in[idx]
    }

    /// Registers live immediately after instruction `idx` executes. A
    /// definition at `idx` not in this set is a dead store.
    pub fn inst_live_out(&self, idx: usize) -> RegSet {
        self.inst_live_out[idx]
    }
}

/// Reaching definitions: for each block, the set of definition sites
/// (instruction indices) that may reach its entry.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// Bitset words per block, one bit per instruction index.
    reach_in: Vec<Vec<u64>>,
    words: usize,
    /// `def_reg[i]` is the register instruction `i` defines, if any.
    def_reg: Vec<Option<RegRef>>,
}

impl ReachingDefs {
    /// Compute reaching definitions for `prog` over `cfg`.
    pub fn compute(prog: &Program, cfg: &Cfg) -> ReachingDefs {
        let insts = prog.insts();
        let n = insts.len();
        let nb = cfg.blocks().len();
        let words = n.div_ceil(64);

        let def_reg: Vec<Option<RegRef>> = insts.iter().map(|op| op.def()).collect();

        // All definition sites of each unified register, for kill sets.
        let mut sites_of: [Vec<usize>; 64] = std::array::from_fn(|_| Vec::new());
        for (i, d) in def_reg.iter().enumerate() {
            if let Some(r) = d {
                sites_of[r.unified()].push(i);
            }
        }

        // Per-block transfer as (gen, kill) bitsets.
        let mut genb = vec![vec![0u64; words]; nb];
        let mut killb = vec![vec![0u64; words]; nb];
        for (bi, b) in cfg.blocks().iter().enumerate() {
            for idx in b.start..b.end {
                if let Some(r) = def_reg[idx] {
                    for &site in &sites_of[r.unified()] {
                        killb[bi][site / 64] |= 1 << (site % 64);
                        genb[bi][site / 64] &= !(1u64 << (site % 64));
                    }
                    genb[bi][idx / 64] |= 1 << (idx % 64);
                }
            }
        }

        let mut reach_in = vec![vec![0u64; words]; nb];
        let mut reach_out = vec![vec![0u64; words]; nb];
        let mut work: Vec<usize> = (0..nb).collect();
        while let Some(b) = work.pop() {
            let mut i = vec![0u64; words];
            for p in &cfg.blocks()[b].preds {
                for (w, o) in i.iter_mut().zip(&reach_out[*p]) {
                    *w |= o;
                }
            }
            reach_in[b] = i.clone();
            for w in 0..words {
                i[w] = (i[w] & !killb[b][w]) | genb[b][w];
            }
            if i != reach_out[b] {
                reach_out[b] = i;
                for s in &cfg.blocks()[b].succs {
                    if !work.contains(s) {
                        work.push(*s);
                    }
                }
            }
        }

        ReachingDefs { reach_in, words, def_reg }
    }

    /// The definition sites of `reg` that may reach instruction `idx`
    /// (inside block `block`), in ascending order. Empty means the value can
    /// only be the VM's power-on zero (or a harness preset).
    pub fn defs_reaching(&self, cfg: &Cfg, prog: &Program, block: usize, idx: usize, reg: RegRef) -> Vec<usize> {
        let insts = prog.insts();
        let b = &cfg.blocks()[block];
        debug_assert!((b.start..b.end).contains(&idx));
        // Walk the block prefix: a def of `reg` before `idx` supersedes
        // everything inbound.
        let mut local: Option<usize> = None;
        for j in b.start..idx {
            if self.def_reg[j] == Some(reg) {
                local = Some(j);
            }
        }
        if let Some(j) = local {
            return vec![j];
        }
        let mut out = Vec::new();
        for w in 0..self.words {
            let mut bits = self.reach_in[block][w];
            while bits != 0 {
                let site = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if insts[site].def() == Some(reg) {
                    out.push(site);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm, Program, RegRef};

    fn setup(f: impl FnOnce(&mut Asm)) -> (Program, Cfg, Liveness) {
        let mut a = Asm::new();
        f(&mut a);
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let l = Liveness::compute(&p, &cfg);
        (p, cfg, l)
    }

    #[test]
    fn straight_line_dead_and_live_defs() {
        let (_, _, l) = setup(|a| {
            a.li(T0, 1); // dead: overwritten before any read
            a.li(T0, 2);
            a.addi(T1, T0, 1);
            a.halt();
        });
        let t0 = RegRef::Int(7);
        assert!(!l.inst_live_out(0).contains(t0), "first li T0 is dead");
        assert!(l.inst_live_out(1).contains(t0), "second li T0 is read");
        assert!(l.inst_live_in(2).contains(t0));
    }

    #[test]
    fn loop_keeps_the_induction_variable_live() {
        let (_, cfg, l) = setup(|a| {
            let head = a.label();
            a.li(T0, 0);
            a.bind(head);
            a.addi(T0, T0, 1);
            a.slti(T1, T0, 9);
            a.bne(T1, ZERO, head);
            a.halt();
        });
        let t0 = RegRef::Int(7);
        let head = cfg.block_of(1);
        assert!(l.live_in[head].contains(t0));
        assert!(l.live_out[head].contains(t0), "loop-carried T0 stays live at the latch");
    }

    #[test]
    fn branch_use_keeps_the_condition_live_only_up_to_the_branch() {
        let (_, _, l) = setup(|a| {
            let end = a.label();
            a.li(T1, 3);
            a.beq(T1, ZERO, end);
            a.li(T2, 1);
            a.bind(end);
            a.halt();
        });
        let t1 = RegRef::Int(8);
        assert!(l.inst_live_in(1).contains(t1));
        assert!(!l.inst_live_out(1).contains(t1));
    }

    #[test]
    fn fp_liveness_is_tracked_in_the_upper_half() {
        let (_, _, l) = setup(|a| {
            a.fli(F1, 2.5);
            a.fadd(F2, F1, F1);
            a.halt();
        });
        assert!(l.inst_live_out(0).contains(RegRef::Fp(1)));
        assert!(!l.inst_live_out(1).contains(RegRef::Fp(2)), "F2 is never read");
    }

    #[test]
    fn reaching_defs_merge_at_joins_and_are_killed_locally() {
        let mut a = Asm::new();
        let (other, join) = (a.label(), a.label());
        a.li(T0, 1); // 0
        a.beq(T0, ZERO, other); // 1
        a.li(T1, 7); // 2
        a.jmp(join); // 3
        a.bind(other);
        a.li(T1, 9); // 4
        a.bind(join);
        a.add(T2, T1, T0); // 5: both defs of T1 reach
        a.li(T1, 0); // 6
        a.add(T3, T1, T0); // 7: only the local def reaches
        a.halt();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::compute(&p, &cfg);
        let t1 = RegRef::Int(8);
        let at5 = rd.defs_reaching(&cfg, &p, cfg.block_of(5), 5, t1);
        assert_eq!(at5, vec![2, 4]);
        let at7 = rd.defs_reaching(&cfg, &p, cfg.block_of(7), 7, t1);
        assert_eq!(at7, vec![6]);
    }

    #[test]
    fn use_without_any_def_has_no_reaching_sites() {
        let mut a = Asm::new();
        a.addi(T0, T1, 1); // T1 only holds the power-on zero
        a.halt();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::compute(&p, &cfg);
        assert!(rd.defs_reaching(&cfg, &p, 0, 0, RegRef::Int(8)).is_empty());
    }
}

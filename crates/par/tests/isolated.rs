//! Property test for panic isolation: under an arbitrary injected-panic
//! subset, `par_map_indexed_isolated` returns exactly what
//! `par_map_indexed` would return for the surviving items and an
//! `ItemPanic` for each faulted item — at every pool size from 1 to 8.
//!
//! The panic subset is driven through a real `mica-fault` plan
//! (`panic:kernel=item-N` directives), so the test exercises the same
//! injection path the profiling pipeline uses. The fault plan and
//! `MICA_THREADS` are process-global, which is why this file holds a
//! single test function.

use proptest::prelude::*;

/// A deliberately order-sensitive per-item computation, so any slot mixup
/// or reordering shows up as a value mismatch.
fn work(i: usize) -> u64 {
    let mut acc = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
    for k in 0..64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k ^ i as u64);
    }
    acc
}

fn item_name(i: usize) -> String {
    format!("item-{i}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn isolated_equals_par_map_on_survivors_at_every_pool_size(
        mask in (0usize..=40).prop_flat_map(|n| proptest::collection::vec(any::<bool>(), n..=n)),
    ) {
        let n = mask.len();
        let faulted: Vec<usize> =
            (0..n).filter(|&i| mask[i]).collect();
        let plan_text = faulted
            .iter()
            .map(|&i| format!("panic:kernel={}", item_name(i)))
            .collect::<Vec<_>>()
            .join(",");
        let survivors: Vec<usize> = (0..n).filter(|&i| !mask[i]).collect();

        let saved_threads = std::env::var("MICA_THREADS").ok();
        for threads in 1..=8usize {
            std::env::set_var("MICA_THREADS", threads.to_string());

            // The baseline never consults the plan, so compute it with the
            // plan cleared; it must be independent of the pool size anyway.
            mica_fault::plan::clear();
            let expected: Vec<u64> = mica_par::par_map(&survivors, |&i| work(i));

            mica_fault::plan::install(
                mica_fault::FaultPlan::parse(&plan_text).expect("generated plan parses"),
            );
            let isolated = mica_par::par_map_indexed_isolated(n, |i| {
                let name = item_name(i);
                if mica_fault::plan::should_panic_kernel(&name) {
                    panic!("injected fault: kernel {name} (MICA_FAULTS)");
                }
                work(i)
            });
            mica_fault::plan::clear();

            prop_assert_eq!(isolated.len(), n);
            let mut ok = Vec::new();
            for (i, r) in isolated.into_iter().enumerate() {
                if mask[i] {
                    let e = r.expect_err("faulted item must be quarantined");
                    prop_assert_eq!(e.index, i);
                    prop_assert_eq!(
                        e.payload,
                        format!("injected fault: kernel item-{i} (MICA_FAULTS)")
                    );
                } else {
                    ok.push(r.expect("survivor must complete"));
                }
            }
            prop_assert_eq!(
                &ok, &expected,
                "survivor values must be bit-identical to par_map at {} threads", threads
            );
        }
        match saved_threads {
            Some(v) => std::env::set_var("MICA_THREADS", v),
            None => std::env::remove_var("MICA_THREADS"),
        }
    }
}

//! Chrome-trace worker tracks must be **stable** across pool invocations:
//! every `par_map` call registers its workers through
//! [`mica_obs::set_worker`], so worker `w` always lands on logical tid
//! `1 + w`. A regression here (e.g. falling back to per-OS-thread anonymous
//! tids) would make each pool invocation open a fresh set of lanes in
//! `chrome://tracing` — a 122-benchmark run would render hundreds of
//! one-shot tracks instead of one lane per worker.

use std::sync::Barrier;

fn as_str(v: &serde::Value) -> Option<&str> {
    match v {
        serde::Value::String(s) => Some(s),
        _ => None,
    }
}

fn as_u64(v: &serde::Value) -> Option<u64> {
    match v {
        serde::Value::Number(n) => n.as_u64(),
        _ => None,
    }
}

/// The complete (`"ph":"X"`) events named `name`, as `(tid, ts, dur)`.
fn complete_events(events: &[serde::Value], name: &str) -> Vec<(u64, u64, u64)> {
    events
        .iter()
        .filter(|e| e.field("ph").and_then(as_str) == Some("X"))
        .filter(|e| e.field("name").and_then(as_str) == Some(name))
        .map(|e| {
            (
                e.field("tid").and_then(as_u64).expect("tid"),
                e.field("ts").and_then(as_u64).expect("ts"),
                e.field("dur").and_then(as_u64).expect("dur"),
            )
        })
        .collect()
}

/// Run one `par_map` where a barrier forces all four workers to
/// participate in lockstep, so every worker provably claims chunks.
fn mapped_by_four_workers(barrier: &Barrier) -> Vec<u64> {
    mica_par::par_map_indexed(64, |i| {
        barrier.wait();
        (i as u64).wrapping_mul(6364136223846793005)
    })
}

#[test]
fn two_pool_invocations_reuse_the_same_worker_tracks() {
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");

    let dir = std::env::temp_dir().join(format!("mica_worker_tracks_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let sink =
        mica_obs::add_sink(Box::new(mica_obs::ChromeTraceSink::create(trace_path.clone())));

    // 64 items / 4 workers, and every item waits on a 4-party barrier: the
    // schedule only advances when all four workers run an item at once, so
    // each call is guaranteed to put chunk spans on all four tracks.
    let barrier = Barrier::new(4);
    let first = mapped_by_four_workers(&barrier);
    let second = mapped_by_four_workers(&barrier);
    assert_eq!(first, second, "pure map is deterministic across calls");

    mica_obs::flush();
    mica_obs::remove_sink(sink);
    let doc: serde::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).expect("trace written"))
            .expect("trace parses");
    let events = doc.field("traceEvents").and_then(|v| v.as_array()).expect("traceEvents");

    // Two pool spans on the calling thread, disjoint in time.
    let mut pools = complete_events(events, "par_map");
    pools.sort_by_key(|&(_, ts, _)| ts);
    assert_eq!(pools.len(), 2, "expected one pool span per par_map call");
    assert_eq!(pools[0].0, pools[1].0, "both calls issue from the same thread");
    assert!(pools[0].1 + pools[0].2 <= pools[1].1, "pool spans are disjoint");

    // Partition chunk spans by enclosing pool span; each call must use
    // exactly the worker tracks 1..=4 (tid = 1 + worker index), never the
    // caller's track and never a fresh anonymous tid (>= 1000).
    let chunks = complete_events(events, "chunk");
    for (call, &(pool_tid, pool_ts, pool_dur)) in pools.iter().enumerate() {
        let mut tids: Vec<u64> = chunks
            .iter()
            .filter(|&&(_, ts, _)| ts >= pool_ts && ts <= pool_ts + pool_dur)
            .map(|&(tid, _, _)| tid)
            .collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids, [1, 2, 3, 4], "call {call} chunk tracks");
        assert!(!tids.contains(&pool_tid), "workers never share the caller's track");
    }

    // The worker tracks are named, once each — no duplicate or one-shot
    // lanes in the rendered trace.
    for w in 0..4u64 {
        let tid = 1 + w;
        let want = format!("worker-{w}");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.field("name").and_then(as_str) == Some("thread_name"))
            .filter(|e| e.field("tid").and_then(as_u64) == Some(tid))
            .map(|e| {
                e.field("args")
                    .and_then(|a| a.field("name"))
                    .and_then(as_str)
                    .expect("thread_name args")
            })
            .collect();
        assert_eq!(names, [want.as_str()], "track {tid} is named exactly once");
    }

    std::fs::remove_dir_all(dir).ok();
}

//! Property test for `TraceContext` propagation through the worker pool:
//! for arbitrary nestings of `par_map` inside `par_map_isolated`, run by
//! two *concurrent* "requests", every span stays connected to its
//! request's root context (no orphans) and no span ever records the other
//! request's ids (no cross-wiring). This is the contract the serve daemon
//! leans on — one request, one connected trace, no matter how deep the
//! fan-out or how interleaved the requests.

use mica_obs as obs;
use mica_par as par;
use obs::{add_sink, remove_sink, MemorySink, SpanRecord, TraceContext};
use proptest::prelude::*;
use std::sync::Once;

fn init_env() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        // Before the first obs touch: a real pool (so propagation actually
        // crosses threads) and no stderr/file sinks.
        std::env::set_var("MICA_THREADS", "3");
        std::env::set_var("MICA_LOG", "off");
        std::env::remove_var("MICA_TRACE");
        std::env::remove_var("MICA_EVENTS");
    });
}

/// One simulated request: fresh context, a root span, then an isolated
/// outer map whose items optionally fan out again with a nested plain
/// `par_map`. Returns the request's root context.
fn run_request(r: usize, outer: usize, inner: usize, nest: bool) -> TraceContext {
    let ctx = TraceContext::fresh();
    let _g = obs::install_context(Some(ctx));
    let _root = obs::span("ctxprop", format!("r{r}-root"));
    let results = par::par_map_indexed_isolated(outer, |i| {
        let mut item = obs::span("ctxprop", format!("r{r}-item"));
        item.attr("i", i as u64);
        if nest {
            par::par_map_indexed(inner, |j| {
                let _leaf = obs::span("ctxprop", format!("r{r}-leaf"));
                j
            })
            .len()
        } else {
            i
        }
    });
    assert_eq!(results.len(), outer);
    assert!(results.iter().all(Result::is_ok));
    ctx
}

/// Assert every span of `trace` chains (through parents within the same
/// trace) up to the virtual root `ctx.span_id`.
fn assert_connected(spans: &[SpanRecord], ctx: TraceContext) {
    let mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == ctx.trace_id).collect();
    assert!(!mine.is_empty(), "request produced no spans");
    let ids: std::collections::BTreeSet<u64> = mine.iter().map(|s| s.span_id).collect();
    assert_eq!(ids.len(), mine.len(), "span ids must be unique within a trace");
    for s in &mine {
        assert!(
            s.parent_id == ctx.span_id || ids.contains(&s.parent_id),
            "orphaned span {} ({}): parent {} is neither the root nor in-trace",
            s.span_id,
            s.name,
            s.parent_id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn nested_pools_never_orphan_or_cross_wire(
        outer_a in 1usize..6,
        inner_a in 1usize..5,
        nest_a in any::<bool>(),
        outer_b in 1usize..6,
        inner_b in 1usize..5,
        nest_b in any::<bool>(),
    ) {
        init_env();
        let sink = MemorySink::new();
        let id = add_sink(Box::new(sink.clone()));
        let (ctx_a, ctx_b) = std::thread::scope(|scope| {
            let a = scope.spawn(move || run_request(0, outer_a, inner_a, nest_a));
            let b = scope.spawn(move || run_request(1, outer_b, inner_b, nest_b));
            (a.join().expect("request A"), b.join().expect("request B"))
        });
        remove_sink(id);
        prop_assert_ne!(ctx_a.trace_id, ctx_b.trace_id);

        let spans: Vec<SpanRecord> = sink
            .spans()
            .into_iter()
            .filter(|s| s.trace_id == ctx_a.trace_id || s.trace_id == ctx_b.trace_id)
            .collect();

        // No orphans: every span of each request reaches its root.
        assert_connected(&spans, ctx_a);
        assert_connected(&spans, ctx_b);

        // No cross-wiring: spans named for one request never carry the
        // other's trace id, and each request kept all its items.
        for s in &spans {
            if s.name.starts_with("r0-") {
                prop_assert_eq!(s.trace_id, ctx_a.trace_id, "span {} cross-wired", &s.name);
            }
            if s.name.starts_with("r1-") {
                prop_assert_eq!(s.trace_id, ctx_b.trace_id, "span {} cross-wired", &s.name);
            }
        }
        let items_a = spans.iter().filter(|s| s.name == "r0-item").count();
        let items_b = spans.iter().filter(|s| s.name == "r1-item").count();
        prop_assert_eq!(items_a, outer_a);
        prop_assert_eq!(items_b, outer_b);
        if nest_a {
            let leaves = spans.iter().filter(|s| s.name == "r0-leaf").count();
            prop_assert_eq!(leaves, outer_a * inner_a);
        }
    }
}

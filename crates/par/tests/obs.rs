//! Observability of the worker pool: chunk spans land on per-worker
//! logical threads, never interleave within a track, and the pool counters
//! account for every task — all without perturbing the mapped results.

use mica_obs::{add_sink, remove_sink, MemorySink, Record};

#[test]
fn pool_spans_nest_per_worker_and_counters_add_up() {
    // Before the first obs call: fixed pool width, no stderr/file sinks.
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");

    let mem = MemorySink::new();
    let id = add_sink(Box::new(mem.clone()));

    const N: usize = 123;
    let out = mica_par::par_map_indexed(N, |i| i * 3 + 1);
    assert_eq!(out, (0..N).map(|i| i * 3 + 1).collect::<Vec<_>>());

    remove_sink(id);
    let spans: Vec<_> = mem
        .records()
        .into_iter()
        .filter_map(|r| match r {
            Record::Span(s) => Some(s),
            Record::Event(_) => None,
        })
        .collect();

    // One pool span on the caller, at least one chunk span per busy worker.
    let pools: Vec<_> = spans.iter().filter(|s| s.name == "par_map").collect();
    let chunks: Vec<_> = spans.iter().filter(|s| s.name == "chunk").collect();
    assert_eq!(pools.len(), 1);
    assert!(!chunks.is_empty());
    assert!(
        pools[0].attrs.iter().any(|(k, v)| *k == "items" && v.to_string() == "123"),
        "pool span records the item count"
    );

    // Chunk spans run only on registered worker tracks 1..=4, and their
    // `len` attributes sum to the full input.
    let mut total_len = 0u64;
    for c in &chunks {
        assert!((1..=4).contains(&c.tid), "chunk on unexpected tid {}", c.tid);
        let len = c
            .attrs
            .iter()
            .find_map(|(k, v)| (*k == "len").then(|| v.to_string().parse::<u64>().unwrap()))
            .expect("chunk span has len attr");
        total_len += len;
    }
    assert_eq!(total_len, N as u64);

    // Stack discipline per worker track: a worker's chunk intervals are
    // sequential — each starts at or after the previous one ended. (The
    // whole-pool span lives on the caller's track, so cross-track overlap
    // is expected; within a track it would corrupt a Chrome trace.)
    for tid in 1..=4u64 {
        let mut mine: Vec<(u64, u64)> = chunks
            .iter()
            .filter(|c| c.tid == tid)
            .map(|c| (c.ts_us, c.ts_us + c.dur_us))
            .collect();
        mine.sort_unstable();
        for pair in mine.windows(2) {
            assert!(pair[1].0 >= pair[0].1, "overlapping chunks on worker {tid}");
        }
    }

    // Context propagation: every chunk span parents to the pool span that
    // submitted it (workers inherit the submitter's context), sharing its
    // trace id — here 0, because no TraceContext was installed.
    for c in &chunks {
        assert_eq!(c.parent_id, pools[0].span_id, "chunk orphaned from its pool span");
        assert_eq!(c.trace_id, pools[0].trace_id);
    }
    assert_eq!(pools[0].trace_id, 0, "untraced caller yields trace 0");

    // Counters: every task accounted for, chunk count consistent with the
    // span stream, steals are chunks beyond each worker's first.
    let counters = mica_obs::counters();
    let get = |name: &str| {
        counters
            .iter()
            .find_map(|(n, v)| (n == name).then_some(*v))
            .unwrap_or_else(|| panic!("counter {name} not registered"))
    };
    assert!(get("par.tasks") >= N as u64);
    assert!(get("par.pools") >= 1);
    assert!(get("par.chunks") >= chunks.len() as u64);
    assert!(get("par.steals") <= get("par.chunks"));
}

//! A small deterministic parallel-map layer on `std::thread::scope`.
//!
//! The profiling pipeline runs 122 independent benchmark simulations and
//! the GA fitness pass evaluates whole populations of independent genomes;
//! both are embarrassingly parallel but must stay **bit-for-bit identical**
//! to their serial counterparts (the experiments are scientific artifacts —
//! see CounterPoint's reproducibility argument). This crate provides that:
//!
//! - work distribution is dynamic (a lock-free shared counter hands out
//!   chunks of indices, so fast workers steal remaining work from the tail),
//! - but each result is written into the slot of its *input index*, so the
//!   merged output is always in input order, independent of scheduling, and
//! - the worker function receives nothing but the item, so a computation
//!   that is deterministic serially stays deterministic in parallel.
//!
//! Thread count comes from [`num_threads`]: the `MICA_THREADS` environment
//! variable when set, else the machine's available parallelism. With one
//! thread every entry point degenerates to an inline serial loop with zero
//! thread overhead.
//!
//! Two panic policies are offered. [`par_map`] / [`par_map_indexed`]
//! propagate a worker panic (abort semantics — one bad item kills the
//! run). [`par_map_isolated`] / [`par_map_indexed_isolated`] catch each
//! item's panic and return it as a per-item [`ItemPanic`] error while the
//! remaining items complete; on the all-`Ok` path the results are
//! bit-identical to the propagating variants. The resilient profiling
//! pipeline quarantines the `Err` items and continues on the survivors.
//!
//! The pool is instrumented with `mica-obs`: each `par_map` call opens a
//! `par`-category span on the calling thread, each claimed chunk opens a
//! child span on its worker (workers register logical thread ids via
//! [`mica_obs::set_worker`], so Chrome traces show one lane per worker),
//! and the `par.pools` / `par.tasks` / `par.chunks` / `par.steals`
//! counters plus the `par.chunk_us` histogram feed run summaries. None of
//! this touches the data path: results are bit-identical with tracing on,
//! off, or absent.

use mica_obs as obs;
use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::mem::MaybeUninit;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;
use std::thread;
use std::time::Instant;

/// Pool invocations that actually spawned workers (serial fallbacks not
/// counted).
static POOLS: obs::Counter = obs::Counter::new("par.pools");
/// Items mapped, across both the parallel and serial paths.
static TASKS: obs::Counter = obs::Counter::new("par.tasks");
/// Chunks of indices claimed from the shared counter.
static CHUNKS: obs::Counter = obs::Counter::new("par.chunks");
/// Chunks a worker claimed beyond its first — the work it "stole" from the
/// static share a fixed partition would have given it.
static STEALS: obs::Counter = obs::Counter::new("par.steals");
/// Wall time per claimed chunk, microseconds.
static CHUNK_US: obs::Histogram = obs::Histogram::new("par.chunk_us");
/// Worker panics converted into per-item errors by the `*_isolated` entry
/// points.
static PANICS_CAUGHT: obs::Counter = obs::Counter::new("par.panics_caught");

/// Upper bound on indices claimed at once; keeps the tail of the schedule
/// fine-grained enough to balance uneven item costs (benchmark budgets vary
/// ~8x across the table).
const MAX_CHUNK: usize = 16;

/// The worker-pool size: `MICA_THREADS` if set to a positive integer, else
/// the machine's available parallelism, else 1.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("MICA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid MICA_THREADS={v:?}");
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One output slot, written exactly once by whichever worker claims its
/// index.
struct Slot<R>(UnsafeCell<MaybeUninit<R>>);

/// SAFETY: the claim counter hands each index to exactly one worker, so no
/// two threads ever touch the same slot; the scope joins every worker
/// before the slots are read.
unsafe impl<R: Send> Sync for Slot<R> {}

/// Map `f` over `0..n` on the worker pool, returning results in index
/// order.
///
/// Equivalent to `(0..n).map(f).collect()` — including bit-identical
/// results when `f` is pure — but executed by [`num_threads`] workers
/// stealing chunks of indices from a shared atomic counter.
///
/// # Panics
///
/// Propagates a panic from `f`. (Results computed before the panic are
/// leaked, not dropped; all workloads in this crate's users treat a panic
/// as fatal.)
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = num_threads().min(n.max(1));
    TASKS.add(n as u64);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    POOLS.incr();
    let mut pool_span = obs::span("par", "par_map");
    pool_span.attr("items", n as u64);
    pool_span.attr("threads", threads as u64);
    // Capture the submitting thread's trace context *after* the pool span
    // opened, so worker-side chunk spans parent to the pool span and the
    // whole fan-out stays one connected tree under the submitter's trace
    // (e.g. a serve request). `None` when untraced — installing that is
    // an explicit detach, which keeps a worker from inheriting a stale
    // context from whatever it ran previously.
    let submitted_ctx = obs::current_context();

    // Aim for several chunks per worker so uneven item costs rebalance.
    let chunk = (n / (threads * 4)).clamp(1, MAX_CHUNK);
    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<R>> = (0..n).map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit()))).collect();

    thread::scope(|scope| {
        let next = &next;
        let slots = &slots;
        let f = &f;
        for w in 0..threads {
            scope.spawn(move || {
                obs::set_worker(w);
                let _ctx = obs::install_context(submitted_ctx);
                let mut claimed = 0u64;
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    claimed += 1;
                    let end = (start + chunk).min(n);
                    let began = Instant::now();
                    let mut chunk_span = obs::span("par", "chunk");
                    chunk_span.attr("start", start as u64);
                    chunk_span.attr("len", (end - start) as u64);
                    for (i, slot) in slots.iter().enumerate().take(end).skip(start) {
                        let value = f(i);
                        // SAFETY: index i was claimed exactly once (fetch_add
                        // hands out disjoint ranges), so this slot is written by
                        // this thread only.
                        unsafe { (*slot.0.get()).write(value) };
                    }
                    drop(chunk_span);
                    CHUNK_US.record(began.elapsed().as_micros() as u64);
                }
                CHUNKS.add(claimed);
                STEALS.add(claimed.saturating_sub(1));
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            // SAFETY: every index below `n` was claimed and written before
            // the scope joined.
            unsafe { s.0.into_inner().assume_init() }
        })
        .collect()
}

/// Map `f` over a slice on the worker pool, returning results in item
/// order. See [`par_map_indexed`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

// ---------------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------------

/// A panic caught while mapping one item with [`par_map_isolated`] /
/// [`par_map_indexed_isolated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Input index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads
    /// verbatim, anything else a placeholder).
    pub payload: String,
}

impl fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.payload)
    }
}

impl std::error::Error for ItemPanic {}

fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Dispose of a caught panic payload without letting it unwind again: a
/// payload whose `Drop` itself panics (a "drop bomb", e.g. from
/// `panic_any`) would otherwise escape the `catch_unwind` that caught the
/// original panic and tear down the worker pool.
fn dispose_payload(payload: Box<dyn std::any::Any + Send>) {
    if panic::catch_unwind(AssertUnwindSafe(move || drop(payload))).is_err() {
        obs::warn!("isolated panic payload panicked on drop; suppressed");
    }
}

thread_local! {
    /// Depth of isolated sections on this thread; while positive, the
    /// panic hook stays quiet (the catch site reports instead).
    static ISOLATED: Cell<u32> = const { Cell::new(0) };
}

/// Install (once) a panic-hook wrapper that suppresses the default
/// "thread panicked at ..." stderr dump for panics that are about to be
/// caught and converted into [`ItemPanic`]s, and forwards everything else
/// to the previously installed hook untouched.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if ISOLATED.with(|c| c.get()) == 0 {
                prev(info);
            }
        }));
    });
}

/// RAII marker for "panics here are isolated"; keeps the flag balanced
/// even when the closure panics.
struct IsolatedSection;

impl IsolatedSection {
    fn enter() -> IsolatedSection {
        ISOLATED.with(|c| c.set(c.get() + 1));
        IsolatedSection
    }
}

impl Drop for IsolatedSection {
    fn drop(&mut self) {
        ISOLATED.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Map `f` over `0..n` like [`par_map_indexed`], but convert a panic in
/// `f(i)` into `Err(`[`ItemPanic`]`)` for that item while every other item
/// completes normally.
///
/// On the all-`Ok` path the produced values are the exact values
/// [`par_map_indexed`] would produce, in the same input order — isolation
/// is free of behavioral cost, so resilient callers can use it
/// unconditionally. The panic-propagating [`par_map`] family remains for
/// callers that *want* abort semantics.
///
/// `f` is wrapped in [`AssertUnwindSafe`] internally: the closure runs on
/// an isolated item, and a panicking item's partial effects are confined
/// to values that are dropped with the unwound stack. Callers sharing
/// interior-mutable state across items must ensure a panicking item leaves
/// that state consistent (the profiling pipeline shares nothing).
pub fn par_map_indexed_isolated<R, F>(n: usize, f: F) -> Vec<Result<R, ItemPanic>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    install_quiet_hook();
    par_map_indexed(n, |i| {
        let _quiet = IsolatedSection::enter();
        panic::catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| {
            PANICS_CAUGHT.incr();
            let item = ItemPanic { index: i, payload: payload_string(payload.as_ref()) };
            dispose_payload(payload);
            obs::warn!("isolated worker panic: {item}");
            item
        })
    })
}

/// Map `f` over a slice with per-item panic isolation. See
/// [`par_map_indexed_isolated`].
pub fn par_map_isolated<T, R, F>(items: &[T], f: F) -> Vec<Result<R, ItemPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_isolated(items.len(), |i| f(&items[i]))
}

/// A lock-free completion counter for progress reporting from workers.
///
/// `tick` increments and returns the new count; workers can use it to
/// render `[done/total]` style progress without a mutex (lines may
/// interleave across threads, but the counter itself never misses).
#[derive(Debug, Default)]
pub struct Progress {
    done: AtomicUsize,
}

impl Progress {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Progress::default()
    }

    /// Record one completed item; returns the total completed so far.
    pub fn tick(&self) -> usize {
        self.done.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Completed items so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn matches_serial_map_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let parallel = par_map(&items, |x| x * x + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let out = par_map_indexed(counters.len(), |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..counters.len()).collect::<Vec<_>>());
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn uneven_work_still_merges_in_order() {
        // Index-dependent busy work so chunks finish out of order.
        let out = par_map_indexed(64, |i| {
            let spin = if i % 7 == 0 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn non_copy_results_are_moved_intact() {
        let out = par_map_indexed(100, |i| vec![i; i % 5]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i % 5);
            assert!(v.iter().all(|&x| x == i));
        }
    }

    #[test]
    fn progress_counts_all_ticks() {
        let p = Progress::new();
        par_map_indexed(500, |i| {
            p.tick();
            i
        });
        assert_eq!(p.done(), 500);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn isolated_matches_par_map_when_nothing_panics() {
        let items: Vec<u64> = (0..500).collect();
        let plain = par_map(&items, |x| x.wrapping_mul(2654435761).wrapping_add(11));
        let isolated = par_map_isolated(&items, |x| x.wrapping_mul(2654435761).wrapping_add(11));
        assert_eq!(isolated.len(), plain.len());
        for (i, (got, want)) in isolated.into_iter().zip(plain).enumerate() {
            assert_eq!(got, Ok(want), "item {i}");
        }
    }

    #[test]
    fn isolated_converts_panics_to_item_errors_and_survivors_complete() {
        let out = par_map_indexed_isolated(97, |i| {
            if i % 10 == 3 {
                panic!("boom at {i}");
            }
            i * i
        });
        assert_eq!(out.len(), 97);
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, i);
                assert_eq!(e.payload, format!("boom at {i}"));
            } else {
                assert_eq!(r, &Ok(i * i));
            }
        }
    }

    #[test]
    fn isolated_renders_string_and_opaque_payloads() {
        let out = par_map_indexed_isolated(3, |i| match i {
            0 => panic!("static str"),
            1 => std::panic::panic_any(42u32),
            _ => i,
        });
        assert_eq!(out[0].as_ref().unwrap_err().payload, "static str");
        assert_eq!(out[1].as_ref().unwrap_err().payload, "non-string panic payload");
        assert_eq!(out[2], Ok(2));
        let shown = format!("{}", out[0].as_ref().unwrap_err());
        assert_eq!(shown, "item 0 panicked: static str");
    }

    #[test]
    fn isolated_all_items_panicking_still_returns_every_index() {
        let out = par_map_indexed_isolated(37, |i| -> usize { panic!("down {i}") });
        assert_eq!(out.len(), 37);
        for (i, r) in out.into_iter().enumerate() {
            assert_eq!(r.unwrap_err().index, i);
        }
    }

    #[test]
    fn isolated_handles_empty_input() {
        assert_eq!(par_map_indexed_isolated(0, |i| i), Vec::<Result<usize, ItemPanic>>::new());
        // Zero items must leave the quiet-hook balance intact: a normal
        // panic afterwards still unwinds (and is catchable) as usual.
        let caught = panic::catch_unwind(|| panic!("after empty"));
        assert!(caught.is_err());
    }

    /// A panic payload that panics again when dropped ("drop bomb").
    struct DropBomb;

    impl Drop for DropBomb {
        fn drop(&mut self) {
            if !thread::panicking() {
                panic!("payload drop bomb");
            }
            // Already unwinding: stay silent so the *original* abort-on-
            // double-panic path is never entered from test teardown.
        }
    }

    #[test]
    fn isolated_survives_payload_that_panics_on_drop() {
        let out = par_map_indexed_isolated(64, |i| {
            if i == 21 {
                std::panic::panic_any(DropBomb);
            }
            i + 1
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i == 21 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 21);
                assert_eq!(e.payload, "non-string panic payload");
            } else {
                assert_eq!(r, &Ok(i + 1));
            }
        }
        // The pool and the quiet hook both recovered: a fresh map works,
        // isolation still catches, and plain panics still propagate.
        let again = par_map_indexed(128, |i| i * 3);
        assert_eq!(again, (0..128).map(|i| i * 3).collect::<Vec<_>>());
        let isolated = par_map_indexed_isolated(3, |i| -> usize {
            if i == 1 {
                panic!("still caught");
            }
            i
        });
        assert_eq!(isolated[1].as_ref().unwrap_err().payload, "still caught");
        assert!(panic::catch_unwind(|| panic!("still loud")).is_err());
    }
}

//! The [`Runner`] run report: `results/run-<bin>.json` must round-trip
//! through the serde layer and carry the stage timings and counters the CI
//! dashboards key on.

use mica_experiments::profile::Quarantine;
use mica_experiments::runner::{Runner, RunSummary};

/// Both tests point `MICA_RESULTS_DIR` at their own directory; serialize
/// them so the process-global env var never flips mid-run.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn finish_writes_a_parseable_run_summary() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("mica_runner_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("MICA_RESULTS_DIR", &dir);
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");
    std::env::set_var("MICA_THREADS", "3");
    std::env::set_var("MICA_SCALE", "0.125");

    static HIST: mica_obs::Histogram = mica_obs::Histogram::new("runner.test.hist_us");
    for v in [10u64, 100, 1000] {
        HIST.record(v);
    }

    let mut run = Runner::new("testbin");
    let answer = run.stage("warmup", || 41 + 1);
    assert_eq!(answer, 42);
    run.stage("spin", || {
        let mut acc = 0u64;
        for i in 0..50_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        assert!(acc > 0);
    });
    let returned = run.finish();

    let path = dir.join("run-testbin.json");
    let text = std::fs::read_to_string(&path).expect("run summary exists");
    let parsed: RunSummary = serde_json::from_str(&text).expect("summary parses");
    assert_eq!(parsed, returned);

    assert_eq!(parsed.bin, "testbin");
    assert_eq!(parsed.threads, 3);
    assert!((parsed.scale - 0.125).abs() < 1e-12);
    assert_eq!(parsed.table_fingerprint, mica_workloads::table_fingerprint());
    assert!(parsed.wall_s > 0.0);

    let stage_names: Vec<&str> = parsed.stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(stage_names, ["warmup", "spin"]);
    assert!(parsed.stages.iter().all(|s| s.wall_s >= 0.0));
    assert!(parsed.wall_s >= parsed.stages.iter().map(|s| s.wall_s).sum::<f64>());

    // Runner::new registers the profiling counters, so they appear (at
    // least at zero) even though this test never profiled anything.
    let counter_names: Vec<&str> = parsed.counters.iter().map(|c| c.name.as_str()).collect();
    for expected in ["profile.kernels", "profile.cache.hit", "profile.cache.miss.absent"] {
        assert!(counter_names.contains(&expected), "missing counter {expected}");
    }
    let mut sorted = counter_names.clone();
    sorted.sort_unstable();
    assert_eq!(counter_names, sorted, "counters are sorted by name");

    // A run that quarantined nothing reports an empty list.
    assert!(parsed.quarantined.is_empty(), "clean run quarantines nothing");

    // Histograms ride along with their raw buckets (trailing zeros
    // trimmed) and stay sorted; the one recorded above must round-trip
    // into a queryable snapshot.
    let hist_names: Vec<&str> = parsed.histograms.iter().map(|h| h.name.as_str()).collect();
    let mut hist_sorted = hist_names.clone();
    hist_sorted.sort_unstable();
    assert_eq!(hist_names, hist_sorted, "histograms are sorted by name");
    let marker = parsed
        .histograms
        .iter()
        .find(|h| h.name == "runner.test.hist_us")
        .expect("recorded histogram appears in the summary");
    assert!(marker.count >= 3);
    assert!(marker.buckets.last() != Some(&0), "trailing zero buckets are trimmed");
    assert!(marker.to_snapshot().quantile_upper_bound(1.0) >= 1000);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn quarantine_list_round_trips_through_the_summary() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("mica_runner_quarantine_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("MICA_RESULTS_DIR", &dir);
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");

    let mut run = Runner::new("qbin");
    run.stage("noop", || ());
    run.quarantine(&[
        Quarantine {
            name: "MiBench/CRC32/pcm".to_string(),
            reason: "panic: injected fault: kernel CRC32 (MICA_FAULTS)".to_string(),
        },
        Quarantine { name: "SPEC2000/bzip2/graphic".to_string(), reason: "io error".to_string() },
    ]);
    let returned = run.finish();

    let text = std::fs::read_to_string(dir.join("run-qbin.json")).expect("run summary exists");
    let parsed: RunSummary = serde_json::from_str(&text).expect("summary parses");
    assert_eq!(parsed, returned);
    assert_eq!(parsed.quarantined.len(), 2);
    assert_eq!(parsed.quarantined[0].name, "MiBench/CRC32/pcm");
    assert!(parsed.quarantined[0].reason.contains("MICA_FAULTS"));
    assert_eq!(parsed.quarantined[1].name, "SPEC2000/bzip2/graphic");

    std::fs::remove_dir_all(dir).ok();
}

//! The profile cache must explain itself: every way a cached `ProfileSet`
//! can be unusable maps to a distinct [`CacheMiss`] reason, and a reusable
//! cache is accepted verbatim.

use mica_experiments::profile::{check_cache, profile_benchmark, profile_fingerprint, CacheMiss};
use mica_experiments::results::ProfileSet;
use mica_workloads::benchmark_table;
use std::path::PathBuf;

fn init() -> PathBuf {
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");
    let dir = std::env::temp_dir().join(format!("mica_cache_reasons_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A well-formed cache at `scale` with the current fingerprint: one real
/// record cloned across the whole table.
fn good_set(scale: f64) -> ProfileSet {
    let spec = benchmark_table().into_iter().find(|b| b.program == "CRC32").unwrap();
    let rec = profile_benchmark(&spec, 10_000).unwrap();
    ProfileSet {
        scale,
        fingerprint: profile_fingerprint(),
        records: vec![rec; benchmark_table().len()],
    }
}

#[test]
fn every_rejection_reason_is_distinguished() {
    let dir = init();

    // Absent: no file at all.
    let missing = dir.join("nope.json");
    assert_eq!(check_cache(&missing, 1.0), Err(CacheMiss::Absent));
    assert_eq!(CacheMiss::Absent.reason(), "absent");

    // Unreadable: the path exists but cannot be read as a file.
    let as_dir = dir.join("cache_is_a_dir.json");
    std::fs::create_dir_all(&as_dir).unwrap();
    match check_cache(&as_dir, 1.0) {
        Err(CacheMiss::Unreadable(_)) => {}
        other => panic!("expected Unreadable, got {other:?}"),
    }

    // Parse: not a ProfileSet.
    let garbled = dir.join("garbled.json");
    std::fs::write(&garbled, "{\"scale\": oops").unwrap();
    let miss = check_cache(&garbled, 1.0).unwrap_err();
    assert!(matches!(miss, CacheMiss::Parse(_)), "got {miss:?}");
    assert_eq!(miss.reason(), "parse");

    let good = good_set(0.5);

    // Scale: cached at a different budget multiplier.
    let path = dir.join("profiles.json");
    good.save(&path).unwrap();
    assert_eq!(
        check_cache(&path, 0.25),
        Err(CacheMiss::Scale { cached: 0.5, requested: 0.25 })
    );

    // Fingerprint: a different workload table or metric layout.
    let mut stale = good.clone();
    stale.fingerprint ^= 1;
    stale.save(&path).unwrap();
    assert_eq!(
        check_cache(&path, 0.5),
        Err(CacheMiss::Fingerprint {
            cached: profile_fingerprint() ^ 1,
            current: profile_fingerprint()
        })
    );

    // Size: record count drifted from the table.
    let mut short = good.clone();
    short.records.pop();
    short.save(&path).unwrap();
    assert_eq!(
        check_cache(&path, 0.5),
        Err(CacheMiss::Size { cached: benchmark_table().len() - 1, expected: benchmark_table().len() })
    );

    // And the happy path: the good cache round-trips untouched.
    good.save(&path).unwrap();
    assert_eq!(check_cache(&path, 0.5), Ok(good));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn hit_and_miss_feed_the_cache_counters() {
    let dir = init();
    let path = dir.join("counted.json");
    let before: std::collections::BTreeMap<String, u64> =
        mica_obs::counters().into_iter().collect();
    let get = |snap: &std::collections::BTreeMap<String, u64>, name: &str| {
        snap.get(name).copied().unwrap_or(0)
    };

    // First call: absent cache -> miss.absent, then the re-profile result
    // is cached; second call: hit.
    let first = mica_experiments::profile::load_or_profile_all(&path, 1e-9).unwrap();
    let second = mica_experiments::profile::load_or_profile_all(&path, 1e-9).unwrap();
    assert_eq!(first, second);

    let after: std::collections::BTreeMap<String, u64> = mica_obs::counters().into_iter().collect();
    assert_eq!(
        get(&after, "profile.cache.miss.absent"),
        get(&before, "profile.cache.miss.absent") + 1
    );
    assert_eq!(get(&after, "profile.cache.hit"), get(&before, "profile.cache.hit") + 1);

    std::fs::remove_dir_all(dir).ok();
}

/// Corrupt caches — the artifacts a crash mid-write would leave behind if
/// writes were not atomic — must be rejected with `CacheMiss::Parse`, and a
/// re-profile must rewrite the cache in place through the atomic temp-file
/// protocol (no `.profiles.json.tmp` survivor, old-or-new content only).
#[test]
fn corrupted_caches_reject_cleanly_and_rewrite_atomically() {
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");
    let dir = std::env::temp_dir().join(format!("mica_cache_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profiles.json");
    let snap = |name: &str| -> u64 {
        mica_obs::counters().into_iter().find(|(n, _)| n == name).map(|(_, v)| v).unwrap_or(0)
    };

    // Truncated mid-JSON: the classic torn write.
    let good = good_set(1e-9);
    good.save(&path).unwrap();
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    assert!(matches!(check_cache(&path, 1e-9).unwrap_err(), CacheMiss::Parse(_)));

    // Zero-byte file: a crash after create but before any byte landed.
    // `load_or_profile_all` must shrug it off, re-profile, and leave a
    // well-formed cache behind with no temp file next to it.
    std::fs::write(&path, b"").unwrap();
    let parse_before = snap("profile.cache.miss.parse");
    let outcome = mica_experiments::profile::load_or_profile_all(&path, 1e-9).unwrap();
    assert!(outcome.quarantined.is_empty());
    assert!(
        snap("profile.cache.miss.parse") >= parse_before + 1,
        "zero-byte cache counts as a parse miss"
    );
    assert!(!mica_fault::io::tmp_path(&path).exists(), "no temp file left after rewrite");
    assert_eq!(check_cache(&path, 1e-9), Ok(outcome.set.clone()));

    // Wrong fingerprint: a structurally valid cache from another table
    // layout is rejected for the precise reason, then atomically replaced.
    let mut stale = outcome.set.clone();
    stale.fingerprint ^= 0xdead;
    stale.save(&path).unwrap();
    let fp_before = snap("profile.cache.miss.fingerprint");
    let refreshed = mica_experiments::profile::load_or_profile_all(&path, 1e-9).unwrap();
    assert_eq!(
        snap("profile.cache.miss.fingerprint"),
        fp_before + 1,
        "stale fingerprint counts as a fingerprint miss"
    );
    assert!(!mica_fault::io::tmp_path(&path).exists(), "no temp file left after rewrite");
    let reread = check_cache(&path, 1e-9).unwrap();
    assert_eq!(reread.fingerprint, mica_experiments::profile::profile_fingerprint());
    assert_eq!(reread, refreshed.set);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn rejected_cache_emits_structured_warn() {
    let dir = init();
    let path = dir.join("warned.json");
    std::fs::write(&path, "not json at all").unwrap();

    let mem = mica_obs::MemorySink::new();
    let id = mica_obs::add_sink(Box::new(mem.clone()));
    let _ = mica_experiments::profile::load_or_profile_all(&path, 1e-9).unwrap();
    mica_obs::remove_sink(id);

    let warns: Vec<_> = mem
        .events()
        .into_iter()
        .filter(|e| e.level == mica_obs::Level::Warn && e.message.contains("re-profiling"))
        .collect();
    assert_eq!(warns.len(), 1, "exactly one cache-rejection warning");
    let reason = warns[0]
        .attrs
        .iter()
        .find_map(|(k, v)| (*k == "reason").then(|| v.to_string()))
        .expect("warn carries a reason attribute");
    assert_eq!(reason, "parse");

    std::fs::remove_dir_all(dir).ok();
}

//! The static report against the dynamic profile: the zoo's loop
//! structure and instruction mix, as `mica-lint --static` emits them, must
//! describe where execution actually spends its time.
//!
//! For every benchmark, run the kernel for a profiling slice and check
//! that
//!
//! - at least 90% of retired instructions land inside some statically
//!   discovered natural-loop body (the kernels are endless steady-state
//!   loops — after the init preamble, *everything* should be in a loop),
//!   and
//! - every dynamically retired instruction class appears in the static
//!   mix (the report's mix is computed over reachable blocks, so a class
//!   executed but not reported would mean the report under-describes the
//!   kernel).
//!
//! This is the check that makes the report trustworthy as a JIT
//! region-selection input: a loop table that missed the hot code would
//! pass the lint gate but fail here.

use mica_experiments::lint::lint_and_survey;
use mica_par::par_map;
use mica_workloads::benchmark_table;
use std::collections::BTreeSet;
use tinyisa::{DynInst, InstClass, TraceSink, INST_BYTES};

/// Retired instructions per kernel: a profiling slice long enough that
/// the init preamble (tens of instructions) is noise.
const FUEL: u64 = 20_000;

/// A sink recording per-index retire counts and the dynamic class set.
struct MixSink {
    base: u64,
    counts: Vec<u64>,
    classes: BTreeSet<&'static str>,
}

impl TraceSink for MixSink {
    fn retire(&mut self, inst: &DynInst) {
        let idx = ((inst.pc - self.base) / INST_BYTES) as usize;
        self.counts[idx] += 1;
        self.classes.insert(class_name(inst.class));
    }
}

fn class_name(c: InstClass) -> &'static str {
    match c {
        InstClass::IntAlu => "IntAlu",
        InstClass::IntMul => "IntMul",
        InstClass::Fp => "Fp",
        InstClass::Load => "Load",
        InstClass::Store => "Store",
        InstClass::Branch => "Branch",
        InstClass::Jump => "Jump",
    }
}

#[test]
fn static_loops_cover_the_dynamic_execution() {
    let surveys: Vec<_> =
        lint_and_survey().into_iter().map(|(name, _, survey)| (name, survey)).collect();
    let specs = benchmark_table();
    assert_eq!(surveys.len(), specs.len());

    let failures: Vec<String> = par_map(&specs, |spec| {
        let (name, survey) = surveys
            .iter()
            .find(|(n, _)| *n == spec.name())
            .expect("survey exists for every spec");
        let mut vm = spec.build_vm().expect("kernel assembles");
        let prog = vm.program().clone();
        let mut sink =
            MixSink { base: prog.base(), counts: vec![0; prog.len()], classes: BTreeSet::new() };
        vm.run(&mut sink, FUEL).expect("zoo kernels are endless and fault-free");

        let mut problems = Vec::new();
        // Coverage: retired instructions inside some static loop body.
        let mut in_loop = vec![false; prog.len()];
        for lp in &survey.loops {
            for &(s, e) in &lp.body_ranges {
                in_loop[s..e].iter_mut().for_each(|x| *x = true);
            }
        }
        let total: u64 = sink.counts.iter().sum();
        let covered: u64 =
            sink.counts.iter().zip(&in_loop).filter(|&(_, &il)| il).map(|(&c, _)| c).sum();
        assert_eq!(total, FUEL);
        if (covered as f64) < 0.90 * total as f64 {
            problems.push(format!(
                "{name}: only {covered}/{total} retired instructions in static loop bodies"
            ));
        }
        // Mix: every dynamic class is in the static mix.
        for class in &sink.classes {
            if !survey.static_mix.contains_key(*class) {
                problems.push(format!(
                    "{name}: dynamic class {class} missing from the static mix"
                ));
            }
        }
        problems
    })
    .into_iter()
    .flatten()
    .collect();

    assert!(
        failures.is_empty(),
        "{} static-report mismatch(es):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

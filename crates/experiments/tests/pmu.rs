//! The simulated PMU must be a pure observer: profiling with `MICA_PMU=1`
//! cannot change a byte of the scientific output, and the heat artifacts
//! it produces must themselves be deterministic — identical across
//! analyzer backends and worker-pool widths.
//!
//! Tests pass the PMU configuration explicitly through
//! [`profile_all_configured`] instead of mutating `MICA_PMU`, so they
//! cannot race on the process environment with the rest of the suite.

use mica_core::Backend;
use mica_experiments::profile::profile_all_configured;
use mica_pmu::{PmuConfig, DEFAULT_PERIOD};

/// Tiny scale: every budget hits the 10 000-instruction floor, so a full
/// 122-benchmark sweep stays fast.
const SCALE: f64 = 1e-9;

#[test]
fn pmu_does_not_change_the_profile_set() {
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_QUIET", "1");
    let off = profile_all_configured(SCALE, Backend::Batch, None).expect("pmu-off run");
    let on = profile_all_configured(SCALE, Backend::Batch, Some(PmuConfig::new(1009)))
        .expect("pmu-on run");
    assert!(off.quarantined.is_empty() && on.quarantined.is_empty());
    assert!(off.heat.is_empty(), "no PMU, no heat");
    assert_eq!(on.heat.len(), 122, "one heat profile per benchmark");
    assert_eq!(
        serde_json::to_string(&off.set).expect("serializes"),
        serde_json::to_string(&on.set).expect("serializes"),
        "the PMU leg changed the profile artifact"
    );

    // Heat profiles come back in Table I order and are internally sane.
    let expected: Vec<String> =
        mica_workloads::benchmark_table().iter().map(|s| s.name()).collect();
    let got: Vec<String> = on.heat.iter().map(|h| h.kernel.clone()).collect();
    assert_eq!(got, expected);
    for h in &on.heat {
        assert!(h.retired >= 10_000, "{}: floor budget retired", h.kernel);
        assert_eq!(h.samples, h.retired / h.period, "{}: deterministic sampling", h.kernel);
        let share: f64 = h.blocks.iter().map(|b| b.share).sum();
        assert!((share - 1.0).abs() < 1e-9, "{}: shares sum to 1, got {share}", h.kernel);
    }
}

#[test]
fn heat_is_identical_across_backends_and_thread_counts() {
    std::env::set_var("MICA_QUIET", "1");
    let cfg = Some(PmuConfig::new(257));

    std::env::set_var("MICA_THREADS", "1");
    let serial_ref = profile_all_configured(SCALE, Backend::Ref, cfg).expect("1-thread ref run");
    std::env::set_var("MICA_THREADS", "4");
    let wide_batch = profile_all_configured(SCALE, Backend::Batch, cfg).expect("4-thread batch");

    assert_eq!(serial_ref.heat.len(), 122);
    assert_eq!(
        serde_json::to_string(&serial_ref.set).expect("serializes"),
        serde_json::to_string(&wide_batch.set).expect("serializes"),
        "profile sets diverged across backend/threads"
    );
    for (a, b) in serial_ref.heat.iter().zip(&wide_batch.heat) {
        assert_eq!(a, b, "heat diverged for {}", a.kernel);
        assert_eq!(a.to_json(), b.to_json(), "heat artifact bytes diverged for {}", a.kernel);
    }
}

#[test]
fn pmu_config_follows_the_cached_flag() {
    // force() drives the cached flag directly — no set_var, no races with
    // the sweeps above.
    let flag = mica_pmu::env_flag();
    flag.force(false);
    assert_eq!(PmuConfig::from_env(), None, "flag off: the PMU never configures");
    flag.force(true);
    let cfg = PmuConfig::from_env().expect("flag on: PMU configured");
    // MICA_PMU_PERIOD is unset in the test environment, so the default
    // prime period applies.
    assert_eq!(cfg.period, DEFAULT_PERIOD);
    flag.reset();
}

//! Workspace gate: the 122-kernel zoo must be free of `Error`-severity
//! static-verifier findings. This is the test-suite twin of the `mica-lint`
//! binary (same shared pass, same config).

use mica_experiments::lint::lint_all;

#[test]
fn benchmark_table_is_error_clean() {
    let reports = lint_all();
    assert_eq!(reports.len(), mica_workloads::NUM_BENCHMARKS);
    let mut failures = Vec::new();
    for (name, report) in &reports {
        for finding in report.errors() {
            failures.push(format!("{name}: {}", finding.rendered()));
        }
    }
    assert!(
        failures.is_empty(),
        "{} error finding(s) across the zoo:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

//! Workspace gate: the 122-kernel zoo must be free of `Error`-severity
//! static-verifier findings. This is the test-suite twin of the `mica-lint`
//! binary (same shared pass, same config).

use mica_experiments::lint::{findings_json, lint_all, JsonFinding};

#[test]
fn benchmark_table_is_error_clean() {
    let reports = lint_all();
    assert_eq!(reports.len(), mica_workloads::NUM_BENCHMARKS);
    let mut failures = Vec::new();
    for (name, report) in &reports {
        for finding in report.errors() {
            failures.push(format!("{name}: {}", finding.rendered()));
        }
    }
    assert!(
        failures.is_empty(),
        "{} error finding(s) across the zoo:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The `--json` artifact shape: one entry per finding, stable names, and
/// a lossless serialization round trip.
#[test]
fn findings_json_round_trips() {
    let reports = lint_all();
    let findings = findings_json(&reports);
    let total: usize = reports.iter().map(|(_, r)| r.findings.len()).sum();
    assert_eq!(findings.len(), total);
    for f in &findings {
        assert!(f.severity == "warn" || f.severity == "error", "{:?}", f.severity);
        assert!(!f.lint.is_empty() && !f.kernel.is_empty() && !f.disasm.is_empty());
    }
    let json = serde_json::to_string(&findings).expect("serializes");
    let back: Vec<JsonFinding> = serde_json::from_str(&json).expect("parses");
    assert_eq!(findings, back);
}

//! End-to-end fault injection: a kernel panic injected into the full
//! 122-benchmark profiling pass must quarantine exactly that benchmark,
//! the survivors must flow through the downstream statistics bit-identical
//! to a fault-free run, and injected artifact-write faults must be
//! survived by the bounded retry with every `fault.*` counter visible
//! through the observability registry.
//!
//! The fault plan is process-global, so every test here serializes on one
//! lock (the pattern `mica-fault`'s own tests use).

use mica_experiments::profile::{check_cache, profile_all, profile_benchmark, profile_fingerprint};
use mica_experiments::results::ProfileSet;
use mica_fault::plan::{self, FaultPlan};
use mica_stats::{kmeans, pairwise_distances, zscore_normalize};
use mica_workloads::benchmark_table;
use std::collections::BTreeMap;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn init() {
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");
    std::env::remove_var("MICA_RETRIES");
}

fn counter_map() -> BTreeMap<String, u64> {
    mica_obs::counters().into_iter().collect()
}

#[test]
fn injected_kernel_panic_quarantines_one_and_survivors_flow_downstream() {
    let _guard = LOCK.lock().unwrap();
    init();
    let total = benchmark_table().len();

    let panics_before = counter_map().get("fault.injected.panic").copied().unwrap_or(0);
    plan::install(FaultPlan::parse("panic:kernel=CRC32").unwrap());
    let faulted = profile_all(1e-9).expect("run completes around the injected panic");
    plan::clear();

    assert_eq!(faulted.quarantined.len(), 1, "exactly one benchmark quarantined");
    assert!(faulted.quarantined[0].name.contains("CRC32"), "{:?}", faulted.quarantined[0]);
    assert!(
        faulted.quarantined[0].reason.contains("MICA_FAULTS"),
        "reason names the injection: {:?}",
        faulted.quarantined[0]
    );
    assert_eq!(faulted.set.records.len(), total - 1, "all survivors profiled");
    assert!(faulted.set.records.iter().all(|r| r.program != "CRC32"));
    assert!(
        counter_map().get("fault.injected.panic").copied().unwrap_or(0) > panics_before,
        "the injection is counted and visible through obs::counters()"
    );

    // The survivors are bit-identical to the same benchmarks in a
    // fault-free run: isolation may not perturb anyone else's profile.
    let clean = profile_all(1e-9).expect("fault-free rerun");
    assert!(clean.quarantined.is_empty());
    assert_eq!(clean.set.records.len(), total);
    let survivors: Vec<_> =
        clean.set.records.iter().filter(|r| r.program != "CRC32").cloned().collect();
    assert_eq!(faulted.set.records, survivors, "survivor records bit-identical to a clean run");

    // Downstream statistics run on the partial (121-benchmark) set.
    let ds = mica_experiments::analysis::mica_dataset(&faulted.set);
    assert_eq!(ds.rows(), total - 1);
    let z = zscore_normalize(&ds);
    let d = pairwise_distances(&z);
    assert_eq!(d.values().len(), (total - 1) * (total - 2) / 2);
    let clustering = kmeans(&z, 4, 0x4d49_4341);
    assert_eq!(clustering.labels.len(), total - 1);
}

#[test]
fn injected_cache_write_faults_are_survived_by_the_retry_budget() {
    let _guard = LOCK.lock().unwrap();
    init();
    let dir = std::env::temp_dir().join(format!("mica_fault_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profiles.json");

    // A well-formed set, cheaply: one real record cloned across the table.
    let spec = benchmark_table().into_iter().find(|b| b.program == "CRC32").unwrap();
    let rec = profile_benchmark(&spec, 10_000).unwrap();
    let set = ProfileSet {
        scale: 1.0,
        fingerprint: profile_fingerprint(),
        records: vec![rec; benchmark_table().len()],
    };

    // Two write errors against the default budget of three retries: the
    // save must survive, bump the retry/survival counters, and leave a
    // complete cache with no temp file.
    let before = counter_map();
    plan::install(FaultPlan::parse("io:cache-write@2").unwrap());
    set.save(&path).expect("save survives two injected write errors");
    plan::clear();
    let after = counter_map();
    let delta = |name: &str| {
        after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
    };
    assert_eq!(delta("fault.injected.io"), 2);
    assert_eq!(delta("fault.io.retries"), 2);
    assert_eq!(delta("fault.survived.io"), 1);
    assert!(!mica_fault::io::tmp_path(&path).exists());
    assert_eq!(check_cache(&path, 1.0), Ok(set.clone()));

    // Kill-mid-write (torn temp file) on the first attempt: the retry
    // re-stages and renames, so the destination is never partial.
    let mut newer = set.clone();
    newer.scale = 2.0;
    plan::install(FaultPlan::parse("torn:cache-write").unwrap());
    newer.save(&path).expect("save survives a torn first attempt");
    plan::clear();
    assert!(!mica_fault::io::tmp_path(&path).exists(), "the retry renamed the temp file away");
    assert_eq!(check_cache(&path, 2.0), Ok(newer), "destination holds the complete new content");

    std::fs::remove_dir_all(dir).ok();
}

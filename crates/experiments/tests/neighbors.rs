//! Satellite coverage for the nearest-neighbor query path: every
//! reference benchmark's neighbors must match a brute-force reference
//! computed on the z-scored GA-selected space via the independent
//! `mica_stats::zscore_normalize` route, under both metrics, and the
//! whole construction must be bit-stable across `MICA_THREADS`.

use mica_experiments::analysis::mica_dataset;
use mica_experiments::profile::profile_all_configured;
use mica_experiments::query::{DistanceMetric, Neighbor, QuerySpace};
use mica_experiments::results::ProfileSet;
use mica_core::Backend;
use mica_stats::zscore_normalize;

/// Profile the full table at the 10k-instruction floor budget.
fn profile_floor() -> ProfileSet {
    let outcome = profile_all_configured(1e-9, Backend::Batch, None).expect("profiling succeeds");
    assert!(outcome.quarantined.is_empty(), "clean run expected");
    outcome.set
}

/// Brute-force k nearest neighbors of row `i` in `z`, ties by name.
fn brute_force(
    z: &mica_stats::DataSet,
    names: &[String],
    i: usize,
    k: usize,
    metric: DistanceMetric,
) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = (0..z.rows())
        .map(|j| Neighbor {
            name: names[j].clone(),
            distance: metric.distance(z.row(i), z.row(j)),
        })
        .collect();
    all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.name.cmp(&b.name)));
    all.truncate(k);
    all
}

#[test]
fn neighbors_match_brute_force_and_are_thread_stable() {
    // Thread-stability first: the profile set, the GA selection, and the
    // final query space must be identical for 1 and 4 workers. The env
    // var is process-global, so this single test owns it start to end.
    std::env::set_var("MICA_THREADS", "1");
    let set1 = profile_floor();
    std::env::set_var("MICA_THREADS", "4");
    let set4 = profile_floor();
    std::env::remove_var("MICA_THREADS");
    assert_eq!(set1, set4, "profiles must be bit-stable across MICA_THREADS");

    let space1 = QuerySpace::build(&set1, 8);
    let space4 = QuerySpace::build(&set4, 8);
    assert_eq!(space1, space4, "query space must be bit-stable across MICA_THREADS");
    let space = space1;
    assert_eq!(space.selected().len(), 8);
    assert_eq!(space.names().len(), set1.records.len());

    // Brute-force reference: select the same GA columns from the raw data
    // set and z-score them through mica_stats (population σ), entirely
    // bypassing QuerySpace's own projection path.
    let raw = mica_dataset(&set1);
    let z = zscore_normalize(&raw.select_columns(space.selected()));
    let names: Vec<String> = set1.records.iter().map(|r| r.name.clone()).collect();

    for (i, rec) in set1.records.iter().enumerate() {
        let p = space.project(rec.mica.values()).expect("47-metric vector projects");
        assert_eq!(p.as_slice(), z.row(i), "projection of row {i} must equal the z-scored row");
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Cosine] {
            let got = space.neighbors(&p, 6, metric);
            let want = brute_force(&z, &names, i, 6, metric);
            assert_eq!(got, want, "row {i} metric {}", metric.name());
            // Self sits at distance ~0. Another benchmark may tie exactly
            // (at the floor budget some kernels characterize identically)
            // and win the alphabetical tie-break, but the head of the
            // list is always a zero-distance match and self is in it.
            assert!(got[0].distance.abs() < 1e-9, "row {i}: nearest must be a zero-distance match");
            assert!(
                got.iter().any(|n| n.name == rec.name && n.distance.abs() < 1e-9),
                "row {i}: self must appear among the nearest neighbors"
            );
        }
    }
}

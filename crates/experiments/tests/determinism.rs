//! The parallel profiling pipeline must be bit-identical to its serial
//! reference — the cached JSON artifacts are scientific outputs, and a
//! thread-count-dependent byte in them would poison every downstream
//! comparison.
//!
//! `MICA_THREADS` is pinned to 4 so the parallel path genuinely runs
//! multi-threaded even on single-core CI machines.

use mica_experiments::profile::{profile_all, profile_all_serial};

#[test]
fn parallel_profile_all_is_byte_identical_to_serial() {
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_QUIET", "1");
    // Tiny scale: every budget hits the 10 000-instruction floor, so the
    // full 122-benchmark sweep stays fast while still exercising every
    // kernel through both characterizations.
    let par = profile_all(1e-9).expect("parallel profiling succeeds");
    let ser = profile_all_serial(1e-9).expect("serial profiling succeeds");
    assert_eq!(par.records.len(), 122);
    assert_eq!(par, ser, "parallel and serial profile sets must be equal");
    let par_json = serde_json::to_string(&par).expect("serializes");
    let ser_json = serde_json::to_string(&ser).expect("serializes");
    assert_eq!(par_json, ser_json, "serialized artifacts must match byte for byte");
}

#[test]
fn profile_order_follows_table_order_not_completion_order() {
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_QUIET", "1");
    let set = profile_all(1e-9).expect("profiles");
    let expected: Vec<String> =
        mica_workloads::benchmark_table().iter().map(|s| s.name()).collect();
    let got: Vec<String> = set.records.iter().map(|r| r.name.clone()).collect();
    assert_eq!(got, expected);
}

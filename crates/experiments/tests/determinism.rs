//! The parallel profiling pipeline must be bit-identical to its serial
//! reference — the cached JSON artifacts are scientific outputs, and a
//! thread-count-dependent byte in them would poison every downstream
//! comparison.
//!
//! `MICA_THREADS` is pinned to 4 so the parallel path genuinely runs
//! multi-threaded even on single-core CI machines.

use mica_core::Backend;
use mica_experiments::profile::{profile_all, profile_all_serial, profile_all_with};

#[test]
fn parallel_profile_all_is_byte_identical_to_serial() {
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_QUIET", "1");
    // Tiny scale: every budget hits the 10 000-instruction floor, so the
    // full 122-benchmark sweep stays fast while still exercising every
    // kernel through both characterizations.
    let outcome = profile_all(1e-9).expect("parallel profiling succeeds");
    assert!(outcome.quarantined.is_empty(), "clean run quarantines nothing");
    let par = outcome.set;
    let ser = profile_all_serial(1e-9).expect("serial profiling succeeds");
    assert_eq!(par.records.len(), 122);
    assert_eq!(par, ser, "parallel and serial profile sets must be equal");
    let par_json = serde_json::to_string(&par).expect("serializes");
    let ser_json = serde_json::to_string(&ser).expect("serializes");
    assert_eq!(par_json, ser_json, "serialized artifacts must match byte for byte");
}

/// The batch backend is an optimization, not a different measurement: the
/// full 122-benchmark sweep must produce a byte-identical serialized
/// [`ProfileSet`] (same fingerprint, same records, same bits in every
/// metric) whichever backend delivers the trace.
#[test]
fn batch_backend_is_byte_identical_to_ref() {
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_QUIET", "1");
    let ref_run = profile_all_with(1e-9, Backend::Ref).expect("ref backend profiles");
    let batch_run = profile_all_with(1e-9, Backend::Batch).expect("batch backend profiles");
    assert!(ref_run.quarantined.is_empty() && batch_run.quarantined.is_empty());
    assert_eq!(ref_run.set.fingerprint, batch_run.set.fingerprint);
    assert_eq!(ref_run.set.records.len(), 122);
    assert_eq!(
        serde_json::to_string(&ref_run.set).expect("serializes"),
        serde_json::to_string(&batch_run.set).expect("serializes"),
        "the two backends must agree byte for byte"
    );
}

/// Observability must be a pure observer: running the identical sweep with
/// a Chrome-trace sink and a JSON-lines sink attached — under an installed
/// request-style [`mica_obs::TraceContext`], with concurrent ops-plane
/// scrapes (windowed counter/histogram snapshots, the reads `ops metrics`
/// and `stats` perform) — cannot change a single byte of the scientific
/// output.
#[test]
fn tracing_does_not_change_results() {
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_QUIET", "1");
    let dir = std::env::temp_dir().join(format!("mica_trace_determinism_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let events_path = dir.join("events.jsonl");

    let quiet = profile_all(1e-9).expect("untraced profiling succeeds").set;

    // Sinks are installed programmatically (not via MICA_TRACE) because the
    // env-driven init already ran for this process.
    let trace = mica_obs::add_sink(Box::new(mica_obs::ChromeTraceSink::create(trace_path.clone())));
    let events = mica_obs::add_sink(Box::new(
        mica_obs::JsonLinesSink::create(events_path.clone()).expect("events file opens"),
    ));
    let traced = {
        // The serve daemon runs every request under an installed context
        // while ops scrapes read the windowed metrics from other threads;
        // reproduce both here around the sweep.
        let ctx = mica_obs::TraceContext::fresh();
        let _guard = mica_obs::install_context(Some(ctx));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let scraper = {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = mica_obs::counters_windowed();
                    let _ = mica_obs::histograms_windowed();
                    scrapes += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                scrapes
            })
        };
        let set = profile_all(1e-9).expect("traced profiling succeeds").set;
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(scraper.join().expect("scraper thread") > 0, "no scrapes ran");
        set
    };
    mica_obs::flush();
    mica_obs::remove_sink(trace);
    mica_obs::remove_sink(events);

    assert_eq!(
        serde_json::to_string(&quiet).expect("serializes"),
        serde_json::to_string(&traced).expect("serializes"),
        "tracing changed the profile artifact"
    );

    // And the observer actually observed: the trace is valid Chrome-trace
    // JSON with per-kernel spans, the event log is non-empty JSON lines.
    let doc: serde::Value = serde_json::from_str(
        &std::fs::read_to_string(&trace_path).expect("trace written"),
    )
    .expect("trace parses");
    let n_events = doc
        .field("traceEvents")
        .and_then(|v| v.as_array())
        .map(|a| a.len())
        .expect("traceEvents array");
    assert!(n_events > 122, "expected per-kernel spans, got {n_events} trace events");
    let jsonl = std::fs::read_to_string(&events_path).expect("events written");
    assert!(jsonl.lines().count() > 0, "JSON-lines log is empty");

    std::fs::remove_dir_all(dir).ok();
}

/// Allocation profiling must be a pure observer too: the identical sweep
/// with `MICA_ALLOC`-style tracking on cannot change a byte of the
/// scientific output, while the tracker itself demonstrably counted the
/// run's allocations.
#[test]
fn alloc_tracking_does_not_change_results() {
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_QUIET", "1");

    let untracked = profile_all(1e-9).expect("untracked profiling succeeds").set;

    // Enabled programmatically (not via MICA_ALLOC) because the env-driven
    // init already ran for this process. The test binary links
    // mica_experiments, so its #[global_allocator] is the tracking one.
    mica_obs::alloc::set_enabled(true);
    let (count_before, bytes_before) = mica_obs::alloc::totals();
    let tracked = profile_all(1e-9).expect("tracked profiling succeeds").set;
    let (count_after, bytes_after) = mica_obs::alloc::totals();
    mica_obs::alloc::set_enabled(false);

    assert_eq!(
        serde_json::to_string(&untracked).expect("serializes"),
        serde_json::to_string(&tracked).expect("serializes"),
        "allocation tracking changed the profile artifact"
    );
    assert!(
        count_after > count_before && bytes_after > bytes_before,
        "the tracker observed nothing ({count_before}..{count_after} allocs)"
    );
}

#[test]
fn profile_order_follows_table_order_not_completion_order() {
    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_QUIET", "1");
    let set = profile_all(1e-9).expect("profiles").set;
    let expected: Vec<String> =
        mica_workloads::benchmark_table().iter().map(|s| s.name()).collect();
    let got: Vec<String> = set.records.iter().map(|r| r.name.clone()).collect();
    assert_eq!(got, expected);
}

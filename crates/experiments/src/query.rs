//! Nearest-neighbor queries in the paper's 8-dimensional GA space.
//!
//! The paper's end product is a *query*: given a (possibly new) kernel's
//! 47-metric characterization, which of the 122 reference benchmarks does
//! it resemble? [`QuerySpace`] freezes everything that answer depends on —
//! the GA-selected characteristic subset (Section V-B), the per-column
//! mean/σ of the reference set (Section IV's z-score normalization), and
//! the projected reference points — so the characterization server can
//! answer many queries against one immutable snapshot, and so a query for
//! a benchmark that *is* in the table reproduces exactly the geometry the
//! batch experiments (`fig5`, `table4`) computed.
//!
//! Determinism: the GA runs with the fixed `GaConfig::default()` seed and
//! the space is built from the profile set alone, so two servers built
//! from byte-identical `profiles.json` caches answer byte-identically —
//! for any `MICA_THREADS`.

use crate::analysis::mica_dataset;
use crate::results::ProfileSet;
use mica_stats::{select_features_k, DataSet, GaConfig};
use serde::Serialize;

/// Distance metrics offered on the query path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceMetric {
    /// Euclidean distance in the z-scored selected space (the paper's
    /// Section IV metric).
    Euclidean,
    /// Cosine *distance* (`1 - cosine similarity`) in the same space.
    /// Zero vectors are defined to have distance 1 from everything
    /// (no shared direction), 0 from each other.
    Cosine,
}

impl DistanceMetric {
    /// Parse a metric name as it appears on the wire.
    pub fn parse(name: &str) -> Option<DistanceMetric> {
        match name {
            "euclidean" => Some(DistanceMetric::Euclidean),
            "cosine" => Some(DistanceMetric::Cosine),
            _ => None,
        }
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            DistanceMetric::Euclidean => "euclidean",
            DistanceMetric::Cosine => "cosine",
        }
    }

    /// Distance between two points of equal dimension.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            DistanceMetric::Euclidean => {
                a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
            }
            DistanceMetric::Cosine => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
                if na == 0.0 && nb == 0.0 {
                    0.0
                } else if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    1.0 - dot / (na * nb)
                }
            }
        }
    }
}

/// One neighbor in a query answer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Neighbor {
    /// Full `suite/program/input` benchmark name.
    pub name: String,
    /// Distance from the query point under the requested metric.
    pub distance: f64,
}

/// An immutable nearest-neighbor index over the reference benchmarks.
///
/// Built once from a [`ProfileSet`]; queries project a raw 47-metric
/// vector with the *reference* set's normalization (a query never shifts
/// the space it is asked about) and rank the reference points by distance.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpace {
    /// Reference benchmark names, in Table I order.
    names: Vec<String>,
    /// GA-selected metric indices into the 47-metric vector.
    selected: Vec<usize>,
    /// Per-selected-column mean of the raw reference values.
    mean: Vec<f64>,
    /// Per-selected-column population standard deviation.
    sd: Vec<f64>,
    /// Reference points, z-scored, one row per benchmark.
    points: Vec<Vec<f64>>,
    /// The GA's correlation fitness for the selected subset.
    rho: f64,
}

impl QuerySpace {
    /// Build the space: run the paper's GA (fixed seed, fixed `k`) on the
    /// raw 122 × 47 data set, then freeze the selected columns' mean/σ and
    /// the z-scored reference points.
    pub fn build(set: &ProfileSet, k: usize) -> QuerySpace {
        let raw = mica_dataset(set);
        let ga = select_features_k(&raw, k, GaConfig::default());
        let mut selected = ga.selected.clone();
        selected.sort_unstable();
        let sub = raw.select_columns(&selected);
        let (mean, sd) = column_stats(&sub);
        let points = (0..sub.rows())
            .map(|r| {
                (0..sub.cols())
                    .map(|c| zscore(sub.get(r, c), mean[c], sd[c]))
                    .collect::<Vec<f64>>()
            })
            .collect();
        QuerySpace {
            names: set.records.iter().map(|r| r.name.clone()).collect(),
            selected,
            mean,
            sd,
            points,
            rho: ga.rho,
        }
    }

    /// The GA-selected metric indices (ascending).
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// The GA's correlation fitness ρ for the selected subset.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Reference benchmark names, in Table I order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The z-scored reference point for row `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i]
    }

    /// Project a raw 47-metric vector into the space: select the GA
    /// columns and z-score them with the *reference* mean/σ.
    ///
    /// Returns `None` if `values` has the wrong dimensionality.
    pub fn project(&self, values: &[f64]) -> Option<Vec<f64>> {
        let top = *self.selected.last()?;
        if values.len() <= top {
            return None;
        }
        Some(
            self.selected
                .iter()
                .zip(self.mean.iter().zip(&self.sd))
                .map(|(&i, (&m, &s))| zscore(values[i], m, s))
                .collect(),
        )
    }

    /// The `k` nearest reference benchmarks to a projected `point`,
    /// ascending by distance; ties broken by name so the answer is
    /// total-ordered and scheduling-independent. `k` is clamped to the
    /// reference count.
    pub fn neighbors(&self, point: &[f64], k: usize, metric: DistanceMetric) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = self
            .points
            .iter()
            .zip(&self.names)
            .map(|(p, name)| Neighbor { name: name.clone(), distance: metric.distance(point, p) })
            .collect();
        all.sort_by(|a, b| {
            a.distance.total_cmp(&b.distance).then_with(|| a.name.cmp(&b.name))
        });
        all.truncate(k);
        all
    }
}

/// Per-column mean and population standard deviation (`var = Σ(x-μ)²/n`,
/// matching [`mica_stats::zscore_normalize`] exactly — the query space
/// must agree bit-for-bit with the batch experiments' normalization).
fn column_stats(ds: &DataSet) -> (Vec<f64>, Vec<f64>) {
    let n = ds.rows() as f64;
    let mut mean = Vec::with_capacity(ds.cols());
    let mut sd = Vec::with_capacity(ds.cols());
    for c in 0..ds.cols() {
        let m = (0..ds.rows()).map(|r| ds.get(r, c)).sum::<f64>() / n;
        let var = (0..ds.rows()).map(|r| (ds.get(r, c) - m).powi(2)).sum::<f64>() / n;
        mean.push(m);
        sd.push(var.sqrt());
    }
    (mean, sd)
}

/// One z-score with the constant-column convention of
/// [`mica_stats::zscore_normalize`]: σ = 0 maps everything to 0.
fn zscore(x: f64, mean: f64, sd: f64) -> f64 {
    if sd > 0.0 {
        (x - mean) / sd
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::BenchRecord;
    use mica_core::{MicaVector, NUM_METRICS};
    use uarch_sim::HpcProfile;

    fn fake_set(n: usize) -> ProfileSet {
        let mut x = 88172645463325252u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let records = (0..n)
            .map(|i| BenchRecord {
                name: format!("s/p{i:02}/in"),
                suite: "s".into(),
                program: format!("p{i:02}"),
                input: "in".into(),
                paper_icount_millions: 1,
                executed_instructions: 1,
                mica: MicaVector::new((0..NUM_METRICS).map(|_| rng()).collect()),
                hpc: HpcProfile {
                    ipc_ev56: 1.0,
                    branch_mispredict_rate: 0.0,
                    l1d_miss_rate: 0.0,
                    l1i_miss_rate: 0.0,
                    l2_miss_rate: 0.0,
                    dtlb_miss_rate: 0.0,
                    ipc_ev67: 2.0,
                    mix: [0.0; 6],
                    instructions: 1,
                },
            })
            .collect();
        ProfileSet { scale: 1.0, fingerprint: 0, records }
    }

    #[test]
    fn reference_rows_project_onto_their_own_points() {
        let set = fake_set(12);
        let space = QuerySpace::build(&set, 4);
        for (i, rec) in set.records.iter().enumerate() {
            let p = space.project(rec.mica.values()).unwrap();
            assert_eq!(p, space.point(i), "row {i}");
        }
    }

    #[test]
    fn self_is_the_nearest_neighbor_under_both_metrics() {
        let set = fake_set(12);
        let space = QuerySpace::build(&set, 4);
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Cosine] {
            for (i, rec) in set.records.iter().enumerate() {
                let p = space.project(rec.mica.values()).unwrap();
                let nn = space.neighbors(&p, 3, metric);
                assert_eq!(nn.len(), 3);
                assert_eq!(nn[0].name, rec.name, "metric {}", metric.name());
                assert!(nn[0].distance.abs() < 1e-12);
                assert!(nn[0].distance <= nn[1].distance && nn[1].distance <= nn[2].distance);
                let _ = i;
            }
        }
    }

    #[test]
    fn wrong_dimension_projects_to_none() {
        let set = fake_set(8);
        let space = QuerySpace::build(&set, 4);
        assert_eq!(space.project(&[1.0, 2.0]), None);
    }

    #[test]
    fn k_is_clamped_and_ties_break_by_name() {
        let set = fake_set(5);
        let space = QuerySpace::build(&set, 3);
        let nn = space.neighbors(space.point(0), 100, DistanceMetric::Euclidean);
        assert_eq!(nn.len(), 5);
        // Cosine of a zero query vector: every nonzero reference is at
        // distance 1, so the full ordering is alphabetical.
        let zeros = vec![0.0; space.selected().len()];
        let nn = space.neighbors(&zeros, 5, DistanceMetric::Cosine);
        let names: Vec<&str> = nn.iter().map(|n| n.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn metric_names_round_trip() {
        for m in [DistanceMetric::Euclidean, DistanceMetric::Cosine] {
            assert_eq!(DistanceMetric::parse(m.name()), Some(m));
        }
        assert_eq!(DistanceMetric::parse("manhattan"), None);
    }
}

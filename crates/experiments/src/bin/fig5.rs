//! Figure 5: distance correlation (vs the full 47-metric space) as
//! correlation elimination removes metrics, with the GA's 8-metric point
//! for comparison. Paper: GA reaches 0.876 with 8 metrics while CE already
//! drops to 0.823 with 17.

use mica_experiments::analysis::mica_dataset;
use mica_experiments::results::{write_csv, write_text};
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};
use mica_stats::{
    elimination_order, pairwise_distances, pearson, plot, select_features_k, zscore_normalize,
    GaConfig,
};

fn main() {
    let mut run = Runner::new("fig5");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .expect("profiling succeeds");
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;
    let mica = mica_dataset(&set);
    let z = zscore_normalize(&mica);
    let full = pairwise_distances(&z);

    // Walk the elimination order once and evaluate every retained-count.
    let ce_curve = run.stage("elimination", || {
        let order = elimination_order(&mica);
        let mut retained: Vec<usize> = (0..mica.cols()).collect();
        let mut ce_curve = Vec::new();
        for victim in &order {
            retained.retain(|c| c != victim);
            if retained.is_empty() {
                break;
            }
            let reduced = pairwise_distances(&z.select_columns(&retained));
            ce_curve.push((retained.len(), pearson(full.values(), reduced.values())));
        }
        ce_curve
    });

    let ga = run.stage("ga", || select_features_k(&mica, 8, GaConfig::default()));

    println!("Figure 5 — distance correlation vs number of retained metrics");
    println!("{:>8} {:>12}", "metrics", "CE rho");
    let mut rows = Vec::new();
    for &(n, rho) in &ce_curve {
        println!("{n:>8} {rho:>12.3}");
        rows.push(format!("correlation_elimination,{n},{rho:.4}"));
    }
    println!("\nGA point: {} metrics, rho = {:.3}  (paper: 8 metrics, 0.876)", 8, ga.rho);
    let ce_at = |n: usize| ce_curve.iter().find(|&&(c, _)| c == n).map(|&(_, r)| r);
    if let (Some(ce8), Some(ce17)) = (ce_at(8), ce_at(17)) {
        println!("CE at 8 metrics: {ce8:.3}; CE at 17 metrics: {ce17:.3} (paper: 0.823)");
        println!(
            "GA beats CE at the same size: {}",
            if ga.rho > ce8 { "yes (as in the paper)" } else { "NO (unexpected)" }
        );
    }
    rows.push(format!("genetic_algorithm,8,{:.4}", ga.rho));
    write_csv(&results_dir().join("fig5.csv"), "method,retained_metrics,rho", &rows)
        .expect("csv writes");

    let series = vec![
        (
            "correlation elimination".to_string(),
            ce_curve.iter().map(|&(n, r)| (n as f64, r)).collect::<Vec<_>>(),
        ),
        ("GA (8 metrics)".to_string(), vec![(8.0, ga.rho), (8.0, ga.rho)]),
    ];
    let svg = plot::svg_lines(
        "Fig. 5 — distance correlation vs retained metrics",
        "number of retained metrics",
        "correlation with full-space distances",
        &series,
    );
    write_text(&results_dir().join("fig5.svg"), &svg).expect("svg writes");
    mica_obs::info!("wrote fig5.csv and fig5.svg");
    run.finish();
}

//! Figure 1: scatter of pairwise benchmark distance in the hardware-
//! performance-counter space vs the microarchitecture-independent space,
//! with their correlation coefficient (paper: 0.46).

use mica_experiments::analysis::workload_distances;
use mica_experiments::results::{write_csv, write_text};
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};
use mica_stats::{pearson, plot};

fn main() {
    let mut run = Runner::new("fig1");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .expect("profiling succeeds");
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;
    let (mica, hpc) = run.stage("distances", || workload_distances(&set));

    let r = pearson(mica.values(), hpc.values());
    println!("Figure 1 — HPC-space distance vs MICA-space distance");
    println!("benchmark tuples: {}", mica.len());
    println!("correlation coefficient: {r:.3}  (paper: 0.46)");
    println!("max distance, MICA space: {:.3}", mica.max());
    println!("max distance, HPC space:  {:.3}", hpc.max());

    run.stage("write", || {
        let rows: Vec<String> = mica
            .values()
            .iter()
            .zip(hpc.values())
            .map(|(m, h)| format!("{m:.6},{h:.6}"))
            .collect();
        write_csv(&results_dir().join("fig1.csv"), "mica_distance,hpc_distance", &rows)
            .expect("csv writes");

        let points: Vec<(f64, f64)> =
            mica.values().iter().zip(hpc.values()).map(|(&m, &h)| (m, h)).collect();
        let svg = plot::svg_scatter(
            &format!("Fig. 1 — distance per benchmark tuple (r = {r:.3})"),
            "distance in microarchitecture-independent space",
            "distance in hardware performance counter space",
            &points,
        );
        write_text(&results_dir().join("fig1.svg"), &svg).expect("svg writes");
    });
    mica_obs::info!("wrote {} and fig1.svg", results_dir().join("fig1.csv").display());
    run.finish();
}

//! Table III: classification of benchmark tuples into true/false
//! positives/negatives, with both thresholds at 20% of the maximum distance
//! (paper: FN 0.2%, TN 1.8%, TP 56.9%, FP 41.1%).

use mica_experiments::analysis::workload_distances;
use mica_experiments::results::write_csv;
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};
use mica_stats::classify_pairs;

fn main() {
    let mut run = Runner::new("table3");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .expect("profiling succeeds");
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;
    let (mica, hpc) = run.stage("distances", || workload_distances(&set));
    let c = classify_pairs(hpc.values(), mica.values(), 0.2, 0.2);

    println!("Table III — classifying benchmark tuples (thresholds: 20% of max distance)");
    println!("{:<58} {:>9} {:>9}", "", "paper", "measured");
    println!(
        "{:<58} {:>8.1}% {:>8.1}%",
        "false negative (HPC large, uarch-indep small)",
        0.2,
        100.0 * c.false_negative
    );
    println!(
        "{:<58} {:>8.1}% {:>8.1}%",
        "true positive  (HPC large, uarch-indep large)",
        56.9,
        100.0 * c.true_positive
    );
    println!(
        "{:<58} {:>8.1}% {:>8.1}%",
        "true negative  (HPC small, uarch-indep small)",
        1.8,
        100.0 * c.true_negative
    );
    println!(
        "{:<58} {:>8.1}% {:>8.1}%",
        "false positive (HPC small, uarch-indep large)",
        41.1,
        100.0 * c.false_positive
    );
    println!("\nsensitivity: {:.3}   specificity: {:.3}", c.sensitivity(), c.specificity());

    run.stage("write", || {
        write_csv(
            &results_dir().join("table3.csv"),
            "category,paper_pct,measured_pct",
            &[
                format!("false_negative,0.2,{:.2}", 100.0 * c.false_negative),
                format!("true_positive,56.9,{:.2}", 100.0 * c.true_positive),
                format!("true_negative,1.8,{:.2}", 100.0 * c.true_negative),
                format!("false_positive,41.1,{:.2}", 100.0 * c.false_positive),
            ],
        )
        .expect("csv writes");
    });
    run.finish();
}

//! Table I: the 122 benchmarks with their inputs and dynamic instruction
//! counts — the paper's counts alongside this reproduction's scaled runs.

use mica_experiments::results::write_csv;
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};

fn main() {
    let mut run = Runner::new("table1");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .expect("profiling succeeds");
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;

    println!("Table I — benchmarks, inputs and dynamic instruction counts");
    println!(
        "{:<20} {:<12} {:<22} {:>14} {:>14}",
        "suite", "program", "input", "paper I-cnt (M)", "executed (insts)"
    );
    let mut rows = Vec::new();
    let mut current_suite = String::new();
    for r in &set.records {
        if r.suite != current_suite {
            println!("--- {} ---", r.suite);
            current_suite = r.suite.clone();
        }
        println!(
            "{:<20} {:<12} {:<22} {:>14} {:>14}",
            r.suite, r.program, r.input, r.paper_icount_millions, r.executed_instructions
        );
        rows.push(format!(
            "{},{},{},{},{}",
            r.suite, r.program, r.input, r.paper_icount_millions, r.executed_instructions
        ));
    }
    let csv = results_dir().join("table1.csv");
    run.stage("write", || {
        write_csv(&csv, "suite,program,input,paper_icount_millions,executed_instructions", &rows)
            .expect("csv writes");
    });
    mica_obs::info!("{} benchmarks -> {}", set.records.len(), csv.display());
    run.finish();
}

//! Table IV: the key microarchitecture-independent characteristics selected
//! by the genetic algorithm. The paper retains 8; this binary reports both
//! the unconstrained GA (paper fitness `rho * (1 - n/N)`) and the GA
//! constrained to exactly 8 metrics.

use mica_core::METRICS;
use mica_experiments::analysis::mica_dataset;
use mica_experiments::results::write_csv;
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};
use mica_stats::{select_features, select_features_k, GaConfig};

const PAPER_TABLE_IV: [&str; 8] = [
    "percentage loads",
    "avg. number of input operands",
    "prob. register dependence <= 8",
    "prob. local load stride <= 64",
    "prob. global load stride <= 512",
    "prob. local store stride <= 4096",
    "D-stream at the 4KB-page level",
    "ILP, 256-entry window",
];

fn main() {
    let mut run = Runner::new("table4");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .expect("profiling succeeds");
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;
    let mica = mica_dataset(&set);

    let free = run.stage("ga_free", || select_features(&mica, GaConfig::default()));
    let fixed = run.stage("ga_fixed", || select_features_k(&mica, 8, GaConfig::default()));

    println!("Table IV — characteristics selected by the genetic algorithm\n");
    println!(
        "Unconstrained GA (fitness rho*(1-n/N)): {} metrics, fitness {:.3}, rho {:.3}, {} generations",
        free.selected.len(),
        free.fitness,
        free.rho,
        free.generations_run
    );
    for &c in &free.selected {
        println!("  {:>2}. {}", METRICS[c].number, METRICS[c].name);
    }

    println!("\nGA constrained to 8 metrics (as the paper's Table IV): rho {:.3}", fixed.rho);
    let mut rows = Vec::new();
    for (i, &c) in fixed.selected.iter().enumerate() {
        println!("  {:>2}. {:<45} [{}]", METRICS[c].number, METRICS[c].name, METRICS[c].category);
        rows.push(format!("{},{},{}", i + 1, METRICS[c].short, METRICS[c].category));
    }

    // Category coverage comparison against the paper's selection.
    let categories: std::collections::BTreeSet<String> =
        fixed.selected.iter().map(|&c| METRICS[c].category.to_string()).collect();
    println!("\ncategories covered: {}", categories.len());
    println!("paper's Table IV selection for reference:");
    for (i, name) in PAPER_TABLE_IV.iter().enumerate() {
        println!("  {:>2}. {name}", i + 1);
    }
    println!(
        "\n(The exact metrics may differ — our workloads are reproductions, not the\n\
         original binaries — but the subset should similarly span several categories.)"
    );

    write_csv(&results_dir().join("table4.csv"), "rank,metric,category", &rows)
        .expect("csv writes");
    run.finish();
}

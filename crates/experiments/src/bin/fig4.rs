//! Figure 4: ROC curves for the all-characteristics space, correlation
//! elimination (17 and 12 and 7 metrics retained) and the GA-selected
//! 8-metric space. Paper AUCs: all = 0.72, GA = 0.69, CE@17 = 0.67,
//! CE@12/7 = 0.64.

use mica_experiments::analysis::{hpc_dataset, mica_dataset};
use mica_experiments::results::{write_csv, write_text};
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};
use mica_stats::{
    auc, correlation_elimination, pairwise_distances, plot, roc_curve, select_features_k,
    zscore_normalize, DataSet, GaConfig,
};

fn reduced_distances(z: &DataSet, keep: &[usize]) -> Vec<f64> {
    pairwise_distances(&z.select_columns(keep)).values().to_vec()
}

fn main() {
    let mut run = Runner::new("fig4");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .expect("profiling succeeds");
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;
    let mica = mica_dataset(&set);
    let z = zscore_normalize(&mica);
    let hpc = pairwise_distances(&zscore_normalize(&hpc_dataset(&set)));

    let ga = run.stage("ga", || select_features_k(&mica, 8, GaConfig::default()));
    println!("GA-selected 8 metrics: {:?} (rho = {:.3})", ga.selected, ga.rho);

    let spaces: Vec<(String, Vec<f64>, f64)> = run.stage("spaces", || vec![
        ("all 47 characteristics".to_string(), pairwise_distances(&z).values().to_vec(), 0.72),
        ("GA, 8 metrics".to_string(), reduced_distances(&z, &ga.selected), 0.69),
        ("CE, 17 metrics".to_string(), reduced_distances(&z, &correlation_elimination(&mica, 17)), 0.67),
        ("CE, 12 metrics".to_string(), reduced_distances(&z, &correlation_elimination(&mica, 12)), 0.64),
        ("CE, 7 metrics".to_string(), reduced_distances(&z, &correlation_elimination(&mica, 7)), 0.64),
    ]);

    println!("\nFigure 4 — ROC analysis (HPC threshold fixed at 20% of max)");
    println!("{:<26} {:>10} {:>10}", "space", "paper AUC", "AUC");
    run.stage("roc", || {
        let mut series = Vec::new();
        let mut rows = Vec::new();
        for (name, dists, paper_auc) in &spaces {
            let curve = roc_curve(hpc.values(), dists, 0.2, 200);
            let a = auc(&curve);
            println!("{name:<26} {paper_auc:>10.2} {a:>10.3}");
            for p in &curve {
                rows.push(format!(
                    "{name},{:.4},{:.4},{:.4}",
                    p.mica_frac, p.one_minus_specificity, p.sensitivity
                ));
            }
            series.push((
                format!("{name} (AUC {a:.2})"),
                curve.iter().map(|p| (p.one_minus_specificity, p.sensitivity)).collect::<Vec<_>>(),
            ));
        }
        write_csv(
            &results_dir().join("fig4.csv"),
            "space,mica_threshold_frac,one_minus_specificity,sensitivity",
            &rows,
        )
        .expect("csv writes");
        let svg = plot::svg_lines(
            "Fig. 4 — ROC curves",
            "1 - specificity",
            "sensitivity",
            &series,
        );
        write_text(&results_dir().join("fig4.svg"), &svg).expect("svg writes");
    });
    mica_obs::info!("wrote fig4.csv and fig4.svg");
    run.finish();
}

//! Diagnostic: print the BIC and SSE of k-means at a sweep of K values
//! in the GA-selected 8-metric space (used to sanity-check the Figure 6
//! model-selection rule).

use mica_experiments::analysis::mica_dataset;
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};
use mica_stats::{kmeans, select_features_k, zscore_normalize, GaConfig};

fn main() {
    let mut run = Runner::new("bic_probe");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .unwrap();
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;
    let mica = mica_dataset(&set);
    let ga = run.stage("ga", || select_features_k(&mica, 8, GaConfig::default()));
    let z = zscore_normalize(&mica).select_columns(&ga.selected);
    run.stage("sweep", || {
        for k in [1, 2, 4, 6, 8, 10, 12, 15, 20, 25, 30, 40, 50, 60, 70] {
            let r = kmeans(&z, k, 0x4d49_4341 ^ k as u64);
            println!("k={k:>3} bic={:>12.1} sse={:>10.2}", r.bic, r.sse);
        }
    });
    run.finish();
}

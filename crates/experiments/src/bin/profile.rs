//! Profile all 122 benchmarks (ignoring any cache) and write
//! `results/profiles.json`.

use mica_experiments::{profile::profile_all, results_dir, scale};

fn main() {
    let set = profile_all(scale()).unwrap_or_else(|e| {
        eprintln!("profiling failed: {e}");
        std::process::exit(1);
    });
    let path = results_dir().join("profiles.json");
    set.save(&path).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("profiled {} benchmarks -> {}", set.records.len(), path.display());
}

//! Profile all 122 benchmarks (ignoring any cache) and write
//! `results/profiles.json`.

use mica_experiments::runner::Runner;
use mica_experiments::{profile::profile_all, results_dir, scale};

fn main() {
    let mut run = Runner::new("profile");
    let outcome = run.stage("profile", || profile_all(scale())).unwrap_or_else(|e| {
        mica_obs::error!("profiling failed: {e}");
        mica_obs::flush();
        std::process::exit(1);
    });
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;
    let path = results_dir().join("profiles.json");
    run.stage("save", || set.save(&path)).unwrap_or_else(|e| {
        mica_obs::error!("cannot write {}: {e}", path.display());
        mica_obs::flush();
        std::process::exit(1);
    });
    mica_obs::info!("profiled {} benchmarks -> {}", set.records.len(), path.display());
    run.finish();
}

//! Profile all 122 benchmarks (ignoring any cache) and write
//! `results/profiles.json`.
//!
//! Under `MICA_PMU=1` the run additionally carries the simulated PMU on
//! every kernel and writes the heat artifacts under `results/heat/`: one
//! `<kernel>.json` per surviving benchmark, a `flamegraph.collapsed`
//! export for standard flamegraph tooling, and a `heatmap.svg` overview.
//! The PMU is passive, so `profiles.json` is byte-identical with the PMU
//! on or off (asserted in CI).

use mica_experiments::runner::Runner;
use mica_experiments::{profile::profile_all, results_dir, scale};
use mica_pmu::KernelHeat;

/// Write every heat artifact for a PMU-enabled run. Failures are
/// warn-level, like the run summary: the run's primary output is
/// `profiles.json`, and a heat artifact that cannot be written should not
/// un-profile 122 benchmarks.
fn save_heat(heat: &[KernelHeat]) {
    let dir = results_dir().join("heat");
    for h in heat {
        let path = dir.join(format!("{}.json", KernelHeat::file_stem(&h.kernel)));
        if let Err(e) = mica_fault::io::atomic_write_retry("heat", &path, h.to_json().as_bytes()) {
            mica_obs::warn!("cannot write heat artifact {}: {e}", path.display());
        }
    }
    let collapsed = dir.join("flamegraph.collapsed");
    let stacks = mica_pmu::collapsed_stacks(heat);
    if let Err(e) = mica_fault::io::atomic_write_retry("heat", &collapsed, stacks.as_bytes()) {
        mica_obs::warn!("cannot write flamegraph {}: {e}", collapsed.display());
    }
    let svg_path = dir.join("heatmap.svg");
    let svg = mica_pmu::render_svg(heat);
    if let Err(e) = mica_fault::io::atomic_write_retry("heat", &svg_path, svg.as_bytes()) {
        mica_obs::warn!("cannot write heat map {}: {e}", svg_path.display());
    }
    mica_obs::info!("wrote {} heat profiles -> {}", heat.len(), dir.display());
}

fn main() {
    let mut run = Runner::new("profile");
    let outcome = run.stage("profile", || profile_all(scale())).unwrap_or_else(|e| {
        mica_obs::error!("profiling failed: {e}");
        mica_obs::flush();
        std::process::exit(1);
    });
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    if !outcome.heat.is_empty() {
        run.stage("heat", || save_heat(&outcome.heat));
    }
    let set = outcome.set;
    let path = results_dir().join("profiles.json");
    run.stage("save", || set.save(&path)).unwrap_or_else(|e| {
        mica_obs::error!("cannot write {}: {e}", path.display());
        mica_obs::flush();
        std::process::exit(1);
    });
    mica_obs::info!("profiled {} benchmarks -> {}", set.records.len(), path.display());
    run.finish();
}

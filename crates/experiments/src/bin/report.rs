//! Generate a single self-contained markdown report of the whole
//! reproduction (`results/REPORT.md`), plus the raw 122 x 47 data set as
//! CSV (`results/mica_dataset.csv`) for downstream analysis outside this
//! repo.

use mica_core::METRICS;
use mica_experiments::analysis::{mica_dataset, workload_distances};
use mica_experiments::results::write_text;
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};
use mica_stats::{
    auc, choose_k_by_bic, classify_pairs, correlation_elimination, pairwise_distances, pearson,
    roc_curve, select_features_k, zscore_normalize, GaConfig,
};
use std::fmt::Write as _;

fn main() {
    let mut run = Runner::new("report");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .expect("profiling succeeds");
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;
    let mica = mica_dataset(&set);
    let z = zscore_normalize(&mica);
    let (dm, dh) = run.stage("distances", || workload_distances(&set));

    // Raw data export.
    let headers: Vec<String> = METRICS.iter().map(|m| m.short.to_string()).collect();
    write_text(&results_dir().join("mica_dataset.csv"), &mica.to_csv(&headers))
        .expect("csv writes");

    let mut md = String::new();
    let _ = writeln!(md, "# MICA reproduction report\n");
    let _ = writeln!(
        md,
        "{} benchmarks profiled at scale {} ({} total instructions).\n",
        set.records.len(),
        set.scale,
        set.records.iter().map(|r| r.executed_instructions).sum::<u64>()
    );

    // Figure 1 / Table III.
    let r = pearson(dm.values(), dh.values());
    let c = classify_pairs(dh.values(), dm.values(), 0.2, 0.2);
    let _ = writeln!(md, "## Pitfall (Fig. 1 / Table III)\n");
    let _ = writeln!(md, "| quantity | paper | measured |\n|---|---|---|");
    let _ = writeln!(md, "| distance correlation | 0.46 | {r:.3} |");
    let _ = writeln!(md, "| false negatives | 0.2% | {:.1}% |", 100.0 * c.false_negative);
    let _ = writeln!(md, "| false positives | 41.1% | {:.1}% |", 100.0 * c.false_positive);

    // Feature selection (Figs. 4-5, Table IV).
    let ga = run.stage("ga", || select_features_k(&mica, 8, GaConfig::default()));
    let ce8 = correlation_elimination(&mica, 8);
    let d_ga = pairwise_distances(&z.select_columns(&ga.selected));
    let d_ce = pairwise_distances(&z.select_columns(&ce8));
    let rho_ce = pearson(dm.values(), d_ce.values());
    let auc_all = auc(&roc_curve(dh.values(), dm.values(), 0.2, 200));
    let auc_ga = auc(&roc_curve(dh.values(), d_ga.values(), 0.2, 200));
    let _ = writeln!(md, "\n## Key-metric selection (Figs. 4-5, Table IV)\n");
    let _ = writeln!(md, "| quantity | paper | measured |\n|---|---|---|");
    let _ = writeln!(md, "| GA rho at 8 metrics | 0.876 | {:.3} |", ga.rho);
    let _ = writeln!(md, "| CE rho at 8 metrics | (lower) | {rho_ce:.3} |");
    let _ = writeln!(md, "| AUC all 47 | 0.72 | {auc_all:.3} |");
    let _ = writeln!(md, "| AUC GA 8 | 0.69 | {auc_ga:.3} |");
    let _ = writeln!(md, "\nGA-selected characteristics:\n");
    for &m in &ga.selected {
        let _ = writeln!(md, "- {} ({})", METRICS[m].name, METRICS[m].category);
    }

    // Clustering (Fig. 6).
    let sel = z.select_columns(&ga.selected);
    let clustering = run.stage("cluster", || choose_k_by_bic(&sel, 70, 0x4d49_4341));
    let singletons = clustering.members().iter().filter(|m| m.len() == 1).count();
    let _ = writeln!(md, "\n## Clustering (Fig. 6)\n");
    let _ = writeln!(md, "- K selected by BIC: {} (paper: 15)", clustering.k());
    let _ = writeln!(md, "- singleton clusters: {singletons}");
    for (cid, members) in clustering.members().iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let names: Vec<&str> =
            members.iter().map(|&i| set.records[i].name.as_str()).collect();
        let _ = writeln!(md, "- cluster {:02}: {}", cid + 1, names.join(", "));
    }

    let _ = writeln!(
        md,
        "\nSee EXPERIMENTS.md for the shape-level comparison and DESIGN.md for the\n\
         substitutions this reproduction makes.\n"
    );

    let path = results_dir().join("REPORT.md");
    write_text(&path, &md).expect("report writes");
    mica_obs::info!("wrote {} and mica_dataset.csv", path.display());
    run.finish();
}

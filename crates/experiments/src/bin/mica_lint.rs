//! `mica-lint`: run the static verifier over all 122 benchmark kernels.
//!
//! Prints every finding (errors and warnings), a per-severity total, and
//! exits nonzero if any `Error`-severity finding is present. Parallelized
//! with `mica-par` (set `MICA_THREADS` to bound the worker count).

use mica_experiments::lint::lint_all;
use mica_experiments::runner::Runner;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut run = Runner::new("mica-lint");
    let reports = run.stage("lint", lint_all);
    let linted = reports.len();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (name, report) in &reports {
        for finding in &report.findings {
            println!("{name}: {}", finding.rendered());
        }
        errors += report.errors().count();
        warnings += report.warnings().count();
    }
    println!("mica-lint: {linted} programs, {errors} error(s), {warnings} warning(s)");
    run.finish();
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! `mica-lint`: run the static verifier over all 122 benchmark kernels.
//!
//! Prints every finding (errors and warnings), a per-severity total, and
//! exits nonzero if any `Error`-severity finding is present. Parallelized
//! with `mica-par` (set `MICA_THREADS` to bound the worker count).
//!
//! Flags:
//!
//! - `--json PATH`: also write the findings as a JSON array (kernel, lint
//!   name, severity, pc, disassembly, message) — the machine-readable CI
//!   artifact.
//! - `--static PATH`: also write the per-kernel static report (natural
//!   loops with nesting depth and body instruction ranges, static
//!   instruction mix, refined indirect blocks) — the region-selection
//!   input for a tiered JIT, to be compared against the dynamic profile.
//!
//! Both files are written with `mica_fault::io::atomic_write_retry`, so a
//! crash mid-write never leaves a truncated artifact.

use mica_experiments::lint::{findings_json, lint_and_survey};
use mica_experiments::runner::Runner;
use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line; both outputs are optional.
struct Args {
    json: Option<PathBuf>,
    static_report: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { json: None, static_report: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let slot = match flag.as_str() {
            "--json" => &mut args.json,
            "--static" => &mut args.static_report,
            other => return Err(format!("unknown flag {other} (expected --json/--static)")),
        };
        let path = it.next().ok_or_else(|| format!("{flag} requires a PATH argument"))?;
        *slot = Some(PathBuf::from(path));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mica-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut run = Runner::new("mica-lint");
    let analyzed = run.stage("lint", lint_and_survey);
    let linted = analyzed.len();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut reports = Vec::with_capacity(linted);
    let mut surveys = Vec::with_capacity(linted);
    for (name, report, survey) in analyzed {
        for finding in &report.findings {
            println!("{name}: {}", finding.rendered());
        }
        errors += report.errors().count();
        warnings += report.warnings().count();
        reports.push((name, report));
        surveys.push(survey);
    }
    println!("mica-lint: {linted} programs, {errors} error(s), {warnings} warning(s)");

    if let Some(path) = &args.json {
        let json = serde_json::to_string(&findings_json(&reports)).expect("findings serialize");
        if let Err(e) = mica_fault::io::atomic_write_retry("lint-json", path, json.as_bytes()) {
            eprintln!("mica-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("mica-lint: findings written to {}", path.display());
    }
    if let Some(path) = &args.static_report {
        let json = serde_json::to_string(&surveys).expect("static report serializes");
        if let Err(e) = mica_fault::io::atomic_write_retry("lint-static", path, json.as_bytes()) {
            eprintln!("mica-lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("mica-lint: static report written to {}", path.display());
    }

    run.finish();
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

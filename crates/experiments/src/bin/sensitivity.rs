//! Machine-sensitivity experiment (the paper's Section IV argument made
//! explicit): profile the *same* dynamic instruction streams on two
//! different simulated microarchitectures and show that the
//! counter-based workload space changes with the machine, while the
//! microarchitecture-independent space — computed from the same trace —
//! cannot change by construction.
//!
//! "The pitfall of microarchitecture-dependent characterization is that the
//! conclusions taken based on this characterization may not be generalized
//! to other microarchitectures." — Section IV.

use mica_experiments::profile::Quarantine;
use mica_experiments::results::write_csv;
use mica_experiments::runner::Runner;
use mica_experiments::{results_dir, scale};
use mica_stats::{classify_pairs, pairwise_distances, pearson, zscore_normalize, DataSet};
use mica_workloads::benchmark_table;
use tinyisa::{DynInst, TraceSink};
use uarch_sim::{
    CacheConfig, Ev56Model, Ev67Model, HpcSimulator, InOrderConfig, MemoryLatency, OooConfig,
};

/// A "five-years-later" machine: bigger, more associative caches with
/// next-line prefetching, a larger window, and relatively slower memory.
fn modern_pair() -> HpcSimulator {
    let in_order = InOrderConfig {
        l1: CacheConfig { size: 32 * 1024, line: 64, assoc: 2 },
        l2: CacheConfig { size: 512 * 1024, line: 64, assoc: 8 },
        lat: MemoryLatency { l1: 3, l2: 14, mem: 150, tlb_miss: 40 },
        predictor_entries: 8192,
        mispredict_penalty: 10,
        dtlb_entries: 128,
        page_size: 8192,
        prefetch: true,
    };
    let ooo = OooConfig {
        l1: CacheConfig { size: 32 * 1024, line: 64, assoc: 4 },
        l2: CacheConfig { size: 2 * 1024 * 1024, line: 64, assoc: 8 },
        lat: MemoryLatency { l1: 4, l2: 16, mem: 200, tlb_miss: 40 },
        window: 192,
        mispredict_penalty: 14,
        dtlb_entries: 256,
        page_size: 8192,
        prefetch: true,
    };
    HpcSimulator::with_machines(Ev56Model::with_config(in_order), Ev67Model::with_config(ooo))
}

/// Fan one trace out to both machine pairs at once.
struct Both {
    alpha: HpcSimulator,
    modern: HpcSimulator,
}

impl TraceSink for Both {
    fn retire(&mut self, inst: &DynInst) {
        self.alpha.retire(inst);
        self.modern.retire(inst);
    }
}

/// Run one kernel on both machine pairs, converting panics and errors
/// into a quarantine reason instead of killing the sweep.
fn run_both(
    spec: &mica_workloads::BenchmarkSpec,
    budget: u64,
) -> Result<(Vec<f64>, Vec<f64>), String> {
    if mica_fault::plan::should_panic_kernel(spec.program)
        || mica_fault::plan::should_panic_kernel(&spec.name())
    {
        return Err(format!("injected fault: kernel {} (MICA_FAULTS)", spec.name()));
    }
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<_, String> {
        let mut vm = spec.build_vm().map_err(|e| format!("kernel failed to assemble: {e}"))?;
        let mut both = Both { alpha: HpcSimulator::new(), modern: modern_pair() };
        vm.run(&mut both, budget).map_err(|e| format!("kernel faulted: {e}"))?;
        Ok((both.alpha.finish().counter_vector(), both.modern.finish().counter_vector()))
    }))
    .unwrap_or_else(|payload| {
        let text = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(format!("panic: {text}"))
    })
}

fn main() {
    let mut run = Runner::new("sensitivity");
    let table = benchmark_table();
    let (alpha_rows, modern_rows, quarantined) = run.stage("profile", || {
        let mut alpha_rows = Vec::with_capacity(table.len());
        let mut modern_rows = Vec::with_capacity(table.len());
        let mut quarantined = Vec::new();
        for (i, spec) in table.iter().enumerate() {
            let budget = ((spec.instruction_budget() as f64) * scale()).max(10_000.0) as u64;
            mica_obs::info!("[{:3}/{}] {}", i + 1, table.len(), spec.name());
            match run_both(spec, budget) {
                Ok((a, m)) => {
                    alpha_rows.push(a);
                    modern_rows.push(m);
                }
                Err(reason) => quarantined.push(Quarantine { name: spec.name(), reason }),
            }
        }
        (alpha_rows, modern_rows, quarantined)
    });
    if !quarantined.is_empty() {
        println!(
            "QUARANTINED (n={}): continuing on {} of {} benchmarks",
            quarantined.len(),
            alpha_rows.len(),
            table.len()
        );
        for q in &quarantined {
            println!("  {}: {}", q.name, q.reason);
        }
    }
    run.quarantine(&quarantined);
    if alpha_rows.len() < 2 {
        println!("sensitivity: fewer than two benchmarks survived; nothing to compare");
        run.finish();
        return;
    }

    let (d_alpha, d_modern) = run.stage("distances", || {
        (
            pairwise_distances(&zscore_normalize(&DataSet::from_rows(alpha_rows))),
            pairwise_distances(&zscore_normalize(&DataSet::from_rows(modern_rows))),
        )
    });

    let r = pearson(d_alpha.values(), d_modern.values());
    println!("\nMachine sensitivity of the counter-based workload space");
    println!("(identical traces; only the measuring machine differs)\n");
    println!("distance correlation, Alpha-like vs modern-like machine: {r:.3}");

    // How many "similar / dissimilar" calls flip between the machines?
    let c = classify_pairs(d_alpha.values(), d_modern.values(), 0.2, 0.2);
    let flips = c.false_positive + c.false_negative;
    println!(
        "benchmark tuples whose similarity verdict flips at the 20% threshold: {:.1}%",
        100.0 * flips
    );
    println!(
        "\nThe microarchitecture-independent characterization is computed from the\n\
         same retired-instruction stream and is therefore bit-identical on both\n\
         machines — the conclusions it supports transfer; the counter-based ones\n\
         above demonstrably do not."
    );

    let rows: Vec<String> = d_alpha
        .values()
        .iter()
        .zip(d_modern.values())
        .map(|(a, m)| format!("{a:.6},{m:.6}"))
        .collect();
    write_csv(&results_dir().join("sensitivity.csv"), "alpha_distance,modern_distance", &rows)
        .expect("csv writes");
    mica_obs::info!("wrote {}", results_dir().join("sensitivity.csv").display());
    run.finish();
}

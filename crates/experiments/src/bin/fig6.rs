//! Figure 6: cluster the 122 benchmarks in the 8-dimensional GA-selected
//! space with k-means (K chosen by the BIC 90%-of-max rule; the paper lands
//! at 15 clusters) and emit kiviat diagrams per benchmark, grouped by
//! cluster.

use mica_experiments::analysis::{metric_short_names, minmax_normalize_columns, mica_dataset};
use mica_experiments::results::{write_csv, write_text};
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};
use mica_stats::{
    choose_k_by_bic, hierarchical_cluster, pairwise_distances, plot, select_features_k,
    silhouette, zscore_normalize, GaConfig,
};

fn main() {
    let mut run = Runner::new("fig6");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .expect("profiling succeeds");
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;
    let mica = mica_dataset(&set);

    let ga = run.stage("ga", || select_features_k(&mica, 8, GaConfig::default()));
    println!("clustering in the GA-selected 8-metric space: {:?}", ga.selected);

    let z = zscore_normalize(&mica).select_columns(&ga.selected);
    let clustering = run.stage("cluster", || choose_k_by_bic(&z, 70, 0x4d49_4341));
    println!(
        "BIC selects K = {} clusters (paper: 15; BIC rule = first K within 90% of max)",
        clustering.k()
    );

    // Kiviat axes use min-max-normalized raw metric values.
    let kiviat = minmax_normalize_columns(&mica.select_columns(&ga.selected));
    let axis_names = metric_short_names(&ga.selected);

    let mut rows = Vec::new();
    let members = clustering.members();
    for (cid, member_rows) in members.iter().enumerate() {
        if member_rows.is_empty() {
            continue;
        }
        println!("\ncluster {:>2} ({} benchmarks):", cid + 1, member_rows.len());
        let mut suites: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for &r in member_rows {
            let rec = &set.records[r];
            println!("    {}", rec.name);
            suites.insert(rec.suite.as_str());
            rows.push(format!("{},{}", cid + 1, rec.name));
            let svg = plot::svg_kiviat(
                &rec.name,
                &axis_names,
                &(0..kiviat.cols()).map(|c| kiviat.get(r, c)).collect::<Vec<_>>(),
            );
            let fname = format!(
                "fig6/cluster{:02}/{}.svg",
                cid + 1,
                rec.name.replace(['/', ' ', '(', ')'], "_")
            );
            write_text(&results_dir().join(fname), &svg).expect("svg writes");
        }
        if member_rows.len() == 1 {
            println!("    (singleton — isolated inherent behavior)");
        }
        println!("    suites: {}", suites.into_iter().collect::<Vec<_>>().join(", "));
    }

    // Headline observations matching the paper's discussion.
    let singletons = members.iter().filter(|m| m.len() == 1).count();
    println!("\nsingleton clusters: {singletons} (paper observes several, e.g. blast, mcf, adpcm)");
    let spec_only = members
        .iter()
        .filter(|m| {
            !m.is_empty() && m.iter().all(|&r| set.records[r].suite == "SPEC2000")
        })
        .count();
    println!("clusters containing only SPEC CPU2000 benchmarks: {spec_only}");
    let bio_no_spec = members
        .iter()
        .filter(|m| {
            m.iter().any(|&r| set.records[r].suite == "BioInfoMark")
                && !m.iter().any(|&r| set.records[r].suite == "SPEC2000")
        })
        .count();
    println!("clusters with BioInfoMark benchmarks but no SPEC CPU2000: {bio_no_spec}");

    // Cross-check the partition quality against the dendrogram method used
    // by the prior work: same K, average-linkage cut, silhouette scores.
    let (km_sil, hier_sil) = run.stage("silhouette", || {
        let d = pairwise_distances(&z);
        let km_sil = silhouette(&d, &clustering.labels);
        let hier_labels = hierarchical_cluster(&d).cut(clustering.k());
        (km_sil, silhouette(&d, &hier_labels))
    });
    println!(
        "\nsilhouette at K = {}: k-means {:.3}, average-linkage {:.3}",
        clustering.k(),
        km_sil,
        hier_sil
    );

    write_csv(&results_dir().join("fig6_clusters.csv"), "cluster,benchmark", &rows)
        .expect("csv writes");
    mica_obs::info!("wrote fig6_clusters.csv and per-benchmark kiviat SVGs under fig6/");
    run.finish();
}

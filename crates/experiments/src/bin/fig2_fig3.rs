//! Figures 2 and 3: the bzip2-vs-blast case study. The two benchmarks look
//! similar in the hardware-performance-counter characterization (Fig. 2)
//! while their microarchitecture-independent characteristics differ
//! markedly (Fig. 3) — most strikingly working-set sizes, global-history
//! branch predictability and global store strides.

use mica_core::METRICS;
use mica_experiments::analysis::{max_normalize_columns, mica_dataset};
use mica_experiments::results::{write_csv, write_text};
use mica_experiments::runner::Runner;
use mica_experiments::{profile::load_or_profile_all, results_dir, scale};
use mica_stats::{plot, DataSet};
use uarch_sim::HPC_EXTENDED_NAMES;

fn main() {
    let mut run = Runner::new("fig2_fig3");
    let outcome =
        run.stage("profiles", || load_or_profile_all(&results_dir().join("profiles.json"), scale()))
            .expect("profiling succeeds");
    outcome.announce();
    run.quarantine(&outcome.quarantined);
    let set = outcome.set;

    // The case study needs two specific benchmarks; if either was
    // quarantined this run, skip the study instead of crashing.
    let bzip2_idx =
        set.records.iter().position(|r| r.program == "bzip2" && r.input == "graphic");
    let blast_idx = set.records.iter().position(|r| r.program == "blast");
    let (Some(bzip2_idx), Some(blast_idx)) = (bzip2_idx, blast_idx) else {
        println!(
            "fig2_fig3: bzip2/graphic or blast missing from this run (quarantined?); \
             skipping the case study"
        );
        run.finish();
        return;
    };

    // --- Figure 2: HPC characterization (instruction mix + counters) ---
    let hpc_dist2 = run.stage("fig2", || {
        let hpc_ext =
            DataSet::from_rows(set.records.iter().map(|r| r.hpc.extended_vector()).collect());
        let hpc_norm = max_normalize_columns(&hpc_ext);
        println!("Figure 2 — hardware performance counter characteristics (normalized to max)");
        println!("{:<30} {:>8} {:>8} {:>8}", "metric", "bzip2", "blast", "|diff|");
        let mut hpc_rows = Vec::new();
        let mut hpc_dist2 = 0.0;
        for (c, name) in HPC_EXTENDED_NAMES.iter().enumerate() {
            let (b, l) = (hpc_norm.get(bzip2_idx, c), hpc_norm.get(blast_idx, c));
            println!("{name:<30} {b:>8.3} {l:>8.3} {:>8.3}", (b - l).abs());
            hpc_rows.push(format!("{name},{b:.4},{l:.4}"));
            hpc_dist2 += (b - l) * (b - l);
        }
        write_csv(&results_dir().join("fig2.csv"), "metric,bzip2_graphic,blast_protein", &hpc_rows)
            .expect("csv writes");
        let fig2 = plot::svg_grouped_bars(
            "Fig. 2 — bzip2 vs blast: HPC characteristics",
            &HPC_EXTENDED_NAMES.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &[
                (
                    "bzip2".into(),
                    (0..hpc_norm.cols()).map(|c| hpc_norm.get(bzip2_idx, c)).collect(),
                ),
                (
                    "blast".into(),
                    (0..hpc_norm.cols()).map(|c| hpc_norm.get(blast_idx, c)).collect(),
                ),
            ],
        );
        write_text(&results_dir().join("fig2.svg"), &fig2).expect("svg writes");
        hpc_dist2
    });

    // --- Figure 3: the 47 microarchitecture-independent characteristics ---
    let (mica_norm, mica_dist2) = run.stage("fig3", || {
        let mica_norm = max_normalize_columns(&mica_dataset(&set));
        println!("\nFigure 3 — microarchitecture-independent characteristics (normalized to max)");
        println!("{:<42} {:>8} {:>8} {:>8}", "characteristic", "bzip2", "blast", "|diff|");
        let mut mica_rows = Vec::new();
        let mut mica_dist2 = 0.0;
        for (c, info) in METRICS.iter().enumerate() {
            let (b, l) = (mica_norm.get(bzip2_idx, c), mica_norm.get(blast_idx, c));
            println!("{:<42} {b:>8.3} {l:>8.3} {:>8.3}", info.name, (b - l).abs());
            mica_rows.push(format!("{},{b:.4},{l:.4}", info.short));
            mica_dist2 += (b - l) * (b - l);
        }
        write_csv(&results_dir().join("fig3.csv"), "metric,bzip2_graphic,blast_protein", &mica_rows)
            .expect("csv writes");
        let fig3 = plot::svg_grouped_bars(
            "Fig. 3 — bzip2 vs blast: microarchitecture-independent characteristics",
            &METRICS.iter().map(|m| m.short.to_string()).collect::<Vec<_>>(),
            &[
                ("bzip2".into(), (0..47).map(|c| mica_norm.get(bzip2_idx, c)).collect()),
                ("blast".into(), (0..47).map(|c| mica_norm.get(blast_idx, c)).collect()),
            ],
        );
        write_text(&results_dir().join("fig3.svg"), &fig3).expect("svg writes");
        (mica_norm, mica_dist2)
    });

    println!(
        "\nnormalized RMS difference — HPC space: {:.3}, uarch-independent space: {:.3}",
        (hpc_dist2 / HPC_EXTENDED_NAMES.len() as f64).sqrt(),
        (mica_dist2 / 47.0).sqrt()
    );
    println!("(the paper's pitfall: the first is small while the second is large)");

    // The paper picked bzip2-vs-blast because it was a striking false
    // positive in *their* data. Our workloads are reproductions, so also
    // report the most striking false-positive pair measured here: smallest
    // HPC distance among pairs whose MICA distance is large.
    let (mica_d, hpc_d) =
        run.stage("distances", || mica_experiments::analysis::workload_distances(&set));
    let hpc_threshold = 0.2 * hpc_d.max();
    let best = mica_d
        .iter_pairs()
        .filter(|&(i, j, _)| hpc_d.get(i, j) <= hpc_threshold)
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite distances"));
    if let Some((i, j, md)) = best {
        println!(
            "\nmost striking false positive in this reproduction:\n  {} vs {}\n  \
             HPC distance {:.2} (threshold {:.2}), uarch-independent distance {:.2} (max {:.2})",
            set.records[i].name,
            set.records[j].name,
            hpc_d.get(i, j),
            hpc_threshold,
            md,
            mica_d.max()
        );
        let mut rows = Vec::new();
        println!("  most divergent inherent characteristics:");
        let mut diffs: Vec<(usize, f64)> = (0..47)
            .map(|c| (c, (mica_norm.get(i, c) - mica_norm.get(j, c)).abs()))
            .collect();
        diffs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        for &(c, d) in diffs.iter().take(6) {
            println!("    {:<42} |diff| = {d:.3}", METRICS[c].name);
            rows.push(format!("{},{d:.4}", METRICS[c].short));
        }
        write_csv(
            &results_dir().join("fig3_false_positive.csv"),
            "metric,normalized_abs_diff",
            &rows,
        )
        .expect("csv writes");
    }
    run.finish();
}

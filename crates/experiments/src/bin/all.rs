//! Run every experiment in sequence: profiling (cached), then Table I,
//! Figure 1, Table III, Figures 2/3, Figure 4, Figure 5, Table IV and
//! Figure 6. Equivalent to running each binary individually.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in ["table1", "fig1", "table3", "fig2_fig3", "fig4", "fig5", "table4", "fig6"] {
        println!("\n================ {bin} ================\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("cannot launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall experiments completed; artifacts are in the results directory");
}

//! Run every experiment in sequence: profiling (cached), then Table I,
//! Figure 1, Table III, Figures 2/3, Figure 4, Figure 5, Table IV and
//! Figure 6. Equivalent to running each binary individually.

use mica_experiments::runner::Runner;
use std::process::Command;

fn main() {
    let mut run = Runner::new("all");
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir").to_path_buf();
    // Children inherit the environment, so a single MICA_TRACE would have
    // each child overwrite the previous trace; give every child its own
    // file derived from the parent's setting (out.json -> out.table1.json).
    let trace = std::env::var_os("MICA_TRACE").map(std::path::PathBuf::from);
    for bin in ["table1", "fig1", "table3", "fig2_fig3", "fig4", "fig5", "table4", "fig6"] {
        println!("\n================ {bin} ================\n");
        run.stage(bin, || {
            let mut cmd = Command::new(dir.join(bin));
            if let Some(base) = &trace {
                let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
                cmd.env("MICA_TRACE", base.with_file_name(format!("{stem}.{bin}.json")));
            }
            let status = cmd.status().unwrap_or_else(|e| panic!("cannot launch {bin}: {e}"));
            assert!(status.success(), "{bin} failed");
        });
    }
    run.finish();
    println!("\nall experiments completed; artifacts are in the results directory");
}

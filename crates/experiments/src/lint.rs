//! Static lint pass over the full 122-benchmark table.
//!
//! Shared by the `mica-lint` binary and the workspace gate test
//! (`tests/lint.rs`): both assemble every benchmark's kernel and run the
//! [`mica_verify`] checks against the workload memory map. The zoo must be
//! `Error`-clean — a kernel that reads an uninitialized register or carries
//! unreachable code skews the characterization without failing any dynamic
//! test.

use mica_par::par_map;
use mica_verify::{verify_with_analysis, Analysis, Report, Segment, VerifyConfig};
use mica_workloads::{benchmark_table, DATA2_BASE, DATA3_BASE, DATA_BASE, STACK_TOP};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tinyisa::Program;

/// The verifier configuration for workload kernels.
///
/// - No entry registers: kernels materialize every value they use with
///   `li`/`fli`; the harness presets nothing.
/// - Segments mirror the workload memory map ([`mica_workloads`] doc):
///   three data regions (each extended to the next region's base — the
///   memory is sparse, so the bound only has to catch *wild* constants,
///   not enforce a footprint) and a 1 MiB stack below [`STACK_TOP`].
/// - `expect_halt` off: kernels are endless steady-state loops profiled to
///   fuel exhaustion.
pub fn workload_config() -> VerifyConfig {
    const STACK_LEN: u64 = 0x10_0000;
    VerifyConfig {
        entry_regs: Vec::new(),
        segments: vec![
            Segment { name: "stack", start: STACK_TOP - STACK_LEN, len: STACK_LEN },
            Segment { name: "data", start: DATA_BASE, len: DATA2_BASE - DATA_BASE },
            Segment { name: "data2", start: DATA2_BASE, len: DATA3_BASE - DATA2_BASE },
            Segment { name: "data3", start: DATA3_BASE, len: DATA3_BASE },
        ],
        expect_halt: false,
    }
}

/// Assemble and verify every benchmark in the table, in table order.
///
/// Runs under [`mica_par::par_map`] (respects `MICA_THREADS`).
///
/// # Panics
///
/// Panics if a kernel fails to assemble — that is a table bug, not a lint
/// finding.
pub fn lint_all() -> Vec<(String, Report)> {
    lint_and_survey().into_iter().map(|(name, report, _)| (name, report)).collect()
}

/// [`lint_all`] plus the per-kernel static survey, sharing one
/// [`Analysis`] build per kernel between the lint passes and the report.
pub fn lint_and_survey() -> Vec<(String, Report, KernelStatic)> {
    let specs = benchmark_table();
    let config = workload_config();
    par_map(&specs, |spec| {
        let mut span = mica_obs::span("lint", spec.name());
        let vm = spec.build_vm().unwrap_or_else(|e| {
            panic!("{}: kernel failed to assemble: {e}", spec.name());
        });
        let analysis = Analysis::build(vm.program(), &config);
        let report = verify_with_analysis(vm.program(), &analysis, &config);
        let survey = KernelStatic::collect(&spec.name(), vm.program(), &analysis, &report);
        span.attr("errors", report.errors().count() as u64);
        span.attr("warnings", report.warnings().count() as u64);
        span.attr("loops", survey.loops.len() as u64);
        (spec.name(), report, survey)
    })
}

/// One finding in the machine-readable (`mica-lint --json`) shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonFinding {
    /// `suite/program/input` identifier of the kernel.
    pub kernel: String,
    /// Stable kebab-case lint name (e.g. `dead-store`).
    pub lint: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// Instruction index of the offending site.
    pub idx: usize,
    /// Byte address of the offending site.
    pub pc: u64,
    /// Disassembly of the offending instruction.
    pub disasm: String,
    /// Human-readable description of the defect.
    pub message: String,
}

/// Flatten lint reports into the `--json` artifact shape, in table order.
pub fn findings_json(reports: &[(String, Report)]) -> Vec<JsonFinding> {
    let mut out = Vec::new();
    for (kernel, report) in reports {
        for f in &report.findings {
            out.push(JsonFinding {
                kernel: kernel.clone(),
                lint: f.lint.name().to_string(),
                severity: f.severity.to_string(),
                idx: f.idx,
                pc: f.pc,
                disasm: f.disasm.clone(),
                message: f.message.clone(),
            });
        }
    }
    out
}

/// One natural loop in the static survey: where it is, how big it is, and
/// which instruction ranges a region-selecting JIT would compile for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopSummary {
    /// Byte address of the loop header's first instruction.
    pub header_pc: u64,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
    /// Number of basic blocks in the body.
    pub blocks: usize,
    /// Number of instructions in the body.
    pub insts: usize,
    /// Number of CFG edges leaving the loop.
    pub exits: usize,
    /// Instruction-index ranges `[start, end)` of the body blocks, sorted.
    pub body_ranges: Vec<(usize, usize)>,
}

/// Per-kernel static structure: the `mica-lint --static` report entry.
///
/// This is the region-selection input a tiered JIT needs — which loops
/// exist, how deeply they nest, and what the code inside them looks like —
/// derived purely statically, to be compared against the dynamic profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStatic {
    /// `suite/program/input` identifier.
    pub name: String,
    /// Total instructions in the kernel.
    pub insts: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Blocks reachable from the entry (through the refined CFG).
    pub reachable_blocks: usize,
    /// Indirect-transfer blocks resolved to a single target by constant
    /// propagation.
    pub refined_blocks: usize,
    /// All natural loops, in loop-forest order.
    pub loops: Vec<LoopSummary>,
    /// Static instruction mix over reachable blocks, keyed by
    /// [`tinyisa::InstClass`] name.
    pub static_mix: BTreeMap<String, usize>,
    /// `Error`-severity findings count.
    pub errors: usize,
    /// `Warn`-severity findings count.
    pub warnings: usize,
}

impl KernelStatic {
    /// Summarize one analyzed kernel.
    pub fn collect(name: &str, prog: &Program, analysis: &Analysis, report: &Report) -> Self {
        let cfg = analysis.cfg();
        let insts = prog.insts();
        let mut static_mix = BTreeMap::new();
        let mut reachable_blocks = 0usize;
        for (b, block) in cfg.blocks().iter().enumerate() {
            if !cfg.is_reachable(b) {
                continue;
            }
            reachable_blocks += 1;
            for inst in &insts[block.start..block.end] {
                *static_mix.entry(format!("{:?}", inst.class())).or_insert(0) += 1;
            }
        }
        let loops = analysis
            .loops()
            .loops
            .iter()
            .map(|lp| {
                let body_ranges: Vec<(usize, usize)> = lp
                    .body
                    .iter()
                    .map(|&b| (cfg.blocks()[b].start, cfg.blocks()[b].end))
                    .collect();
                LoopSummary {
                    header_pc: prog.pc_of(cfg.blocks()[lp.header].start),
                    depth: lp.depth,
                    blocks: lp.body.len(),
                    insts: body_ranges.iter().map(|&(s, e)| e - s).sum(),
                    exits: lp.exits.len(),
                    body_ranges,
                }
            })
            .collect();
        KernelStatic {
            name: name.to_string(),
            insts: insts.len(),
            blocks: cfg.blocks().len(),
            reachable_blocks,
            refined_blocks: analysis.refined_blocks(),
            loops,
            static_mix,
            errors: report.errors().count(),
            warnings: report.warnings().count(),
        }
    }
}

//! Static lint pass over the full 122-benchmark table.
//!
//! Shared by the `mica-lint` binary and the workspace gate test
//! (`tests/lint.rs`): both assemble every benchmark's kernel and run the
//! [`mica_verify`] checks against the workload memory map. The zoo must be
//! `Error`-clean — a kernel that reads an uninitialized register or carries
//! unreachable code skews the characterization without failing any dynamic
//! test.

use mica_par::par_map;
use mica_verify::{verify, Report, Segment, VerifyConfig};
use mica_workloads::{benchmark_table, DATA2_BASE, DATA3_BASE, DATA_BASE, STACK_TOP};

/// The verifier configuration for workload kernels.
///
/// - No entry registers: kernels materialize every value they use with
///   `li`/`fli`; the harness presets nothing.
/// - Segments mirror the workload memory map ([`mica_workloads`] doc):
///   three data regions (each extended to the next region's base — the
///   memory is sparse, so the bound only has to catch *wild* constants,
///   not enforce a footprint) and a 1 MiB stack below [`STACK_TOP`].
/// - `expect_halt` off: kernels are endless steady-state loops profiled to
///   fuel exhaustion.
pub fn workload_config() -> VerifyConfig {
    const STACK_LEN: u64 = 0x10_0000;
    VerifyConfig {
        entry_regs: Vec::new(),
        segments: vec![
            Segment { name: "stack", start: STACK_TOP - STACK_LEN, len: STACK_LEN },
            Segment { name: "data", start: DATA_BASE, len: DATA2_BASE - DATA_BASE },
            Segment { name: "data2", start: DATA2_BASE, len: DATA3_BASE - DATA2_BASE },
            Segment { name: "data3", start: DATA3_BASE, len: DATA3_BASE },
        ],
        expect_halt: false,
    }
}

/// Assemble and verify every benchmark in the table, in table order.
///
/// Runs under [`mica_par::par_map`] (respects `MICA_THREADS`).
///
/// # Panics
///
/// Panics if a kernel fails to assemble — that is a table bug, not a lint
/// finding.
pub fn lint_all() -> Vec<(String, Report)> {
    let specs = benchmark_table();
    let config = workload_config();
    par_map(&specs, |spec| {
        let mut span = mica_obs::span("lint", spec.name());
        let vm = spec.build_vm().unwrap_or_else(|e| {
            panic!("{}: kernel failed to assemble: {e}", spec.name());
        });
        let report = verify(vm.program(), &config);
        span.attr("errors", report.errors().count() as u64);
        span.attr("warnings", report.warnings().count() as u64);
        (spec.name(), report)
    })
}

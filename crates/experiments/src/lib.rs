//! Regeneration pipelines for every table and figure of the paper.
//!
//! The expensive step — running all 122 benchmarks through both the
//! microarchitecture-independent characterization and the simulated
//! hardware-performance-counter profiling — is done once by
//! [`profile::load_or_profile_all`] and cached as JSON; each experiment
//! binary (`table1`, `fig1`, `table3`, `fig2_fig3`, `fig4`, `fig5`,
//! `table4`, `fig6`) then reads the cache and prints/plots its result.
//!
//! Environment knobs:
//!
//! - `MICA_SCALE` — float multiplier on every benchmark's instruction
//!   budget (default 1.0);
//! - `MICA_RESULTS_DIR` — output directory (default `results`);
//! - `MICA_FAULTS` — deterministic fault injection (see [`mica_fault`]):
//!   `panic:kernel=NAME` panics that kernel's profiling run (it is
//!   quarantined and the other 121 benchmarks complete),
//!   `io:SITE[@N]`/`torn:SITE[@N]` fail or tear the first N artifact
//!   writes at a named site;
//! - `MICA_RETRIES` — extra attempts for failed artifact writes
//!   (default 3, fixed 1/2/4/… ms backoff).
//!
//! All artifacts (profile cache, CSVs, SVGs, run summaries) are written
//! atomically — temp file then rename — so a crash mid-write never leaves
//! a torn file.
//!
//! Observability (`MICA_LOG`, `MICA_TRACE`, `MICA_EVENTS`) is provided by
//! [`mica_obs`]; every binary drives a [`runner::Runner`] that times its
//! stages and writes a machine-readable `run-<bin>.json` report next to
//! its outputs (override with `--report PATH` or `MICA_REPORT`). Two
//! deeper profiling knobs feed `mica-prof`:
//!
//! - `MICA_ALLOC=1` — count allocations and bytes per span via the
//!   process-wide tracking allocator installed below;
//! - `MICA_METRICS_EVERY=2s` — emit periodic heartbeat events carrying
//!   every counter, so long runs never go dark.
//!
//! The simulated PMU (`MICA_PMU=1`, sampling period `MICA_PMU_PERIOD`,
//! see [`mica_pmu`]) rides along with profiling runs and writes
//! block-level heat maps plus a flamegraph export under
//! `results/heat/` — without changing a byte of `profiles.json`.

pub mod analysis;
pub mod lint;
pub mod profile;
pub mod query;
pub mod results;
pub mod runner;

use std::path::PathBuf;

/// Allocation profiling needs the tracking allocator installed for the
/// whole process; every experiment binary and test links this crate, so
/// installing it here covers them all. Disabled (`MICA_ALLOC` unset) it
/// costs one relaxed atomic load per allocation.
#[global_allocator]
static ALLOC: mica_obs::alloc::TrackingAllocator = mica_obs::alloc::TrackingAllocator;

/// The results directory (`MICA_RESULTS_DIR`, default `results`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("MICA_RESULTS_DIR").map(PathBuf::from).unwrap_or_else(|| "results".into())
}

/// The instruction-budget multiplier (`MICA_SCALE`, default 1.0).
pub fn scale() -> f64 {
    std::env::var("MICA_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

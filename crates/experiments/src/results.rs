//! Profiling records and their JSON persistence.

use mica_core::MicaVector;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;
use uarch_sim::HpcProfile;

/// The complete profile of one benchmark instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// `suite/program/input` identifier.
    pub name: String,
    /// Suite display name.
    pub suite: String,
    /// Program name.
    pub program: String,
    /// Input name.
    pub input: String,
    /// The paper's dynamic instruction count, in millions.
    pub paper_icount_millions: u64,
    /// Instructions actually executed by this reproduction.
    pub executed_instructions: u64,
    /// The 47 microarchitecture-independent characteristics.
    pub mica: MicaVector,
    /// The simulated hardware-counter profile.
    pub hpc: HpcProfile,
}

/// All 122 profiles plus provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSet {
    /// The `MICA_SCALE` the profiles were collected at.
    pub scale: f64,
    /// Fingerprint of the benchmark table and metric layout the profiles
    /// were collected from (see [`crate::profile::profile_fingerprint`]).
    /// Caches
    /// written before this field existed fail to deserialize and are
    /// re-profiled — exactly the safe behavior for provenance-less data.
    pub fingerprint: u64,
    /// One record per benchmark, in Table I order.
    pub records: Vec<BenchRecord>,
}

impl ProfileSet {
    /// Save as JSON, atomically (temp-then-rename with bounded retry, site
    /// `cache-write`) — a crash mid-save leaves the previous cache intact
    /// instead of a torn file that would poison the next run.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors once the retry budget is exhausted;
    /// serialization of these types cannot fail.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string(self).expect("ProfileSet serializes");
        mica_fault::io::atomic_write_retry("cache-write", path, json.as_bytes())
    }

    /// Load from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if the file is missing or not a valid `ProfileSet`.
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Find a record by program name (first match) or full name.
    pub fn find(&self, needle: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.name == needle || r.program == needle)
    }
}

/// Write a CSV file (header + rows) under the results directory,
/// atomically with bounded retry (site `results`).
///
/// # Errors
///
/// Propagates filesystem errors once the retry budget is exhausted.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) -> io::Result<()> {
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    mica_fault::io::atomic_write_retry("results", path, out.as_bytes())
}

/// Write a text artifact (e.g. an SVG) under the results directory,
/// atomically with bounded retry (site `results`).
///
/// # Errors
///
/// Propagates filesystem errors once the retry budget is exhausted.
pub fn write_text(path: &Path, content: &str) -> io::Result<()> {
    mica_fault::io::atomic_write_retry("results", path, content.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mica_core::NUM_METRICS;

    fn record(name: &str) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            suite: "MiBench".into(),
            program: name.into(),
            input: "large".into(),
            paper_icount_millions: 10,
            executed_instructions: 1000,
            mica: MicaVector::new(vec![0.5; NUM_METRICS]),
            hpc: uarch_sim::HpcProfile {
                ipc_ev56: 1.0,
                branch_mispredict_rate: 0.02,
                l1d_miss_rate: 0.1,
                l1i_miss_rate: 0.0,
                l2_miss_rate: 0.3,
                dtlb_miss_rate: 0.01,
                ipc_ev67: 2.0,
                mix: [0.2, 0.1, 0.2, 0.4, 0.05, 0.05],
                instructions: 1000,
            },
        }
    }

    #[test]
    fn profile_set_round_trips() {
        let dir = std::env::temp_dir().join("mica_results_test");
        let path = dir.join("profiles.json");
        let set = ProfileSet { scale: 1.0, fingerprint: 42, records: vec![record("a"), record("b")] };
        set.save(&path).unwrap();
        let loaded = ProfileSet::load(&path).unwrap();
        assert_eq!(set, loaded);
        assert!(loaded.find("a").is_some());
        assert!(loaded.find("missing").is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn csv_writer_emits_header_and_rows() {
        let dir = std::env::temp_dir().join("mica_csv_test");
        let path = dir.join("t.csv");
        write_csv(&path, "a,b", &["1,2".into(), "3,4".into()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(dir).ok();
    }
}

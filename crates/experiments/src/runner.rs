//! Run-level orchestration shared by the experiment binaries.
//!
//! Every `src/bin/*` entry point used to hand-roll its own stage timing and
//! stderr chatter. [`Runner`] replaces that: it opens a run-level span,
//! times each named [`stage`](Runner::stage) under a child span, and on
//! [`finish`](Runner::finish) writes a machine-readable
//! `results/run-<bin>.json` summary — wall time per stage, every registered
//! `mica-obs` counter and histogram (raw buckets, so `mica-prof` can
//! recompute latency quantiles offline), thread count, budget scale, and
//! the workload-table fingerprint — then flushes all sinks so `MICA_TRACE`
//! files are complete even if the binary exits immediately afterwards.
//!
//! The summary path is `--report PATH` (every binary accepts it) or
//! `MICA_REPORT`, defaulting to `results/run-<bin>.json`.

use crate::profile::Quarantine;
use mica_obs as obs;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Wall time of one named pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stage name as passed to [`Runner::stage`].
    pub name: String,
    /// Wall-clock seconds the stage took.
    pub wall_s: f64,
}

/// One global counter at the end of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Counter name (e.g. `profile.cache.hit`).
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One global histogram at the end of the run — the raw power-of-two
/// buckets, so `mica-prof` can recompute p50/p95/p99 offline via
/// [`mica_obs::HistogramSnapshot::quantile_upper_bound`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Histogram name (e.g. `par.chunk_us`).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts, trailing zero buckets trimmed; bucket `b`
    /// holds values of bit length `b`.
    pub buckets: Vec<u64>,
}

impl HistogramEntry {
    fn from_snapshot(snap: mica_obs::HistogramSnapshot) -> HistogramEntry {
        let mut buckets = snap.buckets;
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramEntry { name: snap.name, count: snap.count, sum: snap.sum, buckets }
    }

    /// Rehydrate the [`mica_obs::HistogramSnapshot`] this entry was
    /// trimmed from, for quantile queries.
    pub fn to_snapshot(&self) -> mica_obs::HistogramSnapshot {
        mica_obs::HistogramSnapshot {
            name: self.name.clone(),
            count: self.count,
            sum: self.sum,
            buckets: self.buckets.clone(),
        }
    }
}

/// The machine-readable run report written as `results/run-<bin>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Binary name the run belongs to.
    pub bin: String,
    /// Budget scale the run used (`MICA_SCALE`).
    pub scale: f64,
    /// Worker-pool width (`MICA_THREADS` or detected parallelism).
    pub threads: u64,
    /// Analyzer backend the run used (`MICA_BACKEND`): `"ref"` or
    /// `"batch"`. Baselines only compare runs on the same backend.
    pub backend: String,
    /// Sampling period of the simulated PMU when the run profiled with
    /// `MICA_PMU=1`, `None` when the PMU was off. Recorded so a heat
    /// artifact can always be traced back to the period that produced it.
    pub pmu_period: Option<u64>,
    /// Fingerprint of the benchmark table the binaries were built with.
    pub table_fingerprint: u64,
    /// Total wall-clock seconds from [`Runner::new`] to [`Runner::finish`].
    pub wall_s: f64,
    /// Per-stage wall times, in execution order.
    pub stages: Vec<StageSummary>,
    /// Every registered counter, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Every registered histogram, sorted by name, buckets included so
    /// offline analysis can recompute latency quantiles.
    pub histograms: Vec<HistogramEntry>,
    /// Benchmarks quarantined during this run (empty on a clean run).
    pub quarantined: Vec<Quarantine>,
}

/// Resolve where the run summary goes: the `--report PATH` (or
/// `--report=PATH`) command-line flag wins, then the `MICA_REPORT`
/// environment variable, then `results/run-<bin>.json`. Every experiment
/// binary constructs a [`Runner`], so every binary accepts the flag — CI
/// collects summaries from parallel jobs without fighting over
/// `MICA_RESULTS_DIR`.
fn report_path(bin: &str) -> PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--report" {
            if let Some(path) = args.next() {
                return PathBuf::from(path);
            }
            eprintln!("warning: --report needs a path; using the default");
        } else if let Some(path) = arg.strip_prefix("--report=") {
            return PathBuf::from(path);
        }
    }
    if let Some(path) = std::env::var_os("MICA_REPORT") {
        return PathBuf::from(path);
    }
    crate::results_dir().join(format!("run-{bin}.json"))
}

/// Stage-timing and run-report helper; one per binary invocation.
pub struct Runner {
    bin: &'static str,
    started: Instant,
    /// Keeps the run's [`obs::TraceContext`] installed for the run's
    /// lifetime, so every stage and pool span shares one trace id.
    /// Dropped after `run_span` (LIFO) in [`finish`](Runner::finish).
    ctx_guard: obs::ContextGuard,
    run_span: obs::Span,
    stages: Vec<StageSummary>,
    quarantined: Vec<Quarantine>,
}

impl Runner {
    /// Start a run for binary `bin`: registers the profiling counters (so
    /// they appear at zero in the summary even on cache-free paths), mints
    /// the run's trace context (every span of the run shares its trace
    /// id), opens the run-level span, and announces the run configuration
    /// at info.
    pub fn new(bin: &'static str) -> Runner {
        crate::profile::register_counters();
        let threads = mica_par::num_threads();
        let scale = crate::scale();
        // Resolve the backend up front so a bad MICA_BACKEND aborts before
        // any work, not 122 quarantines into the profile stage.
        let backend = mica_core::Backend::from_env();
        let ctx = obs::TraceContext::fresh();
        let ctx_guard = obs::install_context(Some(ctx));
        let mut run_span = obs::span("run", bin);
        run_span.attr("threads", threads as u64);
        run_span.attr("scale", scale);
        run_span.attr("backend", backend.name());
        run_span.attr("trace", ctx.trace_hex());
        obs::info!("{bin}: starting ({threads} threads, scale {scale}, backend {backend})");
        Runner {
            bin,
            started: Instant::now(),
            ctx_guard,
            run_span,
            stages: Vec::new(),
            quarantined: Vec::new(),
        }
    }

    /// Record benchmarks quarantined during this run, so the run summary
    /// carries the list alongside the counters.
    pub fn quarantine(&mut self, quarantined: &[Quarantine]) {
        self.quarantined.extend_from_slice(quarantined);
    }

    /// Run `f` as the named stage: timed, wrapped in a `stage` span, and
    /// recorded for the run summary.
    pub fn stage<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let _span = obs::span("stage", name.to_string());
        let out = f();
        let wall_s = started.elapsed().as_secs_f64();
        obs::debug!("{}: stage {name} took {wall_s:.3}s", self.bin);
        self.stages.push(StageSummary { name: name.to_string(), wall_s });
        out
    }

    /// Close the run: write `run-<bin>.json` under the results directory,
    /// flush every sink, and return the summary. A summary that cannot be
    /// written is warned about, never fatal — the run's real outputs are
    /// the tables and figures.
    pub fn finish(self) -> RunSummary {
        let Runner { bin, started, ctx_guard, mut run_span, stages, quarantined } = self;
        let summary = RunSummary {
            bin: bin.to_string(),
            scale: crate::scale(),
            threads: mica_par::num_threads() as u64,
            backend: mica_core::Backend::from_env().name().to_string(),
            pmu_period: mica_pmu::PmuConfig::from_env().map(|c| c.period),
            table_fingerprint: mica_workloads::table_fingerprint(),
            wall_s: started.elapsed().as_secs_f64(),
            stages,
            counters: obs::counters()
                .into_iter()
                .map(|(name, value)| CounterEntry { name, value })
                .collect(),
            histograms: obs::histograms()
                .into_iter()
                .map(HistogramEntry::from_snapshot)
                .collect(),
            quarantined,
        };
        let path = report_path(bin);
        let json = serde_json::to_string_pretty(&summary).expect("RunSummary serializes");
        let written =
            mica_fault::io::atomic_write_retry("run-summary", &path, json.as_bytes());
        match written {
            Ok(()) => obs::info!(
                "{bin}: done in {:.3}s; run summary at {}",
                summary.wall_s,
                path.display()
            ),
            Err(e) => obs::warn!("{bin}: cannot write run summary {}: {e}", path.display()),
        }
        run_span.attr("wall_s", summary.wall_s);
        // The span must close inside its context (LIFO with the guard).
        drop(run_span);
        drop(ctx_guard);
        obs::flush();
        summary
    }
}

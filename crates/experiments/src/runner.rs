//! Run-level orchestration shared by the experiment binaries.
//!
//! Every `src/bin/*` entry point used to hand-roll its own stage timing and
//! stderr chatter. [`Runner`] replaces that: it opens a run-level span,
//! times each named [`stage`](Runner::stage) under a child span, and on
//! [`finish`](Runner::finish) writes a machine-readable
//! `results/run-<bin>.json` summary — wall time per stage, every registered
//! `mica-obs` counter, thread count, budget scale, and the workload-table
//! fingerprint — then flushes all sinks so `MICA_TRACE` files are complete
//! even if the binary exits immediately afterwards.

use crate::profile::Quarantine;
use mica_obs as obs;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall time of one named pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stage name as passed to [`Runner::stage`].
    pub name: String,
    /// Wall-clock seconds the stage took.
    pub wall_s: f64,
}

/// One global counter at the end of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Counter name (e.g. `profile.cache.hit`).
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// The machine-readable run report written as `results/run-<bin>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Binary name the run belongs to.
    pub bin: String,
    /// Budget scale the run used (`MICA_SCALE`).
    pub scale: f64,
    /// Worker-pool width (`MICA_THREADS` or detected parallelism).
    pub threads: u64,
    /// Fingerprint of the benchmark table the binaries were built with.
    pub table_fingerprint: u64,
    /// Total wall-clock seconds from [`Runner::new`] to [`Runner::finish`].
    pub wall_s: f64,
    /// Per-stage wall times, in execution order.
    pub stages: Vec<StageSummary>,
    /// Every registered counter, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Benchmarks quarantined during this run (empty on a clean run).
    pub quarantined: Vec<Quarantine>,
}

/// Stage-timing and run-report helper; one per binary invocation.
pub struct Runner {
    bin: &'static str,
    started: Instant,
    run_span: obs::Span,
    stages: Vec<StageSummary>,
    quarantined: Vec<Quarantine>,
}

impl Runner {
    /// Start a run for binary `bin`: registers the profiling counters (so
    /// they appear at zero in the summary even on cache-free paths), opens
    /// the run-level span, and announces the run configuration at info.
    pub fn new(bin: &'static str) -> Runner {
        crate::profile::register_counters();
        let threads = mica_par::num_threads();
        let scale = crate::scale();
        let mut run_span = obs::span("run", bin);
        run_span.attr("threads", threads as u64);
        run_span.attr("scale", scale);
        obs::info!("{bin}: starting ({threads} threads, scale {scale})");
        Runner { bin, started: Instant::now(), run_span, stages: Vec::new(), quarantined: Vec::new() }
    }

    /// Record benchmarks quarantined during this run, so the run summary
    /// carries the list alongside the counters.
    pub fn quarantine(&mut self, quarantined: &[Quarantine]) {
        self.quarantined.extend_from_slice(quarantined);
    }

    /// Run `f` as the named stage: timed, wrapped in a `stage` span, and
    /// recorded for the run summary.
    pub fn stage<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let _span = obs::span("stage", name.to_string());
        let out = f();
        let wall_s = started.elapsed().as_secs_f64();
        obs::debug!("{}: stage {name} took {wall_s:.3}s", self.bin);
        self.stages.push(StageSummary { name: name.to_string(), wall_s });
        out
    }

    /// Close the run: write `run-<bin>.json` under the results directory,
    /// flush every sink, and return the summary. A summary that cannot be
    /// written is warned about, never fatal — the run's real outputs are
    /// the tables and figures.
    pub fn finish(self) -> RunSummary {
        let Runner { bin, started, mut run_span, stages, quarantined } = self;
        let summary = RunSummary {
            bin: bin.to_string(),
            scale: crate::scale(),
            threads: mica_par::num_threads() as u64,
            table_fingerprint: mica_workloads::table_fingerprint(),
            wall_s: started.elapsed().as_secs_f64(),
            stages,
            counters: obs::counters()
                .into_iter()
                .map(|(name, value)| CounterEntry { name, value })
                .collect(),
            quarantined,
        };
        let path = crate::results_dir().join(format!("run-{bin}.json"));
        let json = serde_json::to_string_pretty(&summary).expect("RunSummary serializes");
        let written =
            mica_fault::io::atomic_write_retry("run-summary", &path, json.as_bytes());
        match written {
            Ok(()) => obs::info!(
                "{bin}: done in {:.3}s; run summary at {}",
                summary.wall_s,
                path.display()
            ),
            Err(e) => obs::warn!("{bin}: cannot write run summary {}: {e}", path.display()),
        }
        run_span.attr("wall_s", summary.wall_s);
        drop(run_span);
        obs::flush();
        summary
    }
}

//! Shared analysis helpers used by the experiment binaries.

use crate::results::ProfileSet;
use mica_core::METRICS;
use mica_stats::{pairwise_distances, zscore_normalize, CondensedDistances, DataSet};

/// The 122 x 47 microarchitecture-independent data set (raw values).
pub fn mica_dataset(set: &ProfileSet) -> DataSet {
    DataSet::from_rows(set.records.iter().map(|r| r.mica.values().to_vec()).collect())
}

/// The 122 x 7 hardware-performance-counter data set (raw values).
pub fn hpc_dataset(set: &ProfileSet) -> DataSet {
    DataSet::from_rows(set.records.iter().map(|r| r.hpc.counter_vector()).collect())
}

/// Pairwise distances in both z-scored workload spaces:
/// `(mica_distances, hpc_distances)` — the Section IV construction.
pub fn workload_distances(set: &ProfileSet) -> (CondensedDistances, CondensedDistances) {
    let mica = pairwise_distances(&zscore_normalize(&mica_dataset(set)));
    let hpc = pairwise_distances(&zscore_normalize(&hpc_dataset(set)));
    (mica, hpc)
}

/// Per-characteristic max-normalization for the Figure 2/3 case-study bar
/// charts: each value is divided by the maximum observed for that
/// characteristic across all benchmarks (the paper's normalization for
/// those figures).
pub fn max_normalize_columns(ds: &DataSet) -> DataSet {
    let mut out = ds.clone();
    for c in 0..ds.cols() {
        let max = (0..ds.rows()).map(|r| ds.get(r, c).abs()).fold(0.0f64, f64::max);
        for r in 0..ds.rows() {
            let v = if max > 0.0 { ds.get(r, c) / max } else { 0.0 };
            out.set(r, c, v);
        }
    }
    out
}

/// Short axis labels for the eight characteristics used in kiviat plots.
pub fn metric_short_names(indices: &[usize]) -> Vec<String> {
    indices.iter().map(|&i| METRICS[i].short.to_string()).collect()
}

/// Scale each selected column of `ds` into `[0, 1]` by min-max over rows
/// (for kiviat axes).
pub fn minmax_normalize_columns(ds: &DataSet) -> DataSet {
    let mut out = ds.clone();
    for c in 0..ds.cols() {
        let col = ds.column(c);
        let min = col.iter().copied().fold(f64::INFINITY, f64::min);
        let max = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = max - min;
        for r in 0..ds.rows() {
            let v = if span > 0.0 { (ds.get(r, c) - min) / span } else { 0.5 };
            out.set(r, c, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::BenchRecord;
    use mica_core::{MicaVector, NUM_METRICS};
    use uarch_sim::HpcProfile;

    fn fake_set(n: usize) -> ProfileSet {
        let records = (0..n)
            .map(|i| BenchRecord {
                name: format!("s/p{i}/in"),
                suite: "s".into(),
                program: format!("p{i}"),
                input: "in".into(),
                paper_icount_millions: 1,
                executed_instructions: 1,
                mica: MicaVector::new((0..NUM_METRICS).map(|m| (i * m) as f64).collect()),
                hpc: HpcProfile {
                    ipc_ev56: i as f64,
                    branch_mispredict_rate: 0.0,
                    l1d_miss_rate: 0.1,
                    l1i_miss_rate: 0.0,
                    l2_miss_rate: 0.0,
                    dtlb_miss_rate: 0.0,
                    ipc_ev67: 2.0 * i as f64,
                    mix: [0.0; 6],
                    instructions: 1,
                },
            })
            .collect();
        ProfileSet { scale: 1.0, fingerprint: 0, records }
    }

    #[test]
    fn datasets_have_expected_shapes() {
        let set = fake_set(5);
        assert_eq!((mica_dataset(&set).rows(), mica_dataset(&set).cols()), (5, 47));
        assert_eq!((hpc_dataset(&set).rows(), hpc_dataset(&set).cols()), (5, 7));
        let (m, h) = workload_distances(&set);
        assert_eq!(m.len(), 10);
        assert_eq!(h.len(), 10);
    }

    #[test]
    fn max_normalize_bounds_values() {
        let set = fake_set(4);
        let n = max_normalize_columns(&mica_dataset(&set));
        for r in 0..n.rows() {
            for c in 0..n.cols() {
                assert!(n.get(r, c).abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn minmax_normalize_hits_zero_and_one() {
        let ds = DataSet::from_rows(vec![vec![2.0], vec![4.0], vec![6.0]]);
        let n = minmax_normalize_columns(&ds);
        assert_eq!(n.get(0, 0), 0.0);
        assert_eq!(n.get(2, 0), 1.0);
    }

    #[test]
    fn short_names_follow_indices() {
        let names = metric_short_names(&[0, 46]);
        assert_eq!(names, vec!["pct_loads".to_string(), "ppm_pas".to_string()]);
    }
}

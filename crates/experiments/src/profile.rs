//! Profiling: run benchmarks through both characterizations.
//!
//! The parallel entry points run with **panic isolation and quarantine**:
//! a benchmark whose kernel panics (or returns a [`ProfileError`]) is
//! recorded in [`ProfileOutcome::quarantined`] while the remaining 121
//! benchmarks complete, so one bad kernel degrades a run instead of
//! killing it. [`profile_all_serial`] keeps the old abort-on-first-error
//! semantics as the reference implementation.
//!
//! Every entry point honors `MICA_BACKEND=ref|batch` (see
//! [`mica_core::Backend`]): `batch` delivers retired instructions to the
//! analyzers a block at a time through their `retire_block` fast paths,
//! `ref` (the default) forces the per-instruction reference tier via
//! [`PerInst`]. The two tiers are differentially tested to produce
//! bit-identical profiles. `MICA_ANALYZER_TIMING=1` additionally times
//! each analyzer's share of delivery, feeding the
//! `profile.analyzer.*_us` counters that `mica-prof analyze` renders.

use crate::results::{BenchRecord, ProfileSet};
use mica_core::{Backend, CharacterizationSuite, MicaVector, PerInst, NUM_METRICS};
use mica_obs as obs;
use mica_pmu::{KernelHeat, Pmu, PmuConfig};
use mica_workloads::{benchmark_table, table_fingerprint, BenchmarkSpec};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use tinyisa::{AsmError, DynInst, TraceSink, VmError};
use uarch_sim::{HpcProfile, HpcSimulator};

/// Benchmarks profiled (each tandem run counts once).
static KERNELS: obs::Counter = obs::Counter::new("profile.kernels");
/// Dynamic instructions simulated across all profiled benchmarks.
static INSTS: obs::Counter = obs::Counter::new("profile.insts");
/// Cache reuses in [`load_or_profile_all`].
static CACHE_HIT: obs::Counter = obs::Counter::new("profile.cache.hit");
/// Cache misses, one counter per [`CacheMiss::reason`].
static CACHE_MISS_ABSENT: obs::Counter = obs::Counter::new("profile.cache.miss.absent");
static CACHE_MISS_IO: obs::Counter = obs::Counter::new("profile.cache.miss.io");
static CACHE_MISS_PARSE: obs::Counter = obs::Counter::new("profile.cache.miss.parse");
static CACHE_MISS_SCALE: obs::Counter = obs::Counter::new("profile.cache.miss.scale");
static CACHE_MISS_FINGERPRINT: obs::Counter = obs::Counter::new("profile.cache.miss.fingerprint");
static CACHE_MISS_SIZE: obs::Counter = obs::Counter::new("profile.cache.miss.size");
/// Benchmarks quarantined (panicked or errored) instead of profiled.
static QUARANTINED: obs::Counter = obs::Counter::new("profile.quarantined");
/// Wall time per profiled kernel, microseconds — run summaries carry the
/// buckets, so `mica-prof` reports per-kernel p50/p95/p99 offline.
static KERNEL_US: obs::Histogram = obs::Histogram::new("profile.kernel_us");
/// Delivery wall time per analyzer, microseconds, collected only under
/// `MICA_ANALYZER_TIMING=1`. Deliberately *not* in [`register_counters`]:
/// they self-register on first bump, so ordinary runs don't list seven
/// permanently-zero counters.
static ANALYZER_MIX_US: obs::Counter = obs::Counter::new("profile.analyzer.mix_us");
static ANALYZER_ILP_US: obs::Counter = obs::Counter::new("profile.analyzer.ilp_us");
static ANALYZER_REG_US: obs::Counter = obs::Counter::new("profile.analyzer.reg_us");
static ANALYZER_WSS_US: obs::Counter = obs::Counter::new("profile.analyzer.wss_us");
static ANALYZER_STRIDES_US: obs::Counter = obs::Counter::new("profile.analyzer.strides_us");
static ANALYZER_PPM_US: obs::Counter = obs::Counter::new("profile.analyzer.ppm_us");
static ANALYZER_HPC_US: obs::Counter = obs::Counter::new("profile.analyzer.hpc_us");

/// Register every profiling counter so run summaries list them (at zero)
/// even on paths that never touch the cache or the profiler.
pub fn register_counters() {
    for c in [
        &KERNELS,
        &INSTS,
        &CACHE_HIT,
        &CACHE_MISS_ABSENT,
        &CACHE_MISS_IO,
        &CACHE_MISS_PARSE,
        &CACHE_MISS_SCALE,
        &CACHE_MISS_FINGERPRINT,
        &CACHE_MISS_SIZE,
        &QUARANTINED,
    ] {
        c.register();
    }
}

/// Errors while profiling a benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The kernel failed to assemble (a bug in the kernel builder).
    Assemble(AsmError),
    /// The kernel faulted at runtime (a bug in the kernel code).
    Runtime(VmError),
    /// The requested budget scale is not a finite positive number. Stores
    /// the offending value's IEEE-754 bits (so the variant stays `Eq`);
    /// recover it with [`f64::from_bits`].
    InvalidScale(u64),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Assemble(e) => write!(f, "kernel failed to assemble: {e}"),
            ProfileError::Runtime(e) => write!(f, "kernel faulted: {e}"),
            ProfileError::InvalidScale(bits) => {
                write!(f, "budget scale must be finite and positive, got {}", f64::from_bits(*bits))
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<AsmError> for ProfileError {
    fn from(e: AsmError) -> Self {
        ProfileError::Assemble(e)
    }
}

impl From<VmError> for ProfileError {
    fn from(e: VmError) -> Self {
        ProfileError::Runtime(e)
    }
}

/// Fan one trace out to both the MICA suite and the HPC simulator, so one
/// VM run produces both characterizations of identical dynamic behavior.
struct Tandem<'a> {
    mica: &'a mut CharacterizationSuite,
    hpc: &'a mut HpcSimulator,
}

impl TraceSink for Tandem<'_> {
    fn retire(&mut self, inst: &DynInst) {
        self.mica.retire(inst);
        self.hpc.retire(inst);
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        self.mica.retire_block(block);
        self.hpc.retire_block(block);
    }
}

/// Fan a delivery to an inner sink and a [`Pmu`] leg. The PMU is passive —
/// it never mutates the instruction stream — so wrapping a sink in
/// `WithPmu` cannot change what the inner sink observes, which is the
/// whole determinism story for `MICA_PMU=1` (see `tests/pmu.rs`).
struct WithPmu<'a, S> {
    inner: S,
    pmu: &'a mut Pmu,
}

impl<S: TraceSink> TraceSink for WithPmu<'_, S> {
    fn retire(&mut self, inst: &DynInst) {
        self.inner.retire(inst);
        self.pmu.retire(inst);
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        self.inner.retire_block(block);
        self.pmu.retire_block(block);
    }
}

/// Whether `MICA_ANALYZER_TIMING` asks for per-analyzer delivery timing
/// (any non-empty value other than `0`).
fn analyzer_timing() -> bool {
    std::env::var("MICA_ANALYZER_TIMING").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Deliver `block` to one analyzer on the requested tier and charge the
/// wall time to its counter.
fn timed_deliver<S: TraceSink + ?Sized>(
    sink: &mut S,
    block: &[DynInst],
    backend: Backend,
    counter: &obs::Counter,
) {
    let started = std::time::Instant::now();
    match backend {
        Backend::Batch => sink.retire_block(block),
        Backend::Ref => {
            for inst in block {
                sink.retire(inst);
            }
        }
    }
    counter.add(started.elapsed().as_micros() as u64);
}

/// [`Tandem`] with a stopwatch per analyzer: delivery is fanned out
/// component by component so each analyzer's share of the profile wall
/// time lands on its own `profile.analyzer.*_us` counter. Per-analyzer
/// state evolves exactly as on the untimed path (the analyzers are
/// independent), so profiles are unaffected by timing being on.
struct TimedTandem<'a> {
    mica: &'a mut CharacterizationSuite,
    hpc: &'a mut HpcSimulator,
    backend: Backend,
}

impl TraceSink for TimedTandem<'_> {
    fn retire(&mut self, inst: &DynInst) {
        // The VM delivers blocks; a lone straggler isn't worth timing.
        self.mica.retire(inst);
        self.hpc.retire(inst);
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        timed_deliver(&mut self.mica.mix, block, self.backend, &ANALYZER_MIX_US);
        timed_deliver(&mut self.mica.ilp, block, self.backend, &ANALYZER_ILP_US);
        timed_deliver(&mut self.mica.reg, block, self.backend, &ANALYZER_REG_US);
        timed_deliver(&mut self.mica.wss, block, self.backend, &ANALYZER_WSS_US);
        timed_deliver(&mut self.mica.strides, block, self.backend, &ANALYZER_STRIDES_US);
        let started = std::time::Instant::now();
        for p in &mut self.mica.ppm {
            match self.backend {
                Backend::Batch => p.retire_block(block),
                Backend::Ref => {
                    for inst in block {
                        p.retire(inst);
                    }
                }
            }
        }
        ANALYZER_PPM_US.add(started.elapsed().as_micros() as u64);
        timed_deliver(self.hpc, block, self.backend, &ANALYZER_HPC_US);
    }
}

/// Run one benchmark for `budget` instructions and return only its
/// microarchitecture-independent characterization, using the backend
/// selected by `MICA_BACKEND`.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn characterize(spec: &BenchmarkSpec, budget: u64) -> Result<MicaVector, ProfileError> {
    characterize_with(spec, budget, Backend::from_env())
}

/// [`characterize`] with an explicit backend — the differential tests
/// compare the tiers through this.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn characterize_with(
    spec: &BenchmarkSpec,
    budget: u64,
    backend: Backend,
) -> Result<MicaVector, ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut suite = CharacterizationSuite::new();
    match backend {
        Backend::Ref => vm.run(&mut PerInst(&mut suite), budget)?,
        Backend::Batch => vm.run(&mut suite, budget)?,
    };
    Ok(suite.finish())
}

/// Run one benchmark for `budget` instructions and return only its
/// simulated hardware-counter profile. The HPC simulator has no batch
/// specialization (its default `retire_block` is the per-instruction
/// loop), so this path is backend-independent.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn profile_hpc(spec: &BenchmarkSpec, budget: u64) -> Result<HpcProfile, ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut sim = HpcSimulator::new();
    vm.run(&mut sim, budget)?;
    Ok(sim.finish())
}

/// Run one benchmark once, producing both characterizations from the same
/// dynamic instruction stream, using the backend selected by
/// `MICA_BACKEND`.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn profile_benchmark(spec: &BenchmarkSpec, budget: u64) -> Result<BenchRecord, ProfileError> {
    profile_benchmark_with(spec, budget, Backend::from_env())
}

/// [`profile_benchmark`] with an explicit backend.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn profile_benchmark_with(
    spec: &BenchmarkSpec,
    budget: u64,
    backend: Backend,
) -> Result<BenchRecord, ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut mica = CharacterizationSuite::new();
    let mut hpc = HpcSimulator::new();
    if analyzer_timing() {
        vm.run(&mut TimedTandem { mica: &mut mica, hpc: &mut hpc, backend }, budget)?;
    } else {
        let mut tandem = Tandem { mica: &mut mica, hpc: &mut hpc };
        match backend {
            Backend::Ref => vm.run(&mut PerInst(&mut tandem), budget)?,
            Backend::Batch => vm.run(&mut tandem, budget)?,
        };
    }
    Ok(BenchRecord {
        name: spec.name(),
        suite: spec.suite.to_string(),
        program: spec.program.to_string(),
        input: spec.input.to_string(),
        paper_icount_millions: spec.paper_icount_millions,
        executed_instructions: mica.total_instructions(),
        mica: mica.finish(),
        hpc: hpc.finish(),
    })
}

/// [`profile_benchmark_with`] with the simulated PMU riding along on the
/// same dynamic instruction stream: one VM run produces both
/// characterizations *and* the block-level [`KernelHeat`] profile.
///
/// The PMU leg is delivered on whatever partition the backend produces —
/// per-instruction under `ref`, whole batches under `batch` — and is
/// partition-independent by construction, so the heat artifact is
/// identical across backends while the analyzers still exercise the tier
/// under test.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn profile_benchmark_pmu(
    spec: &BenchmarkSpec,
    budget: u64,
    backend: Backend,
    config: PmuConfig,
) -> Result<(BenchRecord, KernelHeat), ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut pmu = Pmu::new(vm.program(), config);
    let mut mica = CharacterizationSuite::new();
    let mut hpc = HpcSimulator::new();
    if analyzer_timing() {
        let timed = TimedTandem { mica: &mut mica, hpc: &mut hpc, backend };
        vm.run(&mut WithPmu { inner: timed, pmu: &mut pmu }, budget)?;
    } else {
        let mut tandem = Tandem { mica: &mut mica, hpc: &mut hpc };
        let mut sink = WithPmu { inner: &mut tandem, pmu: &mut pmu };
        match backend {
            Backend::Ref => vm.run(&mut PerInst(&mut sink), budget)?,
            Backend::Batch => vm.run(&mut sink, budget)?,
        };
    }
    let heat = pmu.finish(&spec.name());
    Ok((
        BenchRecord {
            name: spec.name(),
            suite: spec.suite.to_string(),
            program: spec.program.to_string(),
            input: spec.input.to_string(),
            paper_icount_millions: spec.paper_icount_millions,
            executed_instructions: mica.total_instructions(),
            mica: mica.finish(),
            hpc: hpc.finish(),
        },
        heat,
    ))
}

/// Reject scales that would produce meaningless budgets. NaN, infinities,
/// zero, and negatives all previously slipped through the `as u64` cast
/// (NaN casts to 0, infinity saturates) and silently profiled garbage.
pub fn validate_scale(scale: f64) -> Result<(), ProfileError> {
    if scale.is_finite() && scale > 0.0 {
        Ok(())
    } else {
        Err(ProfileError::InvalidScale(scale.to_bits()))
    }
}

/// Scaled per-benchmark budget, floored at 10 000 instructions so tiny
/// scales still exercise every kernel, with an explicit saturation at
/// `u64::MAX` instead of relying on the cast's silent clamping. `scale`
/// must already be validated. Public so the characterization server
/// budgets submissions exactly like the batch pipeline does.
pub fn scaled_budget(spec: &BenchmarkSpec, scale: f64) -> u64 {
    let budget = (spec.instruction_budget() as f64 * scale).max(10_000.0);
    if budget >= u64::MAX as f64 {
        u64::MAX
    } else {
        budget as u64
    }
}

/// Outcome of a deadline-sliced characterization run
/// ([`characterize_vm_sliced`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SlicedRun {
    /// The run completed its budget (or halted) and produced a vector.
    Done {
        /// The 47-metric characterization.
        mica: MicaVector,
        /// Dynamic instructions actually executed.
        executed: u64,
    },
    /// The cancel predicate fired between slices; the partial state was
    /// discarded (a truncated characterization is not comparable to the
    /// batch pipeline's).
    Cancelled {
        /// Dynamic instructions executed before cancellation.
        executed: u64,
    },
}

/// Characterize an already-built VM in fuel slices of `slice`
/// instructions, polling `should_cancel` between slices.
///
/// This is the server's deadline path: the VM is resumable across `run`
/// calls and flushes its delivery batch at every fuel exhaustion, so each
/// retired instruction reaches the analyzers exactly once and — because
/// the analyzers are partition-independent (differentially tested) — the
/// finished vector is bit-identical to a single uninterrupted
/// [`characterize_with`] run at the same budget. Cancellation is
/// cooperative with slice granularity: a hung submission is cut off at
/// most `slice` instructions past the deadline.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn characterize_vm_sliced<F: FnMut() -> bool>(
    vm: &mut tinyisa::Vm,
    budget: u64,
    backend: Backend,
    slice: u64,
    mut should_cancel: F,
) -> Result<SlicedRun, ProfileError> {
    let slice = slice.max(1);
    let mut suite = CharacterizationSuite::new();
    let mut remaining = budget;
    while remaining > 0 {
        if should_cancel() {
            return Ok(SlicedRun::Cancelled { executed: suite.total_instructions() });
        }
        let fuel = slice.min(remaining);
        let exit = match backend {
            Backend::Ref => vm.run(&mut PerInst(&mut suite), fuel)?,
            Backend::Batch => vm.run(&mut suite, fuel)?,
        };
        if matches!(exit, tinyisa::RunExit::Halted) {
            break;
        }
        remaining -= fuel;
    }
    Ok(SlicedRun::Done { executed: suite.total_instructions(), mica: suite.finish() })
}

/// Fingerprint identifying what a [`ProfileSet`] was collected from: the
/// workload-table fingerprint mixed with the metric count. A cache whose
/// fingerprint differs was produced by a different benchmark table or a
/// different characterization layout and must not be reused.
pub fn profile_fingerprint() -> u64 {
    table_fingerprint() ^ (NUM_METRICS as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn finish_set(
    scale: f64,
    results: Vec<Result<BenchRecord, ProfileError>>,
) -> Result<ProfileSet, ProfileError> {
    let mut records = Vec::with_capacity(results.len());
    for r in results {
        // Errors surface in table order, so the reported failure is the
        // same benchmark regardless of parallel scheduling.
        records.push(r?);
    }
    Ok(ProfileSet { scale, fingerprint: profile_fingerprint(), records })
}

/// One benchmark removed from a run: it panicked or returned a
/// [`ProfileError`], and the pipeline continued on the survivors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quarantine {
    /// Full `suite/program/input` name of the benchmark.
    pub name: String,
    /// What happened, rendered as text.
    pub reason: String,
}

/// What [`profile_all`] produced: the surviving records plus the
/// quarantine list. Downstream stages run on [`set`](Self::set); every
/// table and figure annotates its output with the quarantine via
/// [`announce`](Self::announce), and the run summary records the list.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOutcome {
    /// Profiles of the benchmarks that completed, in Table I order.
    pub set: ProfileSet,
    /// Benchmarks removed from the run, in Table I order.
    pub quarantined: Vec<Quarantine>,
    /// Per-kernel PMU heat profiles for the surviving benchmarks, in Table
    /// I order. Empty unless the run was configured with a
    /// [`PmuConfig`] (`MICA_PMU=1`) — and on cache hits, which store only
    /// the [`ProfileSet`].
    pub heat: Vec<KernelHeat>,
}

impl ProfileOutcome {
    /// An outcome with nothing quarantined (cache hits).
    pub fn clean(set: ProfileSet) -> ProfileOutcome {
        ProfileOutcome { set, quarantined: Vec::new(), heat: Vec::new() }
    }

    /// Print the `QUARANTINED (n=..)` annotation on stdout (and a warn
    /// event per entry). Prints nothing when the run was clean, so
    /// fault-free output is unchanged.
    pub fn announce(&self) {
        if self.quarantined.is_empty() {
            return;
        }
        println!(
            "QUARANTINED (n={}): continuing on {} of {} benchmarks",
            self.quarantined.len(),
            self.set.records.len(),
            self.set.records.len() + self.quarantined.len()
        );
        for q in &self.quarantined {
            println!("  {}: {}", q.name, q.reason);
            obs::warn!("quarantined {}: {}", q.name, q.reason);
        }
    }
}

/// Consult the fault plan for this benchmark; matches both the bare
/// program name and the full `suite/program/input` name (short-circuited,
/// so one match is counted once).
fn inject_kernel_panic(spec: &BenchmarkSpec) {
    if mica_fault::plan::should_panic_kernel(spec.program)
        || mica_fault::plan::should_panic_kernel(&spec.name())
    {
        panic!("injected fault: kernel {} (MICA_FAULTS)", spec.name());
    }
}

/// What one benchmark's isolated worker hands back: the record plus its
/// optional heat profile, a profiling error, or a caught panic.
type ItemOutcome = Result<Result<(BenchRecord, Option<KernelHeat>), ProfileError>, mica_par::ItemPanic>;

/// Fold per-item results into surviving records plus the quarantine list,
/// both in Table I order (so the report is scheduling-independent).
fn finish_outcome(scale: f64, table: &[BenchmarkSpec], results: Vec<ItemOutcome>) -> ProfileOutcome {
    let mut records = Vec::with_capacity(results.len());
    let mut quarantined = Vec::new();
    let mut heat = Vec::new();
    for (spec, result) in table.iter().zip(results) {
        match result {
            Ok(Ok((rec, h))) => {
                records.push(rec);
                heat.extend(h);
            }
            Ok(Err(e)) => {
                quarantined.push(Quarantine { name: spec.name(), reason: e.to_string() });
            }
            Err(p) => {
                quarantined
                    .push(Quarantine { name: spec.name(), reason: format!("panic: {}", p.payload) });
            }
        }
    }
    QUARANTINED.add(quarantined.len() as u64);
    ProfileOutcome {
        set: ProfileSet { scale, fingerprint: profile_fingerprint(), records },
        quarantined,
        heat,
    }
}

/// Profile all 122 benchmarks at budget multiplier `scale` on the
/// [`mica_par`] worker pool, logging progress to stderr.
///
/// Results are merged in Table I order and each benchmark's simulation is
/// self-contained (seeded VM, no shared state), so on a clean run the
/// returned [`ProfileOutcome::set`] is bit-identical to
/// [`profile_all_serial`] for any thread count.
///
/// Each benchmark runs under panic isolation
/// ([`mica_par::par_map_isolated`]): a kernel that panics or returns a
/// [`ProfileError`] is quarantined and the rest of the table completes.
///
/// # Errors
///
/// [`ProfileError::InvalidScale`] for a non-finite or non-positive scale —
/// the only error that aborts the run; per-benchmark failures quarantine.
pub fn profile_all(scale: f64) -> Result<ProfileOutcome, ProfileError> {
    profile_all_with(scale, Backend::from_env())
}

/// [`profile_all`] with an explicit backend. The backend is resolved once,
/// here, *before* the worker pool starts — an unrecognized `MICA_BACKEND`
/// panics on the caller's thread instead of quarantining all 122
/// benchmarks one by one.
///
/// # Errors
///
/// See [`profile_all`].
pub fn profile_all_with(scale: f64, backend: Backend) -> Result<ProfileOutcome, ProfileError> {
    profile_all_configured(scale, backend, PmuConfig::from_env())
}

/// [`profile_all_with`] with an explicit PMU configuration (`None` runs
/// without the PMU leg) — the determinism tests drive both states through
/// this without racing on the process environment.
///
/// # Errors
///
/// See [`profile_all`].
pub fn profile_all_configured(
    scale: f64,
    backend: Backend,
    pmu: Option<PmuConfig>,
) -> Result<ProfileOutcome, ProfileError> {
    validate_scale(scale)?;
    let table = benchmark_table();
    let total = table.len();
    let mut all_span = obs::span("profile", "profile_all");
    all_span.attr("benchmarks", total as u64);
    all_span.attr("scale", scale);
    all_span.attr("backend", backend.name());
    if let Some(cfg) = pmu {
        all_span.attr("pmu_period", cfg.period);
    }
    let progress = mica_par::Progress::new();
    let results = mica_par::par_map_isolated(&table, |spec| {
        inject_kernel_panic(spec);
        let budget = scaled_budget(spec, scale);
        let rec = run_one(spec, budget, backend, pmu);
        let done = progress.tick();
        obs::info!("[{done:3}/{total}] {} ({budget} insts)", spec.name());
        rec
    });
    Ok(finish_outcome(scale, &table, results))
}

/// Profile one benchmark under a per-kernel span (the span lands on the
/// worker thread that ran it, so Chrome traces show the kernel on its
/// pool lane) and feed the `profile.*` counters.
fn run_one(
    spec: &BenchmarkSpec,
    budget: u64,
    backend: Backend,
    pmu: Option<PmuConfig>,
) -> Result<(BenchRecord, Option<KernelHeat>), ProfileError> {
    let started = std::time::Instant::now();
    let mut span = obs::span("profile", spec.name());
    span.attr("budget", budget);
    let rec = match pmu {
        Some(cfg) => profile_benchmark_pmu(spec, budget, backend, cfg).map(|(r, h)| (r, Some(h))),
        None => profile_benchmark_with(spec, budget, backend).map(|r| (r, None)),
    };
    KERNELS.incr();
    KERNEL_US.record(started.elapsed().as_micros() as u64);
    if let Ok((r, _)) = &rec {
        INSTS.add(r.executed_instructions);
        span.attr("insts", r.executed_instructions);
    }
    rec
}

/// Single-threaded reference implementation of [`profile_all`].
///
/// # Errors
///
/// See [`profile_all`].
pub fn profile_all_serial(scale: f64) -> Result<ProfileSet, ProfileError> {
    profile_all_serial_with(scale, Backend::from_env())
}

/// [`profile_all_serial`] with an explicit backend.
///
/// # Errors
///
/// See [`profile_all`].
pub fn profile_all_serial_with(scale: f64, backend: Backend) -> Result<ProfileSet, ProfileError> {
    validate_scale(scale)?;
    let table = benchmark_table();
    let results = table
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let budget = scaled_budget(spec, scale);
            obs::info!("[{:3}/{}] {} ({budget} insts)", i + 1, table.len(), spec.name());
            run_one(spec, budget, backend, None).map(|(r, _)| r)
        })
        .collect();
    finish_set(scale, results)
}

/// Why a cached [`ProfileSet`] could not be reused. Every rejection is
/// reported as a structured warn event with the [`reason`](Self::reason)
/// attached, and bumps the matching `profile.cache.miss.*` counter — a
/// re-profile is minutes of work at full scale and used to happen silently.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheMiss {
    /// No cache file exists at the path (normal on a first run).
    Absent,
    /// The file exists but could not be read.
    Unreadable(String),
    /// The file is not a valid serialized `ProfileSet`.
    Parse(String),
    /// The cache was collected at a different budget scale.
    Scale {
        /// Scale stored in the cache.
        cached: f64,
        /// Scale this run asked for.
        requested: f64,
    },
    /// The cache was produced by a different benchmark table or metric
    /// layout (see [`profile_fingerprint`]).
    Fingerprint {
        /// Fingerprint stored in the cache.
        cached: u64,
        /// Fingerprint of the current build.
        current: u64,
    },
    /// The record count does not match the benchmark table.
    Size {
        /// Records in the cache.
        cached: usize,
        /// Benchmarks in the table.
        expected: usize,
    },
}

impl CacheMiss {
    /// Stable identifier for counters and structured events.
    pub fn reason(&self) -> &'static str {
        match self {
            CacheMiss::Absent => "absent",
            CacheMiss::Unreadable(_) => "io",
            CacheMiss::Parse(_) => "parse",
            CacheMiss::Scale { .. } => "scale",
            CacheMiss::Fingerprint { .. } => "fingerprint",
            CacheMiss::Size { .. } => "size",
        }
    }

    fn counter(&self) -> &'static obs::Counter {
        match self {
            CacheMiss::Absent => &CACHE_MISS_ABSENT,
            CacheMiss::Unreadable(_) => &CACHE_MISS_IO,
            CacheMiss::Parse(_) => &CACHE_MISS_PARSE,
            CacheMiss::Scale { .. } => &CACHE_MISS_SCALE,
            CacheMiss::Fingerprint { .. } => &CACHE_MISS_FINGERPRINT,
            CacheMiss::Size { .. } => &CACHE_MISS_SIZE,
        }
    }
}

impl fmt::Display for CacheMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheMiss::Absent => write!(f, "no cache file"),
            CacheMiss::Unreadable(e) => write!(f, "cache unreadable: {e}"),
            CacheMiss::Parse(e) => write!(f, "cache does not parse: {e}"),
            CacheMiss::Scale { cached, requested } => {
                write!(f, "cached at scale {cached}, run wants {requested}")
            }
            CacheMiss::Fingerprint { cached, current } => write!(
                f,
                "cache fingerprint {cached:#018x} != current {current:#018x} \
                 (different benchmark table or metric layout)"
            ),
            CacheMiss::Size { cached, expected } => {
                write!(f, "cache holds {cached} records, table has {expected}")
            }
        }
    }
}

/// Inspect the cache at `path` and return it only if it is reusable for a
/// run at `scale`: readable, well-formed, same scale, current
/// [`profile_fingerprint`], and one record per table entry.
///
/// # Errors
///
/// The precise [`CacheMiss`] explaining why the cache cannot be used.
pub fn check_cache(path: &Path, scale: f64) -> Result<ProfileSet, CacheMiss> {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CacheMiss::Absent),
        Err(e) => return Err(CacheMiss::Unreadable(e.to_string())),
    };
    let set: ProfileSet =
        serde_json::from_str(&json).map_err(|e| CacheMiss::Parse(e.to_string()))?;
    if (set.scale - scale).abs() >= 1e-12 {
        return Err(CacheMiss::Scale { cached: set.scale, requested: scale });
    }
    let current = profile_fingerprint();
    if set.fingerprint != current {
        return Err(CacheMiss::Fingerprint { cached: set.fingerprint, current });
    }
    let expected = benchmark_table().len();
    if set.records.len() != expected {
        return Err(CacheMiss::Size { cached: set.records.len(), expected });
    }
    Ok(set)
}

/// Load cached profiles from `path` if they exist at the requested scale
/// and carry the current [`profile_fingerprint`]; otherwise profile
/// everything and cache the result.
///
/// A cache hit is by construction complete, so its outcome has an empty
/// quarantine. A re-profile with quarantined benchmarks still writes its
/// (partial) cache — [`check_cache`] rejects it on the next run via
/// [`CacheMiss::Size`], so a later fault-free run re-profiles everything.
///
/// # Errors
///
/// Propagates profiling errors; any cache problem (see [`CacheMiss`]) is
/// reported as a structured warn event and falls back to re-profiling,
/// and a failure to *write* the cache is warned about but does not fail
/// the run.
pub fn load_or_profile_all(path: &Path, scale: f64) -> Result<ProfileOutcome, ProfileError> {
    validate_scale(scale)?;
    match check_cache(path, scale) {
        Ok(set) => {
            CACHE_HIT.incr();
            obs::info!("loaded {} cached profiles from {}", set.records.len(), path.display());
            return Ok(ProfileOutcome::clean(set));
        }
        Err(miss) => {
            miss.counter().incr();
            obs::emit_with(
                obs::Level::Warn,
                module_path!(),
                format!("re-profiling: cache {} unusable: {miss}", path.display()),
                vec![("reason", obs::Attr::from(miss.reason()))],
            );
        }
    }
    let outcome = profile_all(scale)?;
    if let Err(e) = outcome.set.save(path) {
        obs::warn!("could not write profile cache {}: {e}", path.display());
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mica_core::NUM_METRICS;

    fn spec(program: &str) -> BenchmarkSpec {
        benchmark_table().into_iter().find(|b| b.program == program).expect("benchmark exists")
    }

    #[test]
    fn characterize_produces_full_vector() {
        let v = characterize(&spec("CRC32"), 30_000).unwrap();
        assert_eq!(v.values().len(), NUM_METRICS);
        assert!(v.values().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn hpc_profile_is_sane() {
        let p = profile_hpc(&spec("sha"), 30_000).unwrap();
        assert!(p.ipc_ev56 > 0.0 && p.ipc_ev56 <= 2.0);
        assert!(p.ipc_ev67 > 0.0 && p.ipc_ev67 <= 4.0);
        assert_eq!(p.instructions, 30_000);
    }

    #[test]
    fn tandem_matches_individual_runs() {
        let s = spec("bitcount");
        let rec = profile_benchmark(&s, 20_000).unwrap();
        let mica = characterize(&s, 20_000).unwrap();
        let hpc = profile_hpc(&s, 20_000).unwrap();
        assert_eq!(rec.mica, mica, "same trace, same characterization");
        assert_eq!(rec.hpc, hpc);
        assert_eq!(rec.executed_instructions, 20_000);
    }

    #[test]
    fn non_finite_or_non_positive_scales_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, -1.0] {
            let err = profile_all(bad).unwrap_err();
            assert_eq!(err, ProfileError::InvalidScale(bad.to_bits()), "scale {bad}");
            assert_eq!(load_or_profile_all(Path::new("/nonexistent"), bad).unwrap_err(), err);
        }
    }

    #[test]
    fn budget_floors_at_10k_and_saturates() {
        let s = spec("sha");
        assert_eq!(scaled_budget(&s, 1e-15), 10_000);
        assert_eq!(scaled_budget(&s, f64::MAX), u64::MAX);
        let expected = (s.instruction_budget() as f64 * 2.0) as u64;
        assert_eq!(scaled_budget(&s, 2.0), expected);
    }

    #[test]
    fn cache_with_current_fingerprint_is_reused() {
        let dir = std::env::temp_dir().join("mica_cache_fingerprint_test");
        let path = dir.join("profiles.json");
        // A fake-but-well-formed cache with the current fingerprint: 122
        // copies of one real record. load_or_profile_all must accept it
        // verbatim instead of re-profiling.
        let rec = profile_benchmark(&spec("CRC32"), 10_000).unwrap();
        let fake = crate::results::ProfileSet {
            scale: 0.25,
            fingerprint: profile_fingerprint(),
            records: vec![rec; benchmark_table().len()],
        };
        fake.save(&path).unwrap();
        let loaded = load_or_profile_all(&path, 0.25).unwrap();
        assert_eq!(loaded.set, fake);
        assert!(loaded.quarantined.is_empty(), "cache hits quarantine nothing");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sliced_characterization_matches_uninterrupted_run() {
        let s = spec("dijkstra");
        let whole = characterize_with(&s, 30_000, Backend::Batch).unwrap();
        for slice in [1_000u64, 7_919, 30_000, 100_000] {
            let mut vm = s.build_vm().unwrap();
            let got =
                characterize_vm_sliced(&mut vm, 30_000, Backend::Batch, slice, || false).unwrap();
            match got {
                SlicedRun::Done { mica, executed } => {
                    assert_eq!(mica, whole, "slice {slice}");
                    assert_eq!(executed, 30_000);
                }
                SlicedRun::Cancelled { .. } => panic!("not cancelled"),
            }
        }
    }

    #[test]
    fn sliced_characterization_cancels_between_slices() {
        let s = spec("dijkstra");
        let mut vm = s.build_vm().unwrap();
        let mut polls = 0u32;
        let got = characterize_vm_sliced(&mut vm, 50_000, Backend::Ref, 5_000, || {
            polls += 1;
            polls > 2
        })
        .unwrap();
        match got {
            SlicedRun::Cancelled { executed } => assert_eq!(executed, 10_000),
            SlicedRun::Done { .. } => panic!("should have been cancelled"),
        }
    }

    #[test]
    fn distinct_benchmarks_have_distinct_signatures() {
        let a = characterize(&spec("sha"), 30_000).unwrap();
        let b = characterize(&spec("mcf"), 30_000).unwrap();
        let diff: f64 =
            a.values().iter().zip(b.values()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "sha and mcf must not look alike (diff {diff})");
    }
}

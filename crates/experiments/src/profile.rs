//! Profiling: run benchmarks through both characterizations.

use crate::results::{BenchRecord, ProfileSet};
use mica_core::{CharacterizationSuite, MicaVector, NUM_METRICS};
use mica_workloads::{benchmark_table, table_fingerprint, BenchmarkSpec};
use std::fmt;
use std::path::Path;
use tinyisa::{AsmError, DynInst, TraceSink, VmError};
use uarch_sim::{HpcProfile, HpcSimulator};

/// Errors while profiling a benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The kernel failed to assemble (a bug in the kernel builder).
    Assemble(AsmError),
    /// The kernel faulted at runtime (a bug in the kernel code).
    Runtime(VmError),
    /// The requested budget scale is not a finite positive number. Stores
    /// the offending value's IEEE-754 bits (so the variant stays `Eq`);
    /// recover it with [`f64::from_bits`].
    InvalidScale(u64),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Assemble(e) => write!(f, "kernel failed to assemble: {e}"),
            ProfileError::Runtime(e) => write!(f, "kernel faulted: {e}"),
            ProfileError::InvalidScale(bits) => {
                write!(f, "budget scale must be finite and positive, got {}", f64::from_bits(*bits))
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<AsmError> for ProfileError {
    fn from(e: AsmError) -> Self {
        ProfileError::Assemble(e)
    }
}

impl From<VmError> for ProfileError {
    fn from(e: VmError) -> Self {
        ProfileError::Runtime(e)
    }
}

/// Fan one trace out to both the MICA suite and the HPC simulator, so one
/// VM run produces both characterizations of identical dynamic behavior.
struct Tandem<'a> {
    mica: &'a mut CharacterizationSuite,
    hpc: &'a mut HpcSimulator,
}

impl TraceSink for Tandem<'_> {
    fn retire(&mut self, inst: &DynInst) {
        self.mica.retire(inst);
        self.hpc.retire(inst);
    }
}

/// Run one benchmark for `budget` instructions and return only its
/// microarchitecture-independent characterization.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn characterize(spec: &BenchmarkSpec, budget: u64) -> Result<MicaVector, ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut suite = CharacterizationSuite::new();
    vm.run(&mut suite, budget)?;
    Ok(suite.finish())
}

/// Run one benchmark for `budget` instructions and return only its
/// simulated hardware-counter profile.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn profile_hpc(spec: &BenchmarkSpec, budget: u64) -> Result<HpcProfile, ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut sim = HpcSimulator::new();
    vm.run(&mut sim, budget)?;
    Ok(sim.finish())
}

/// Run one benchmark once, producing both characterizations from the same
/// dynamic instruction stream.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn profile_benchmark(spec: &BenchmarkSpec, budget: u64) -> Result<BenchRecord, ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut mica = CharacterizationSuite::new();
    let mut hpc = HpcSimulator::new();
    vm.run(&mut Tandem { mica: &mut mica, hpc: &mut hpc }, budget)?;
    Ok(BenchRecord {
        name: spec.name(),
        suite: spec.suite.to_string(),
        program: spec.program.to_string(),
        input: spec.input.to_string(),
        paper_icount_millions: spec.paper_icount_millions,
        executed_instructions: mica.total_instructions(),
        mica: mica.finish(),
        hpc: hpc.finish(),
    })
}

/// Progress logging is on unless `MICA_QUIET` is set (benchmarks and tests
/// that profile repeatedly set it to keep stderr usable).
fn progress_enabled() -> bool {
    std::env::var_os("MICA_QUIET").is_none()
}

/// Reject scales that would produce meaningless budgets. NaN, infinities,
/// zero, and negatives all previously slipped through the `as u64` cast
/// (NaN casts to 0, infinity saturates) and silently profiled garbage.
fn validate_scale(scale: f64) -> Result<(), ProfileError> {
    if scale.is_finite() && scale > 0.0 {
        Ok(())
    } else {
        Err(ProfileError::InvalidScale(scale.to_bits()))
    }
}

/// Scaled per-benchmark budget, floored at 10 000 instructions so tiny
/// scales still exercise every kernel, with an explicit saturation at
/// `u64::MAX` instead of relying on the cast's silent clamping. `scale`
/// must already be validated.
fn scaled_budget(spec: &BenchmarkSpec, scale: f64) -> u64 {
    let budget = (spec.instruction_budget() as f64 * scale).max(10_000.0);
    if budget >= u64::MAX as f64 {
        u64::MAX
    } else {
        budget as u64
    }
}

/// Fingerprint identifying what a [`ProfileSet`] was collected from: the
/// workload-table fingerprint mixed with the metric count. A cache whose
/// fingerprint differs was produced by a different benchmark table or a
/// different characterization layout and must not be reused.
pub fn profile_fingerprint() -> u64 {
    table_fingerprint() ^ (NUM_METRICS as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn finish_set(
    scale: f64,
    results: Vec<Result<BenchRecord, ProfileError>>,
) -> Result<ProfileSet, ProfileError> {
    let mut records = Vec::with_capacity(results.len());
    for r in results {
        // Errors surface in table order, so the reported failure is the
        // same benchmark regardless of parallel scheduling.
        records.push(r?);
    }
    Ok(ProfileSet { scale, fingerprint: profile_fingerprint(), records })
}

/// Profile all 122 benchmarks at budget multiplier `scale` on the
/// [`mica_par`] worker pool, logging progress to stderr.
///
/// Results are merged in Table I order and each benchmark's simulation is
/// self-contained (seeded VM, no shared state), so the output is
/// bit-identical to [`profile_all_serial`] for any thread count.
///
/// # Errors
///
/// [`ProfileError::InvalidScale`] for a non-finite or non-positive scale;
/// otherwise fails on the first benchmark (in table order) that cannot be
/// profiled — all are expected to succeed, so failure indicates a kernel
/// bug.
pub fn profile_all(scale: f64) -> Result<ProfileSet, ProfileError> {
    validate_scale(scale)?;
    let table = benchmark_table();
    let total = table.len();
    let progress = mica_par::Progress::new();
    let results = mica_par::par_map(&table, |spec| {
        let budget = scaled_budget(spec, scale);
        let rec = profile_benchmark(spec, budget);
        let done = progress.tick();
        if progress_enabled() {
            eprintln!("[{done:3}/{total}] {} ({budget} insts)", spec.name());
        }
        rec
    });
    finish_set(scale, results)
}

/// Single-threaded reference implementation of [`profile_all`].
///
/// # Errors
///
/// See [`profile_all`].
pub fn profile_all_serial(scale: f64) -> Result<ProfileSet, ProfileError> {
    validate_scale(scale)?;
    let table = benchmark_table();
    let results = table
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let budget = scaled_budget(spec, scale);
            if progress_enabled() {
                eprintln!("[{:3}/{}] {} ({budget} insts)", i + 1, table.len(), spec.name());
            }
            profile_benchmark(spec, budget)
        })
        .collect();
    finish_set(scale, results)
}

/// Load cached profiles from `path` if they exist at the requested scale
/// and carry the current [`profile_fingerprint`]; otherwise profile
/// everything and cache the result.
///
/// # Errors
///
/// Propagates profiling errors; cache I/O problems fall back to
/// re-profiling, and a failure to *write* the cache is reported on stderr
/// but does not fail the run.
pub fn load_or_profile_all(path: &Path, scale: f64) -> Result<ProfileSet, ProfileError> {
    validate_scale(scale)?;
    if let Ok(set) = ProfileSet::load(path) {
        if (set.scale - scale).abs() < 1e-12
            && set.fingerprint == profile_fingerprint()
            && set.records.len() == benchmark_table().len()
        {
            eprintln!("loaded {} cached profiles from {}", set.records.len(), path.display());
            return Ok(set);
        }
        eprintln!(
            "cache at {} is stale (scale, fingerprint, or size mismatch); re-profiling",
            path.display()
        );
    }
    let set = profile_all(scale)?;
    if let Err(e) = set.save(path) {
        eprintln!("warning: could not write profile cache {}: {e}", path.display());
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mica_core::NUM_METRICS;

    fn spec(program: &str) -> BenchmarkSpec {
        benchmark_table().into_iter().find(|b| b.program == program).expect("benchmark exists")
    }

    #[test]
    fn characterize_produces_full_vector() {
        let v = characterize(&spec("CRC32"), 30_000).unwrap();
        assert_eq!(v.values().len(), NUM_METRICS);
        assert!(v.values().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn hpc_profile_is_sane() {
        let p = profile_hpc(&spec("sha"), 30_000).unwrap();
        assert!(p.ipc_ev56 > 0.0 && p.ipc_ev56 <= 2.0);
        assert!(p.ipc_ev67 > 0.0 && p.ipc_ev67 <= 4.0);
        assert_eq!(p.instructions, 30_000);
    }

    #[test]
    fn tandem_matches_individual_runs() {
        let s = spec("bitcount");
        let rec = profile_benchmark(&s, 20_000).unwrap();
        let mica = characterize(&s, 20_000).unwrap();
        let hpc = profile_hpc(&s, 20_000).unwrap();
        assert_eq!(rec.mica, mica, "same trace, same characterization");
        assert_eq!(rec.hpc, hpc);
        assert_eq!(rec.executed_instructions, 20_000);
    }

    #[test]
    fn non_finite_or_non_positive_scales_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, -1.0] {
            let err = profile_all(bad).unwrap_err();
            assert_eq!(err, ProfileError::InvalidScale(bad.to_bits()), "scale {bad}");
            assert_eq!(load_or_profile_all(Path::new("/nonexistent"), bad).unwrap_err(), err);
        }
    }

    #[test]
    fn budget_floors_at_10k_and_saturates() {
        let s = spec("sha");
        assert_eq!(scaled_budget(&s, 1e-15), 10_000);
        assert_eq!(scaled_budget(&s, f64::MAX), u64::MAX);
        let expected = (s.instruction_budget() as f64 * 2.0) as u64;
        assert_eq!(scaled_budget(&s, 2.0), expected);
    }

    #[test]
    fn cache_with_current_fingerprint_is_reused() {
        let dir = std::env::temp_dir().join("mica_cache_fingerprint_test");
        let path = dir.join("profiles.json");
        // A fake-but-well-formed cache with the current fingerprint: 122
        // copies of one real record. load_or_profile_all must accept it
        // verbatim instead of re-profiling.
        let rec = profile_benchmark(&spec("CRC32"), 10_000).unwrap();
        let fake = crate::results::ProfileSet {
            scale: 0.25,
            fingerprint: profile_fingerprint(),
            records: vec![rec; benchmark_table().len()],
        };
        fake.save(&path).unwrap();
        let loaded = load_or_profile_all(&path, 0.25).unwrap();
        assert_eq!(loaded, fake);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn distinct_benchmarks_have_distinct_signatures() {
        let a = characterize(&spec("sha"), 30_000).unwrap();
        let b = characterize(&spec("mcf"), 30_000).unwrap();
        let diff: f64 =
            a.values().iter().zip(b.values()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "sha and mcf must not look alike (diff {diff})");
    }
}

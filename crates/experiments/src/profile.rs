//! Profiling: run benchmarks through both characterizations.

use crate::results::{BenchRecord, ProfileSet};
use mica_core::{CharacterizationSuite, MicaVector};
use mica_workloads::{benchmark_table, BenchmarkSpec};
use std::fmt;
use std::path::Path;
use tinyisa::{AsmError, DynInst, TraceSink, VmError};
use uarch_sim::{HpcProfile, HpcSimulator};

/// Errors while profiling a benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The kernel failed to assemble (a bug in the kernel builder).
    Assemble(AsmError),
    /// The kernel faulted at runtime (a bug in the kernel code).
    Runtime(VmError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Assemble(e) => write!(f, "kernel failed to assemble: {e}"),
            ProfileError::Runtime(e) => write!(f, "kernel faulted: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<AsmError> for ProfileError {
    fn from(e: AsmError) -> Self {
        ProfileError::Assemble(e)
    }
}

impl From<VmError> for ProfileError {
    fn from(e: VmError) -> Self {
        ProfileError::Runtime(e)
    }
}

/// Fan one trace out to both the MICA suite and the HPC simulator, so one
/// VM run produces both characterizations of identical dynamic behavior.
struct Tandem<'a> {
    mica: &'a mut CharacterizationSuite,
    hpc: &'a mut HpcSimulator,
}

impl TraceSink for Tandem<'_> {
    fn retire(&mut self, inst: &DynInst) {
        self.mica.retire(inst);
        self.hpc.retire(inst);
    }
}

/// Run one benchmark for `budget` instructions and return only its
/// microarchitecture-independent characterization.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn characterize(spec: &BenchmarkSpec, budget: u64) -> Result<MicaVector, ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut suite = CharacterizationSuite::new();
    vm.run(&mut suite, budget)?;
    Ok(suite.finish())
}

/// Run one benchmark for `budget` instructions and return only its
/// simulated hardware-counter profile.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn profile_hpc(spec: &BenchmarkSpec, budget: u64) -> Result<HpcProfile, ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut sim = HpcSimulator::new();
    vm.run(&mut sim, budget)?;
    Ok(sim.finish())
}

/// Run one benchmark once, producing both characterizations from the same
/// dynamic instruction stream.
///
/// # Errors
///
/// See [`ProfileError`].
pub fn profile_benchmark(spec: &BenchmarkSpec, budget: u64) -> Result<BenchRecord, ProfileError> {
    let mut vm = spec.build_vm()?;
    let mut mica = CharacterizationSuite::new();
    let mut hpc = HpcSimulator::new();
    vm.run(&mut Tandem { mica: &mut mica, hpc: &mut hpc }, budget)?;
    Ok(BenchRecord {
        name: spec.name(),
        suite: spec.suite.to_string(),
        program: spec.program.to_string(),
        input: spec.input.to_string(),
        paper_icount_millions: spec.paper_icount_millions,
        executed_instructions: mica.total_instructions(),
        mica: mica.finish(),
        hpc: hpc.finish(),
    })
}

/// Profile all 122 benchmarks at budget multiplier `scale`, logging
/// progress to stderr.
///
/// # Errors
///
/// Fails on the first benchmark that cannot be profiled (all are expected
/// to succeed; failure indicates a kernel bug).
pub fn profile_all(scale: f64) -> Result<ProfileSet, ProfileError> {
    let table = benchmark_table();
    let mut records = Vec::with_capacity(table.len());
    for (i, spec) in table.iter().enumerate() {
        let budget = ((spec.instruction_budget() as f64) * scale).max(10_000.0) as u64;
        eprintln!("[{:3}/{}] {} ({} insts)", i + 1, table.len(), spec.name(), budget);
        records.push(profile_benchmark(spec, budget)?);
    }
    Ok(ProfileSet { scale, records })
}

/// Load cached profiles from `path` if they exist at the requested scale;
/// otherwise profile everything and cache the result.
///
/// # Errors
///
/// Propagates profiling errors; cache I/O problems fall back to
/// re-profiling, and a failure to *write* the cache is reported on stderr
/// but does not fail the run.
pub fn load_or_profile_all(path: &Path, scale: f64) -> Result<ProfileSet, ProfileError> {
    if let Ok(set) = ProfileSet::load(path) {
        if (set.scale - scale).abs() < 1e-12 && set.records.len() == benchmark_table().len() {
            eprintln!("loaded {} cached profiles from {}", set.records.len(), path.display());
            return Ok(set);
        }
        eprintln!("cache at {} is stale (scale or size mismatch); re-profiling", path.display());
    }
    let set = profile_all(scale)?;
    if let Err(e) = set.save(path) {
        eprintln!("warning: could not write profile cache {}: {e}", path.display());
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mica_core::NUM_METRICS;

    fn spec(program: &str) -> BenchmarkSpec {
        benchmark_table().into_iter().find(|b| b.program == program).expect("benchmark exists")
    }

    #[test]
    fn characterize_produces_full_vector() {
        let v = characterize(&spec("CRC32"), 30_000).unwrap();
        assert_eq!(v.values().len(), NUM_METRICS);
        assert!(v.values().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn hpc_profile_is_sane() {
        let p = profile_hpc(&spec("sha"), 30_000).unwrap();
        assert!(p.ipc_ev56 > 0.0 && p.ipc_ev56 <= 2.0);
        assert!(p.ipc_ev67 > 0.0 && p.ipc_ev67 <= 4.0);
        assert_eq!(p.instructions, 30_000);
    }

    #[test]
    fn tandem_matches_individual_runs() {
        let s = spec("bitcount");
        let rec = profile_benchmark(&s, 20_000).unwrap();
        let mica = characterize(&s, 20_000).unwrap();
        let hpc = profile_hpc(&s, 20_000).unwrap();
        assert_eq!(rec.mica, mica, "same trace, same characterization");
        assert_eq!(rec.hpc, hpc);
        assert_eq!(rec.executed_instructions, 20_000);
    }

    #[test]
    fn distinct_benchmarks_have_distinct_signatures() {
        let a = characterize(&spec("sha"), 30_000).unwrap();
        let b = characterize(&spec("mcf"), 30_000).unwrap();
        let diff: f64 =
            a.values().iter().zip(b.values()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "sha and mcf must not look alike (diff {diff})");
    }
}

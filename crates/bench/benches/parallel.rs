//! Serial vs. parallel timings for the three pipelines that run on the
//! `mica-par` worker pool. On a machine with 4+ cores the parallel
//! 122-benchmark profiling pass should show a >= 2x speedup over
//! `profile_122/serial`; on a single core the pair quantifies the pool's
//! overhead instead (it should be within noise of serial).
//!
//! `MICA_THREADS` applies: `MICA_THREADS=8 cargo bench --bench parallel`
//! pins the pool size under test.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mica_experiments::profile::{profile_all, profile_all_serial};
use mica_stats::{
    pairwise_distances, pairwise_distances_serial, zscore_normalize, DataSet, GaConfig,
    GeneticSelector,
};
use mica_workloads::NUM_BENCHMARKS;
use std::hint::black_box;

/// A deterministic dataset shaped like the paper's workload space
/// (122 benchmarks x 47 metrics), without paying for real profiling.
fn synthetic_workload_space() -> DataSet {
    let mut x = 0x4d49_4341u64;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 10_000) as f64 / 1_000.0 - 5.0
    };
    DataSet::from_rows((0..122).map(|_| (0..47).map(|_| rnd()).collect()).collect())
}

fn bench_parallel(c: &mut Criterion) {
    // Suppress the 122 per-benchmark progress lines each iteration would
    // otherwise print.
    std::env::set_var("MICA_QUIET", "1");
    // The headline pair: the full 122-benchmark profiling pass, at a tiny
    // scale (every budget floors at 10 000 instructions) so a sample is
    // ~1.2 M simulated instructions rather than tens of millions.
    let mut g = c.benchmark_group("profile_122");
    g.sample_size(10);
    g.throughput(Throughput::Elements(NUM_BENCHMARKS as u64));
    g.bench_function("serial", |b| {
        b.iter(|| black_box(profile_all_serial(1e-9).expect("profiles").records.len()))
    });
    g.bench_function("parallel", |b| {
        b.iter(|| black_box(profile_all(1e-9).expect("profiles").set.records.len()))
    });
    g.finish();

    let ds = synthetic_workload_space();
    let z = zscore_normalize(&ds);
    let mut g = c.benchmark_group("pairwise_distances_122x47");
    g.throughput(Throughput::Elements((122 * 121 / 2) as u64));
    g.bench_function("serial", |b| b.iter(|| black_box(pairwise_distances_serial(&z).len())));
    g.bench_function("parallel", |b| b.iter(|| black_box(pairwise_distances(&z).len())));
    g.finish();

    let cfg = GaConfig { population: 32, generations: 20, ..GaConfig::default() };
    let sel = GeneticSelector::new(&ds, cfg);
    let mut g = c.benchmark_group("ga_20_generations");
    g.sample_size(10);
    g.bench_function("serial", |b| b.iter(|| black_box(sel.run_serial().fitness)));
    g.bench_function("parallel", |b| b.iter(|| black_box(sel.run().fitness)));
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! PPM context order, ILP window sizes, GA hyperparameters and k-means
//! seeding. These measure the *cost* of each variant; the companion
//! numbers (accuracy/fitness attained) are printed once per run so the
//! quality side of the trade-off is visible in the bench log.

use criterion::{criterion_group, criterion_main, Criterion};
use mica_core::{IlpAnalyzer, IlpCriticalPath, PpmPredictor, PpmVariant};
use mica_stats::{kmeans, select_features_k, zscore_normalize, DataSet, GaConfig};
use mica_workloads::benchmark_table;
use std::hint::black_box;
use tinyisa::TraceSink;

fn trace_of(program: &str, fuel: u64) -> Vec<tinyisa::DynInst> {
    struct Rec(Vec<tinyisa::DynInst>);
    impl TraceSink for Rec {
        fn retire(&mut self, i: &tinyisa::DynInst) {
            self.0.push(*i);
        }
    }
    let mut vm = benchmark_table()
        .into_iter()
        .find(|b| b.program == program)
        .expect("exists")
        .build_vm()
        .expect("builds");
    let mut rec = Rec(Vec::with_capacity(fuel as usize));
    vm.run(&mut rec, fuel).expect("runs");
    rec.0
}

fn mini_dataset() -> DataSet {
    use mica_core::CharacterizationSuite;
    let rows: Vec<Vec<f64>> = benchmark_table()
        .iter()
        .step_by(8)
        .map(|s| {
            let mut vm = s.build_vm().expect("builds");
            let mut suite = CharacterizationSuite::new();
            vm.run(&mut suite, 15_000).expect("runs");
            suite.finish().into_values()
        })
        .collect();
    DataSet::from_rows(rows)
}

fn bench_ppm_order(c: &mut Criterion) {
    let trace = trace_of("gzip", 50_000);
    let mut g = c.benchmark_group("ablation_ppm_order");
    for order in [4usize, 8, 12] {
        // Print the attained accuracy once so cost can be weighed against it.
        let mut p = PpmPredictor::with_max_order(PpmVariant::GAg, order);
        for i in &trace {
            p.retire(i);
        }
        println!("ppm order {order}: GAg accuracy {:.4} on gzip", p.accuracy());
        g.bench_function(format!("order_{order}"), |b| {
            b.iter(|| {
                let mut p = PpmPredictor::with_max_order(PpmVariant::GAg, order);
                for i in &trace {
                    p.retire(i);
                }
                black_box(p.accuracy())
            })
        });
    }
    g.finish();
}

fn bench_ilp_windows(c: &mut Criterion) {
    let trace = trace_of("swim", 50_000);
    let mut g = c.benchmark_group("ablation_ilp_windows");
    for windows in [vec![32], vec![32, 64, 128, 256], vec![512, 1024]] {
        let label = format!("{windows:?}");
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut a = IlpAnalyzer::with_windows(&windows);
                for i in &trace {
                    a.retire(i);
                }
                black_box(a.ipcs())
            })
        });
    }
    g.finish();
}

fn bench_ga_hyperparams(c: &mut Criterion) {
    let ds = mini_dataset();
    let mut g = c.benchmark_group("ablation_ga");
    g.sample_size(10);
    for (pop, gens) in [(16, 20), (32, 40), (64, 80)] {
        let cfg = GaConfig { population: pop, generations: gens, ..GaConfig::default() };
        let r = select_features_k(&ds, 8, cfg);
        println!("ga pop={pop} gens={gens}: rho {:.4}", r.rho);
        g.bench_function(format!("pop{pop}_gens{gens}"), |b| {
            b.iter(|| black_box(select_features_k(&ds, 8, cfg).rho))
        });
    }
    g.finish();
}

fn bench_ilp_model(c: &mut Criterion) {
    // DESIGN.md ablation: windowed dependence scheduling (our model) vs the
    // per-window critical-path approximation. Print the IPC gap once.
    let trace = trace_of("qsort", 50_000);
    let mut sched = IlpAnalyzer::with_windows(&[128]);
    let mut cp = IlpCriticalPath::new(128);
    for i in &trace {
        sched.retire(i);
        cp.retire(i);
    }
    println!(
        "ilp model @128 on qsort: scheduled {:.2} IPC vs critical-path {:.2} IPC",
        sched.ipcs()[0],
        cp.ipc()
    );
    let mut g = c.benchmark_group("ablation_ilp_model");
    g.bench_function("windowed_scheduling", |b| {
        b.iter(|| {
            let mut a = IlpAnalyzer::with_windows(&[128]);
            for i in &trace {
                a.retire(i);
            }
            black_box(a.ipcs())
        })
    });
    g.bench_function("critical_path", |b| {
        b.iter(|| {
            let mut a = IlpCriticalPath::new(128);
            for i in &trace {
                a.retire(i);
            }
            black_box(a.ipc())
        })
    });
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let ds = zscore_normalize(&mini_dataset());
    let mut g = c.benchmark_group("ablation_kmeans");
    for k in [4usize, 8, 12] {
        g.bench_function(format!("k{k}"), |b| {
            b.iter(|| black_box(kmeans(&ds, k, 1).sse))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ppm_order,
    bench_ilp_windows,
    bench_ilp_model,
    bench_ga_hyperparams,
    bench_kmeans
);
criterion_main!(benches);

//! Micro-benchmarks of the substrates: VM interpretation throughput, each
//! MICA analyzer's per-instruction cost, and the microarchitecture
//! simulators.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mica_core::{
    CharacterizationSuite, ExtendedSuite, IlpAnalyzer, InstructionMix, PpmPredictor, PpmVariant,
    RegTraffic, ReuseDistance, StrideAnalyzer, WorkingSet,
};
use mica_workloads::benchmark_table;
use std::hint::black_box;
use tinyisa::{CountingSink, TraceSink, Vm};
use uarch_sim::{BimodalPredictor, BranchPredictor, Cache, CacheConfig, HpcSimulator, TournamentPredictor};

const FUEL: u64 = 100_000;

fn vm_for(program: &str) -> Vm {
    benchmark_table()
        .into_iter()
        .find(|b| b.program == program)
        .expect("benchmark exists")
        .build_vm()
        .expect("builds")
}

fn run_with<S: TraceSink>(program: &str, mut sink: S) -> S {
    let mut vm = vm_for(program);
    vm.run(&mut sink, FUEL).expect("runs");
    sink
}

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(FUEL));
    for program in ["sha", "mcf", "swim"] {
        g.bench_function(format!("interpret_{program}"), |b| {
            b.iter(|| black_box(run_with(program, CountingSink::default()).retired()))
        });
    }
    g.finish();
}

fn bench_analyzers(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyzers");
    g.throughput(Throughput::Elements(FUEL));
    g.bench_function("instruction_mix", |b| {
        b.iter(|| black_box(run_with("qsort", InstructionMix::new()).fractions()))
    });
    g.bench_function("ilp_four_windows", |b| {
        b.iter(|| black_box(run_with("qsort", IlpAnalyzer::new()).ipcs()))
    });
    g.bench_function("register_traffic", |b| {
        b.iter(|| black_box(run_with("qsort", RegTraffic::new()).avg_degree_of_use()))
    });
    g.bench_function("working_set", |b| {
        b.iter(|| black_box(run_with("qsort", WorkingSet::new()).counts()))
    });
    g.bench_function("strides", |b| {
        b.iter(|| black_box(run_with("qsort", StrideAnalyzer::new()).all()))
    });
    g.bench_function("ppm_gag", |b| {
        b.iter(|| black_box(run_with("qsort", PpmPredictor::new(PpmVariant::GAg)).accuracy()))
    });
    g.bench_function("reuse_distance", |b| {
        b.iter(|| black_box(run_with("qsort", ReuseDistance::new()).cdf()))
    });
    g.bench_function("full_suite_47_metrics", |b| {
        b.iter(|| black_box(run_with("qsort", CharacterizationSuite::new()).finish()))
    });
    g.bench_function("extended_suite_57_metrics", |b| {
        b.iter(|| black_box(run_with("qsort", ExtendedSuite::new()).finish_all()))
    });
    g.finish();
}

fn bench_uarch(c: &mut Criterion) {
    let mut g = c.benchmark_group("uarch");
    g.throughput(Throughput::Elements(FUEL));
    g.bench_function("hpc_simulator_both_machines", |b| {
        b.iter(|| black_box(run_with("qsort", HpcSimulator::new()).finish()))
    });
    g.finish();

    let mut g = c.benchmark_group("uarch_components");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("cache_hits", |b| {
        let mut cache = Cache::new(CacheConfig::ev56_l1());
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..100_000u64 {
                hits += cache.access((i % 64) * 32) as u64;
            }
            black_box(hits)
        })
    });
    g.bench_function("cache_streaming_misses", |b| {
        let mut cache = Cache::new(CacheConfig::ev56_l1());
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..100_000u64 {
                cache.access(base + i * 32);
            }
            base += 1 << 30;
            black_box(cache.stats().misses)
        })
    });
    g.bench_function("bimodal_predictor", |b| {
        let mut p = BimodalPredictor::ev56();
        b.iter(|| {
            for i in 0..100_000u64 {
                p.observe(0x1000 + (i % 37) * 4, i % 3 != 0);
            }
            black_box(p.stats().misses)
        })
    });
    g.bench_function("tournament_predictor", |b| {
        let mut p = TournamentPredictor::ev67();
        b.iter(|| {
            for i in 0..100_000u64 {
                p.observe(0x1000 + (i % 37) * 4, i % 3 != 0);
            }
            black_box(p.stats().misses)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_vm, bench_analyzers, bench_uarch);
criterion_main!(benches);

//! One Criterion benchmark per paper table/figure: each measures the
//! pipeline that regenerates that artifact, at a reduced profiling scale so
//! `cargo bench` completes in minutes.
//!
//! - `table1/*` — building the 122-benchmark table and the profiling step;
//! - `fig1/*` — the distance-space construction and correlation;
//! - `table3/*` — tuple classification;
//! - `fig2_fig3/*` — the case-study normalization;
//! - `fig4/*` — ROC sweep and AUC;
//! - `fig5/*` — the correlation-elimination curve;
//! - `table4/*` — GA feature selection;
//! - `fig6/*` — BIC-driven k-means clustering and kiviat rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use mica_experiments::analysis::{max_normalize_columns, minmax_normalize_columns};
use mica_experiments::profile::profile_benchmark;
use mica_experiments::results::ProfileSet;
use mica_stats::{
    auc, choose_k_by_bic, classify_pairs, elimination_order, pairwise_distances, pearson, plot,
    roc_curve, select_features_k, zscore_normalize, DataSet, GaConfig,
};
use mica_workloads::benchmark_table;
use std::hint::black_box;

/// Profile every 6th benchmark at a small budget: 21 records, once.
fn mini_set() -> ProfileSet {
    let records = benchmark_table()
        .iter()
        .step_by(6)
        .map(|s| profile_benchmark(s, 20_000).expect("benchmark profiles"))
        .collect();
    ProfileSet { scale: 0.0, fingerprint: 0, records }
}

fn datasets(set: &ProfileSet) -> (DataSet, DataSet) {
    (
        DataSet::from_rows(set.records.iter().map(|r| r.mica.values().to_vec()).collect()),
        DataSet::from_rows(set.records.iter().map(|r| r.hpc.counter_vector()).collect()),
    )
}

fn bench_experiments(c: &mut Criterion) {
    let set = mini_set();
    let (mica, hpc) = datasets(&set);
    let zm = zscore_normalize(&mica);
    let zh = zscore_normalize(&hpc);
    let dm = pairwise_distances(&zm);
    let dh = pairwise_distances(&zh);

    // Table I: the table itself plus one benchmark profiled end to end.
    let mut g = c.benchmark_group("table1");
    g.bench_function("build_benchmark_table", |b| b.iter(|| black_box(benchmark_table().len())));
    let crc = benchmark_table().into_iter().find(|s| s.program == "CRC32").expect("CRC32");
    g.bench_function("profile_one_benchmark_20k", |b| {
        b.iter(|| black_box(profile_benchmark(&crc, 20_000).expect("profiles")))
    });
    g.finish();

    // Figure 1: normalize, distance matrices, correlation.
    let mut g = c.benchmark_group("fig1");
    g.bench_function("distance_spaces_and_correlation", |b| {
        b.iter(|| {
            let dm = pairwise_distances(&zscore_normalize(&mica));
            let dh = pairwise_distances(&zscore_normalize(&hpc));
            black_box(pearson(dm.values(), dh.values()))
        })
    });
    g.finish();

    // Table III: classification of tuples.
    let mut g = c.benchmark_group("table3");
    g.bench_function("classify_pairs", |b| {
        b.iter(|| black_box(classify_pairs(dh.values(), dm.values(), 0.2, 0.2)))
    });
    g.finish();

    // Figures 2/3: the case-study normalizations + bar chart rendering.
    let mut g = c.benchmark_group("fig2_fig3");
    g.bench_function("max_normalize_and_render", |b| {
        b.iter(|| {
            let n = max_normalize_columns(&mica);
            let labels: Vec<String> = (0..47).map(|i| format!("m{i}")).collect();
            let series = vec![
                ("a".to_string(), (0..47).map(|c| n.get(0, c)).collect::<Vec<_>>()),
                ("b".to_string(), (0..47).map(|c| n.get(1, c)).collect::<Vec<_>>()),
            ];
            black_box(plot::svg_grouped_bars("fig", &labels, &series).len())
        })
    });
    g.finish();

    // Figure 4: ROC sweep + AUC for full and a reduced space.
    let ga = select_features_k(&mica, 8, GaConfig { generations: 30, ..GaConfig::default() });
    let d_ga = pairwise_distances(&zm.select_columns(&ga.selected));
    let mut g = c.benchmark_group("fig4");
    g.bench_function("roc_and_auc_two_spaces", |b| {
        b.iter(|| {
            let a1 = auc(&roc_curve(dh.values(), dm.values(), 0.2, 200));
            let a2 = auc(&roc_curve(dh.values(), d_ga.values(), 0.2, 200));
            black_box((a1, a2))
        })
    });
    g.finish();

    // Figure 5: the full correlation-elimination curve.
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("correlation_elimination_curve", |b| {
        b.iter(|| {
            let order = elimination_order(&mica);
            let mut retained: Vec<usize> = (0..mica.cols()).collect();
            let mut out = Vec::new();
            for victim in &order {
                retained.retain(|c| c != victim);
                if retained.is_empty() {
                    break;
                }
                let reduced = pairwise_distances(&zm.select_columns(&retained));
                out.push(pearson(dm.values(), reduced.values()));
            }
            black_box(out.len())
        })
    });
    g.finish();

    // Table IV: the GA selection itself.
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("ga_select_8_of_47", |b| {
        b.iter(|| {
            black_box(
                select_features_k(
                    &mica,
                    8,
                    GaConfig { generations: 40, population: 32, ..GaConfig::default() },
                )
                .rho,
            )
        })
    });
    g.finish();

    // Figure 6: BIC model selection + kiviat rendering.
    let sel = zm.select_columns(&ga.selected);
    let kiv = minmax_normalize_columns(&mica.select_columns(&ga.selected));
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("choose_k_by_bic_upto_15", |b| {
        b.iter(|| black_box(choose_k_by_bic(&sel, 15, 7).k()))
    });
    g.bench_function("render_all_kiviats", |b| {
        let axes: Vec<String> = (0..8).map(|i| format!("m{i}")).collect();
        b.iter(|| {
            let mut bytes = 0;
            for r in 0..kiv.rows() {
                let vals: Vec<f64> = (0..kiv.cols()).map(|c| kiv.get(r, c)).collect();
                bytes += plot::svg_kiviat("bench", &axes, &vals).len();
            }
            black_box(bytes)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);

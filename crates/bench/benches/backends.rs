//! Ref-vs-batch backend suite.
//!
//! The batch tier earns its keep here: the same kernels run through the
//! per-instruction reference delivery (`PerInst`) and the block-batched
//! delivery, live (interpretation + analysis) and over recorded traces
//! (delivery cost isolated from interpretation). The differential tests
//! in `mica-core` prove the tiers bit-identical; this suite measures what
//! the batching buys on the profile hot path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mica_core::{Backend, CharacterizationSuite, PerInst, RegTraffic, StrideAnalyzer, WorkingSet};
use mica_experiments::profile::profile_benchmark_with;
use mica_workloads::{benchmark_table, BenchmarkSpec};
use std::hint::black_box;
use tinyisa::{Trace, TraceRecorder, BATCH_CAPACITY};

const FUEL: u64 = 100_000;

fn spec_for(program: &str) -> BenchmarkSpec {
    benchmark_table().into_iter().find(|b| b.program == program).expect("benchmark exists")
}

fn trace_of(program: &str) -> Trace {
    let mut rec = TraceRecorder::new();
    let mut vm = spec_for(program).build_vm().expect("builds");
    vm.run(&mut rec, FUEL).expect("runs");
    rec.into_trace()
}

/// Live VM runs: interpretation plus analysis, the shape `profile_all`
/// actually executes per kernel.
fn bench_live(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_live");
    g.throughput(Throughput::Elements(FUEL));
    for program in ["qsort", "mcf", "swim"] {
        g.bench_function(format!("ref_{program}"), |b| {
            b.iter(|| {
                let mut suite = CharacterizationSuite::new();
                let mut vm = spec_for(program).build_vm().expect("builds");
                vm.run(&mut PerInst(&mut suite), FUEL).expect("runs");
                black_box(suite.finish())
            })
        });
        g.bench_function(format!("batch_{program}"), |b| {
            b.iter(|| {
                let mut suite = CharacterizationSuite::new();
                let mut vm = spec_for(program).build_vm().expect("builds");
                vm.run(&mut suite, FUEL).expect("runs");
                black_box(suite.finish())
            })
        });
    }
    g.finish();
}

/// Trace replays: pure delivery + analysis cost, no interpreter in the
/// loop — the cleanest view of what `retire_block` saves.
fn bench_replay(c: &mut Criterion) {
    let trace = trace_of("qsort");
    let n = trace.len() as u64;
    let mut g = c.benchmark_group("backend_replay");
    g.throughput(Throughput::Elements(n));
    g.bench_function("suite_ref", |b| {
        b.iter(|| {
            let mut suite = CharacterizationSuite::new();
            trace.replay(&mut suite);
            black_box(suite.finish())
        })
    });
    g.bench_function("suite_batch", |b| {
        b.iter(|| {
            let mut suite = CharacterizationSuite::new();
            trace.replay_blocks(&mut suite, BATCH_CAPACITY);
            black_box(suite.finish())
        })
    });
    // The analyzers with real batch specializations, individually.
    g.bench_function("working_set_ref", |b| {
        b.iter(|| {
            let mut wss = WorkingSet::new();
            trace.replay(&mut wss);
            black_box(wss.counts())
        })
    });
    g.bench_function("working_set_batch", |b| {
        b.iter(|| {
            let mut wss = WorkingSet::new();
            trace.replay_blocks(&mut wss, BATCH_CAPACITY);
            black_box(wss.counts())
        })
    });
    g.bench_function("regtraffic_ref", |b| {
        b.iter(|| {
            let mut reg = RegTraffic::new();
            trace.replay(&mut reg);
            black_box(reg.dependency_distance_cdf())
        })
    });
    g.bench_function("regtraffic_batch", |b| {
        b.iter(|| {
            let mut reg = RegTraffic::new();
            trace.replay_blocks(&mut reg, BATCH_CAPACITY);
            black_box(reg.dependency_distance_cdf())
        })
    });
    g.bench_function("strides_ref", |b| {
        b.iter(|| {
            let mut s = StrideAnalyzer::new();
            trace.replay(&mut s);
            black_box(s.all())
        })
    });
    g.bench_function("strides_batch", |b| {
        b.iter(|| {
            let mut s = StrideAnalyzer::new();
            trace.replay_blocks(&mut s, BATCH_CAPACITY);
            black_box(s.all())
        })
    });
    g.finish();
}

/// The full profile hot path (tandem MICA + HPC record) under each
/// backend, exactly as `profile_all` dispatches it.
fn bench_profile_hot_path(c: &mut Criterion) {
    let spec = spec_for("qsort");
    let mut g = c.benchmark_group("backend_profile");
    g.throughput(Throughput::Elements(FUEL));
    g.bench_function("profile_benchmark_ref", |b| {
        b.iter(|| black_box(profile_benchmark_with(&spec, FUEL, Backend::Ref).expect("profiles")))
    });
    g.bench_function("profile_benchmark_batch", |b| {
        b.iter(|| black_box(profile_benchmark_with(&spec, FUEL, Backend::Batch).expect("profiles")))
    });
    g.finish();
}

criterion_group!(backends, bench_live, bench_replay, bench_profile_hot_path);
criterion_main!(backends);

//! Benchmark-only crate: see the `benches/` directory.
//!
//! - `experiments` — one Criterion group per paper table/figure, measuring
//!   the pipeline that regenerates it;
//! - `substrate` — VM, analyzer and simulator micro-benchmarks;
//! - `ablation` — cost/quality trade-offs for the design choices listed in
//!   DESIGN.md (PPM order, ILP windows, GA hyperparameters, k-means).

//! Deterministic fault plans (`MICA_FAULTS`).
//!
//! A [`FaultPlan`] is a list of directives describing faults to inject at
//! exact, reproducible points: a named kernel's profiling run, or the
//! first `N` write attempts at a named I/O site. The process-global plan
//! is parsed from `MICA_FAULTS` on first use; tests swap it with
//! [`install`] / [`clear`].
//!
//! Injection is consulted from two places:
//!
//! - the profiling pipeline asks [`should_panic_kernel`] before running a
//!   kernel and panics (to be caught by `par_map_isolated`) on a match;
//! - [`crate::io::atomic_write`] asks [`io_fault`] before touching the
//!   filesystem and fails (or tears) the attempt on a match.
//!
//! Occurrence accounting (`@N`) is per directive and cumulative across the
//! process: `io:cache-write@2` fails the first two attempts at site
//! `cache-write`, wherever they come from, then stands down. All adopted
//! write sites are driven from the main thread, so occurrence order is
//! deterministic; kernel-panic directives match by *name* and are
//! scheduling-independent by construction.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// What an `io:`/`torn:` directive does to a write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The attempt fails with an injected I/O error; nothing is written.
    Error,
    /// The attempt is torn: a partial temp file is left behind and an
    /// injected error is returned — a simulated kill mid-write.
    Torn,
}

/// One parsed `MICA_FAULTS` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `panic:kernel=NAME` — panic whenever kernel NAME is profiled.
    PanicKernel {
        /// Program name (`adpcm`) or full `suite/program/input` name.
        kernel: String,
    },
    /// `panic:request=N` — panic while serving the N-th submission
    /// (1-based across the process), to be caught by the server's
    /// per-request quarantine.
    PanicRequest {
        /// Which request (counting calls to [`should_panic_request`])
        /// panics.
        nth: u64,
    },
    /// `io:SITE[@N]` / `torn:SITE[@N]` — fault the first N write attempts
    /// at SITE.
    Io {
        /// Site name as passed to [`crate::io::atomic_write`].
        site: String,
        /// Error or torn write.
        kind: IoFaultKind,
        /// How many attempts to fault before standing down.
        attempts: u64,
    },
    /// `slow:SITE[=MS][@N]` — delay the first N operations at SITE by MS
    /// milliseconds (default 25). Adopters ask [`slow_fault`] and sleep.
    Slow {
        /// Site name (write sites and server request sites both qualify).
        site: String,
        /// Injected latency, milliseconds.
        millis: u64,
        /// How many operations to slow before standing down.
        attempts: u64,
    },
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::PanicKernel { kernel } => write!(f, "panic:kernel={kernel}"),
            Directive::PanicRequest { nth } => write!(f, "panic:request={nth}"),
            Directive::Io { site, kind: IoFaultKind::Error, attempts } => {
                write!(f, "io:{site}@{attempts}")
            }
            Directive::Io { site, kind: IoFaultKind::Torn, attempts } => {
                write!(f, "torn:{site}@{attempts}")
            }
            Directive::Slow { site, millis, attempts } => {
                write!(f, "slow:{site}={millis}@{attempts}")
            }
        }
    }
}

/// A parsed fault plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Directives in `MICA_FAULTS` order.
    pub directives: Vec<Directive>,
}

/// Why a `MICA_FAULTS` directive did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending directive text.
    pub directive: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad MICA_FAULTS directive {:?}: {}", self.directive, self.message)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// An empty plan (nothing injected).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when no directive is present.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Parse the `MICA_FAULTS` grammar (see the crate docs). Empty and
    /// whitespace-only input parse to the empty plan.
    ///
    /// # Errors
    ///
    /// The first directive that does not parse.
    pub fn parse(s: &str) -> Result<FaultPlan, PlanParseError> {
        let mut directives = Vec::new();
        for raw in s.split(',') {
            let d = raw.trim();
            if d.is_empty() {
                continue;
            }
            directives.push(parse_directive(d)?);
        }
        Ok(FaultPlan { directives })
    }
}

impl fmt::Display for FaultPlan {
    /// Render the plan in canonical grammar; `FaultPlan::parse` of the
    /// rendering reproduces the plan exactly (round-trip tested).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.directives.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

fn parse_directive(d: &str) -> Result<Directive, PlanParseError> {
    let err = |message: &str| PlanParseError { directive: d.to_string(), message: message.into() };
    let (head, rest) = d.split_once(':').ok_or_else(|| err("expected `kind:...`"))?;
    match head.trim() {
        "panic" => {
            let (what, arg) = rest
                .split_once('=')
                .ok_or_else(|| err("expected `panic:kernel=NAME` or `panic:request=N`"))?;
            match what.trim() {
                "kernel" => {
                    let kernel = arg.trim();
                    if kernel.is_empty() {
                        return Err(err("empty kernel name"));
                    }
                    Ok(Directive::PanicKernel { kernel: kernel.to_string() })
                }
                "request" => {
                    let nth = arg
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| err("`panic:request=N` needs a positive integer"))?;
                    if nth == 0 {
                        return Err(err("`panic:request=N` needs a positive integer"));
                    }
                    Ok(Directive::PanicRequest { nth })
                }
                _ => Err(err("only `panic:kernel=NAME` and `panic:request=N` are supported")),
            }
        }
        kind @ ("io" | "torn") => {
            let kind =
                if kind == "io" { IoFaultKind::Error } else { IoFaultKind::Torn };
            let (site, attempts) = match rest.split_once('@') {
                None => (rest.trim(), 1),
                Some((site, n)) => (
                    site.trim(),
                    n.trim().parse::<u64>().map_err(|_| err("`@N` must be a positive integer"))?,
                ),
            };
            if site.is_empty() {
                return Err(err("empty site name"));
            }
            if attempts == 0 {
                return Err(err("`@N` must be a positive integer"));
            }
            Ok(Directive::Io { site: site.to_string(), kind, attempts })
        }
        "slow" => {
            let (spec, attempts) = match rest.split_once('@') {
                None => (rest, 1),
                Some((spec, n)) => (
                    spec,
                    n.trim().parse::<u64>().map_err(|_| err("`@N` must be a positive integer"))?,
                ),
            };
            if attempts == 0 {
                return Err(err("`@N` must be a positive integer"));
            }
            let (site, millis) = match spec.split_once('=') {
                None => (spec.trim(), 25),
                Some((site, ms)) => (
                    site.trim(),
                    ms.trim()
                        .parse::<u64>()
                        .map_err(|_| err("`=MS` must be a non-negative integer"))?,
                ),
            };
            if site.is_empty() {
                return Err(err("empty site name"));
            }
            Ok(Directive::Slow { site: site.to_string(), millis, attempts })
        }
        _ => Err(err("unknown directive kind (want `panic`, `io`, `torn` or `slow`)")),
    }
}

/// The installed plan plus per-directive fire counts.
struct PlanState {
    plan: FaultPlan,
    /// Times each directive has fired, indexed like `plan.directives`.
    fired: Vec<u64>,
}

impl PlanState {
    fn new(plan: FaultPlan) -> PlanState {
        let fired = vec![0; plan.directives.len()];
        PlanState { plan, fired }
    }
}

static PLAN: OnceLock<Mutex<PlanState>> = OnceLock::new();

fn state() -> &'static Mutex<PlanState> {
    PLAN.get_or_init(|| {
        let plan = match std::env::var("MICA_FAULTS") {
            Err(_) => FaultPlan::empty(),
            Ok(s) => match FaultPlan::parse(&s) {
                Ok(plan) => {
                    if !plan.is_empty() {
                        eprintln!(
                            "mica-fault: injecting {} fault(s) from MICA_FAULTS={s:?}",
                            plan.directives.len()
                        );
                    }
                    plan
                }
                Err(e) => {
                    eprintln!("warning: {e}; ignoring the whole MICA_FAULTS value");
                    FaultPlan::empty()
                }
            },
        };
        Mutex::new(PlanState::new(plan))
    })
}

/// Replace the process-global plan (tests and embedders). Resets all
/// occurrence counts.
pub fn install(plan: FaultPlan) {
    *state().lock().expect("fault plan poisoned") = PlanState::new(plan);
}

/// Remove every directive — nothing is injected until the next
/// [`install`].
pub fn clear() {
    install(FaultPlan::empty());
}

/// Whether any directive is installed (cheap pre-check for hot paths).
pub fn active() -> bool {
    !state().lock().expect("fault plan poisoned").plan.is_empty()
}

/// Should profiling kernel `name` panic? Matches `panic:kernel=` directives
/// by exact name; call once with the program name and once with the full
/// `suite/program/input` name (short-circuited so a match is counted once).
/// Counts the injection when it matches.
pub fn should_panic_kernel(name: &str) -> bool {
    let st = state().lock().expect("fault plan poisoned");
    for d in &st.plan.directives {
        if let Directive::PanicKernel { kernel } = d {
            if kernel == name {
                drop(st);
                crate::metrics::incr(&crate::metrics::INJECTED_PANIC);
                return true;
            }
        }
    }
    false
}

/// Should the submission being admitted right now panic? Every call counts
/// one request against each `panic:request=N` directive; the call whose
/// running count hits `N` returns true (exactly once per directive).
/// Counted requests are whatever the adopter says they are — the server
/// calls this once per accepted submission — so `N` is deterministic under
/// FIFO admission regardless of worker scheduling. Bumps the
/// `fault.injected.request_panic` counter when it fires.
pub fn should_panic_request() -> bool {
    let mut st = state().lock().expect("fault plan poisoned");
    let mut fire = false;
    for i in 0..st.plan.directives.len() {
        let nth = match &st.plan.directives[i] {
            Directive::PanicRequest { nth } => *nth,
            _ => continue,
        };
        st.fired[i] += 1;
        if st.fired[i] == nth {
            fire = true;
        }
    }
    drop(st);
    if fire {
        crate::metrics::incr(&crate::metrics::INJECTED_REQUEST_PANIC);
    }
    fire
}

/// Should the operation at `site` be artificially delayed? Consumes one
/// occurrence of the first matching `slow:` directive with occurrences
/// left and returns the injected latency in milliseconds — the caller
/// sleeps (so the delay lands on the adopter's thread, not under the plan
/// lock). Bumps the `fault.injected.slow` counter when it fires.
pub fn slow_fault(site: &str) -> Option<u64> {
    let mut st = state().lock().expect("fault plan poisoned");
    for i in 0..st.plan.directives.len() {
        let (millis, attempts) = match &st.plan.directives[i] {
            Directive::Slow { site: s, millis, attempts } if s == site => (*millis, *attempts),
            _ => continue,
        };
        if st.fired[i] < attempts {
            st.fired[i] += 1;
            drop(st);
            crate::metrics::incr(&crate::metrics::INJECTED_SLOW);
            return Some(millis);
        }
    }
    None
}

/// Should this write attempt at `site` be faulted? Consumes one occurrence
/// of the first matching directive with occurrences left. Counting of the
/// injection itself happens in [`crate::io::atomic_write`], which knows
/// whether the fault was an error or a tear.
pub fn io_fault(site: &str) -> Option<IoFaultKind> {
    let mut st = state().lock().expect("fault plan poisoned");
    for (i, d) in st.plan.directives.iter().enumerate() {
        if let Directive::Io { site: s, kind, attempts } = d {
            if s == site && st.fired[i] < *attempts {
                let kind = *kind;
                st.fired[i] += 1;
                return Some(kind);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plan mutations are process-global; serialize the tests that touch
    /// them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn grammar_parses_every_directive_kind() {
        let p = FaultPlan::parse("panic:kernel=adpcm, io:cache-write@2 ,torn:results").unwrap();
        assert_eq!(
            p.directives,
            vec![
                Directive::PanicKernel { kernel: "adpcm".into() },
                Directive::Io {
                    site: "cache-write".into(),
                    kind: IoFaultKind::Error,
                    attempts: 2
                },
                Directive::Io { site: "results".into(), kind: IoFaultKind::Torn, attempts: 1 },
            ]
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ,, ").unwrap().is_empty());
    }

    #[test]
    fn grammar_parses_serve_side_directives() {
        let p = FaultPlan::parse("panic:request=2, slow:respond@3, slow:serve.request=150").unwrap();
        assert_eq!(
            p.directives,
            vec![
                Directive::PanicRequest { nth: 2 },
                Directive::Slow { site: "respond".into(), millis: 25, attempts: 3 },
                Directive::Slow { site: "serve.request".into(), millis: 150, attempts: 1 },
            ]
        );
    }

    #[test]
    fn plans_round_trip_through_display() {
        for s in [
            "panic:kernel=adpcm,io:cache-write@2,torn:results",
            "panic:request=3,slow:serve.request=150@2,io:respond@1",
            "slow:cache-write,slow:results=0@4",
            "",
        ] {
            let plan = FaultPlan::parse(s).unwrap();
            let rendered = plan.to_string();
            let reparsed = FaultPlan::parse(&rendered).unwrap();
            assert_eq!(reparsed, plan, "{s:?} -> {rendered:?} did not round-trip");
        }
    }

    #[test]
    fn bad_directives_are_rejected_with_context() {
        for bad in [
            "panic",
            "panic:kernel=",
            "panic:thread=main",
            "panic:request=",
            "panic:request=0",
            "panic:request=x",
            "io:",
            "io:site@0",
            "io:site@x",
            "slow:",
            "slow:site@0",
            "slow:site=ms",
            "slow:=5",
            "boom:site",
        ] {
            let e = FaultPlan::parse(bad).unwrap_err();
            assert_eq!(e.directive, bad.trim());
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn kernel_panic_matches_by_exact_name_every_time() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::parse("panic:kernel=adpcm").unwrap());
        assert!(should_panic_kernel("adpcm"));
        assert!(should_panic_kernel("adpcm"), "kernel directives fire every time");
        assert!(!should_panic_kernel("adpcm_c"));
        assert!(!should_panic_kernel("MiBench/adpcm/rawcaudio"));
        clear();
        assert!(!should_panic_kernel("adpcm"));
    }

    #[test]
    fn request_panic_fires_on_the_nth_request_only() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::parse("panic:request=3").unwrap());
        let fired: Vec<bool> = (0..5).map(|_| should_panic_request()).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        // Reinstalling resets the request count.
        install(FaultPlan::parse("panic:request=1").unwrap());
        assert!(should_panic_request());
        assert!(!should_panic_request());
        clear();
        assert!(!should_panic_request());
    }

    #[test]
    fn slow_occurrences_are_consumed_and_sited() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::parse("slow:a=7@2").unwrap());
        assert_eq!(slow_fault("a"), Some(7));
        assert_eq!(slow_fault("b"), None, "other sites never slow");
        assert_eq!(slow_fault("a"), Some(7));
        assert_eq!(slow_fault("a"), None, "budget exhausted");
        clear();
    }

    #[test]
    fn io_occurrences_are_consumed_in_order() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::parse("io:a@2,torn:a").unwrap());
        // First two attempts consume the `io:a@2` budget, the third falls
        // through to `torn:a`, the fourth finds nothing left.
        assert_eq!(io_fault("a"), Some(IoFaultKind::Error));
        assert_eq!(io_fault("a"), Some(IoFaultKind::Error));
        assert_eq!(io_fault("a"), Some(IoFaultKind::Torn));
        assert_eq!(io_fault("a"), None);
        assert_eq!(io_fault("b"), None, "other sites never fault");
        clear();
    }
}

//! Deterministic fault plans (`MICA_FAULTS`).
//!
//! A [`FaultPlan`] is a list of directives describing faults to inject at
//! exact, reproducible points: a named kernel's profiling run, or the
//! first `N` write attempts at a named I/O site. The process-global plan
//! is parsed from `MICA_FAULTS` on first use; tests swap it with
//! [`install`] / [`clear`].
//!
//! Injection is consulted from two places:
//!
//! - the profiling pipeline asks [`should_panic_kernel`] before running a
//!   kernel and panics (to be caught by `par_map_isolated`) on a match;
//! - [`crate::io::atomic_write`] asks [`io_fault`] before touching the
//!   filesystem and fails (or tears) the attempt on a match.
//!
//! Occurrence accounting (`@N`) is per directive and cumulative across the
//! process: `io:cache-write@2` fails the first two attempts at site
//! `cache-write`, wherever they come from, then stands down. All adopted
//! write sites are driven from the main thread, so occurrence order is
//! deterministic; kernel-panic directives match by *name* and are
//! scheduling-independent by construction.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// What an `io:`/`torn:` directive does to a write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The attempt fails with an injected I/O error; nothing is written.
    Error,
    /// The attempt is torn: a partial temp file is left behind and an
    /// injected error is returned — a simulated kill mid-write.
    Torn,
}

/// One parsed `MICA_FAULTS` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `panic:kernel=NAME` — panic whenever kernel NAME is profiled.
    PanicKernel {
        /// Program name (`adpcm`) or full `suite/program/input` name.
        kernel: String,
    },
    /// `io:SITE[@N]` / `torn:SITE[@N]` — fault the first N write attempts
    /// at SITE.
    Io {
        /// Site name as passed to [`crate::io::atomic_write`].
        site: String,
        /// Error or torn write.
        kind: IoFaultKind,
        /// How many attempts to fault before standing down.
        attempts: u64,
    },
}

/// A parsed fault plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Directives in `MICA_FAULTS` order.
    pub directives: Vec<Directive>,
}

/// Why a `MICA_FAULTS` directive did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending directive text.
    pub directive: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad MICA_FAULTS directive {:?}: {}", self.directive, self.message)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// An empty plan (nothing injected).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when no directive is present.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Parse the `MICA_FAULTS` grammar (see the crate docs). Empty and
    /// whitespace-only input parse to the empty plan.
    ///
    /// # Errors
    ///
    /// The first directive that does not parse.
    pub fn parse(s: &str) -> Result<FaultPlan, PlanParseError> {
        let mut directives = Vec::new();
        for raw in s.split(',') {
            let d = raw.trim();
            if d.is_empty() {
                continue;
            }
            directives.push(parse_directive(d)?);
        }
        Ok(FaultPlan { directives })
    }
}

fn parse_directive(d: &str) -> Result<Directive, PlanParseError> {
    let err = |message: &str| PlanParseError { directive: d.to_string(), message: message.into() };
    let (head, rest) = d.split_once(':').ok_or_else(|| err("expected `kind:...`"))?;
    match head.trim() {
        "panic" => {
            let (what, kernel) =
                rest.split_once('=').ok_or_else(|| err("expected `panic:kernel=NAME`"))?;
            if what.trim() != "kernel" {
                return Err(err("only `panic:kernel=NAME` is supported"));
            }
            let kernel = kernel.trim();
            if kernel.is_empty() {
                return Err(err("empty kernel name"));
            }
            Ok(Directive::PanicKernel { kernel: kernel.to_string() })
        }
        kind @ ("io" | "torn") => {
            let kind =
                if kind == "io" { IoFaultKind::Error } else { IoFaultKind::Torn };
            let (site, attempts) = match rest.split_once('@') {
                None => (rest.trim(), 1),
                Some((site, n)) => (
                    site.trim(),
                    n.trim().parse::<u64>().map_err(|_| err("`@N` must be a positive integer"))?,
                ),
            };
            if site.is_empty() {
                return Err(err("empty site name"));
            }
            if attempts == 0 {
                return Err(err("`@N` must be a positive integer"));
            }
            Ok(Directive::Io { site: site.to_string(), kind, attempts })
        }
        _ => Err(err("unknown directive kind (want `panic`, `io` or `torn`)")),
    }
}

/// The installed plan plus per-directive fire counts.
struct PlanState {
    plan: FaultPlan,
    /// Times each directive has fired, indexed like `plan.directives`.
    fired: Vec<u64>,
}

impl PlanState {
    fn new(plan: FaultPlan) -> PlanState {
        let fired = vec![0; plan.directives.len()];
        PlanState { plan, fired }
    }
}

static PLAN: OnceLock<Mutex<PlanState>> = OnceLock::new();

fn state() -> &'static Mutex<PlanState> {
    PLAN.get_or_init(|| {
        let plan = match std::env::var("MICA_FAULTS") {
            Err(_) => FaultPlan::empty(),
            Ok(s) => match FaultPlan::parse(&s) {
                Ok(plan) => {
                    if !plan.is_empty() {
                        eprintln!(
                            "mica-fault: injecting {} fault(s) from MICA_FAULTS={s:?}",
                            plan.directives.len()
                        );
                    }
                    plan
                }
                Err(e) => {
                    eprintln!("warning: {e}; ignoring the whole MICA_FAULTS value");
                    FaultPlan::empty()
                }
            },
        };
        Mutex::new(PlanState::new(plan))
    })
}

/// Replace the process-global plan (tests and embedders). Resets all
/// occurrence counts.
pub fn install(plan: FaultPlan) {
    *state().lock().expect("fault plan poisoned") = PlanState::new(plan);
}

/// Remove every directive — nothing is injected until the next
/// [`install`].
pub fn clear() {
    install(FaultPlan::empty());
}

/// Whether any directive is installed (cheap pre-check for hot paths).
pub fn active() -> bool {
    !state().lock().expect("fault plan poisoned").plan.is_empty()
}

/// Should profiling kernel `name` panic? Matches `panic:kernel=` directives
/// by exact name; call once with the program name and once with the full
/// `suite/program/input` name (short-circuited so a match is counted once).
/// Counts the injection when it matches.
pub fn should_panic_kernel(name: &str) -> bool {
    let st = state().lock().expect("fault plan poisoned");
    for d in &st.plan.directives {
        if let Directive::PanicKernel { kernel } = d {
            if kernel == name {
                drop(st);
                crate::metrics::incr(&crate::metrics::INJECTED_PANIC);
                return true;
            }
        }
    }
    false
}

/// Should this write attempt at `site` be faulted? Consumes one occurrence
/// of the first matching directive with occurrences left. Counting of the
/// injection itself happens in [`crate::io::atomic_write`], which knows
/// whether the fault was an error or a tear.
pub fn io_fault(site: &str) -> Option<IoFaultKind> {
    let mut st = state().lock().expect("fault plan poisoned");
    for (i, d) in st.plan.directives.iter().enumerate() {
        if let Directive::Io { site: s, kind, attempts } = d {
            if s == site && st.fired[i] < *attempts {
                let kind = *kind;
                st.fired[i] += 1;
                return Some(kind);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plan mutations are process-global; serialize the tests that touch
    /// them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn grammar_parses_every_directive_kind() {
        let p = FaultPlan::parse("panic:kernel=adpcm, io:cache-write@2 ,torn:results").unwrap();
        assert_eq!(
            p.directives,
            vec![
                Directive::PanicKernel { kernel: "adpcm".into() },
                Directive::Io {
                    site: "cache-write".into(),
                    kind: IoFaultKind::Error,
                    attempts: 2
                },
                Directive::Io { site: "results".into(), kind: IoFaultKind::Torn, attempts: 1 },
            ]
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ,, ").unwrap().is_empty());
    }

    #[test]
    fn bad_directives_are_rejected_with_context() {
        for bad in [
            "panic",
            "panic:kernel=",
            "panic:thread=main",
            "io:",
            "io:site@0",
            "io:site@x",
            "boom:site",
        ] {
            let e = FaultPlan::parse(bad).unwrap_err();
            assert_eq!(e.directive, bad.trim());
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn kernel_panic_matches_by_exact_name_every_time() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::parse("panic:kernel=adpcm").unwrap());
        assert!(should_panic_kernel("adpcm"));
        assert!(should_panic_kernel("adpcm"), "kernel directives fire every time");
        assert!(!should_panic_kernel("adpcm_c"));
        assert!(!should_panic_kernel("MiBench/adpcm/rawcaudio"));
        clear();
        assert!(!should_panic_kernel("adpcm"));
    }

    #[test]
    fn io_occurrences_are_consumed_in_order() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::parse("io:a@2,torn:a").unwrap());
        // First two attempts consume the `io:a@2` budget, the third falls
        // through to `torn:a`, the fourth finds nothing left.
        assert_eq!(io_fault("a"), Some(IoFaultKind::Error));
        assert_eq!(io_fault("a"), Some(IoFaultKind::Error));
        assert_eq!(io_fault("a"), Some(IoFaultKind::Torn));
        assert_eq!(io_fault("a"), None);
        assert_eq!(io_fault("b"), None, "other sites never fault");
        clear();
    }
}

//! Process-wide fault counters.
//!
//! `mica-fault` sits *below* `mica-obs` in the dependency stack, so it
//! cannot use the observability crate's counter registry. Instead it keeps
//! its own fixed set of relaxed atomics and exposes a [`snapshot`];
//! `mica_obs::counters()` merges that snapshot into its own, so every run
//! summary lists the `fault.*` counters alongside the rest.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! fault_counters {
    ($( $(#[$doc:meta])* $name:ident => $label:literal ),+ $(,)?) => {
        $( $(#[$doc])* pub static $name: AtomicU64 = AtomicU64::new(0); )+

        /// Every fault counter as `(name, value)`, ascending by name.
        pub fn snapshot() -> Vec<(&'static str, u64)> {
            let mut v = vec![ $( ($label, $name.load(Ordering::Relaxed)) ),+ ];
            v.sort_unstable_by_key(|&(name, _)| name);
            v
        }

        /// Zero every fault counter (tests).
        pub fn reset() {
            $( $name.store(0, Ordering::Relaxed); )+
        }
    };
}

fault_counters! {
    /// Kernel panics injected by a `panic:kernel=` directive.
    INJECTED_PANIC => "fault.injected.panic",
    /// Server-request panics injected by a `panic:request=` directive.
    INJECTED_REQUEST_PANIC => "fault.injected.request_panic",
    /// Latency injections fired by a `slow:` directive.
    INJECTED_SLOW => "fault.injected.slow",
    /// Write attempts failed by an `io:` directive.
    INJECTED_IO => "fault.injected.io",
    /// Write attempts torn by a `torn:` directive.
    INJECTED_TORN => "fault.injected.torn",
    /// Writes that failed at least once (injected or real) and then
    /// succeeded on a retry.
    SURVIVED_IO => "fault.survived.io",
    /// Retry attempts performed by [`crate::io::atomic_write_retry`].
    IO_RETRIES => "fault.io.retries",
    /// Atomic writes that reached the rename (i.e. completed).
    ATOMIC_WRITES => "fault.io.atomic_writes",
}

/// Bump a counter by one. Public so adopters outside this crate (e.g. the
/// serve response path injecting `io:respond`) can account for faults they
/// inject themselves after consulting [`crate::plan::io_fault`].
pub fn incr(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Read a counter (tests and assertions).
pub fn get(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let snap = snapshot();
        assert_eq!(snap.len(), 8);
        let names: Vec<&str> = snap.iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert!(names.contains(&"fault.injected.panic"));
        assert!(names.contains(&"fault.injected.request_panic"));
        assert!(names.contains(&"fault.injected.slow"));
        assert!(names.contains(&"fault.survived.io"));
    }
}

//! `mica-fault`: deterministic fault injection and resilient artifact I/O.
//!
//! The paper's methodology only works when all 122 benchmarks yield a
//! complete characterization, yet a pipeline that *aborts* on the first
//! panicking kernel or torn cache file turns one transient fault into a
//! lost run. This crate is the resilience substrate the rest of the
//! workspace builds on:
//!
//! - [`io`] — write-to-temp-then-rename **atomic writes** plus bounded
//!   **deterministic retry** with an exponential, site-jittered backoff
//!   schedule (`MICA_RETRIES` extra attempts, default 3; cap
//!   `MICA_RETRY_CAP_MS`, default 32). Adopted by the profile cache, every
//!   results artifact, the run summaries, the observability sinks and the
//!   trace dumps: an interrupted write leaves either the old file or the
//!   new file on disk, never a partial one.
//! - [`plan`] — an env-driven **fault plan** (`MICA_FAULTS`) describing
//!   faults to inject deterministically: kernel panics, server-request
//!   panics, write errors, torn writes and latency at named sites. CI uses
//!   it to *prove* every degradation path — a run with an injected kernel
//!   panic must still complete on the surviving 121 benchmarks, a run with
//!   an injected cache-write error must survive it through retry, and a
//!   server with an injected request panic must keep serving.
//! - [`metrics`] — process-wide counters of injected and survived faults.
//!   `mica-obs` merges them into its counter snapshot, so run summaries
//!   record exactly which faults fired and which were absorbed.
//!
//! The crate sits at the very bottom of the dependency stack (std only, no
//! deps — `mica-obs` depends on *it*), so injection and atomicity are
//! available everywhere without cycles. Nothing here reads wall-clock
//! randomness: fault plans fire on exact name/occurrence matches and the
//! retry backoff is a pure function of the site name and attempt number,
//! so a faulting run is reproducible bit for bit.
//!
//! # Fault grammar (`MICA_FAULTS`)
//!
//! Comma-separated directives:
//!
//! ```text
//! panic:kernel=NAME      panic while profiling kernel NAME (program name
//!                        such as `adpcm`, or full `suite/program/input`)
//! panic:request=N        panic while serving the N-th submitted request
//!                        (caught by the server's per-request quarantine)
//! io:SITE[@N]            fail the first N write attempts at SITE
//!                        (default N=1)
//! torn:SITE[@N]          simulate a crash mid-write at SITE for the first
//!                        N attempts: a partial temp file is written, an
//!                        error is returned, the destination is untouched
//! slow:SITE[=MS][@N]     delay the first N operations at SITE by MS
//!                        milliseconds (default MS=25, N=1)
//! ```
//!
//! Example: `MICA_FAULTS=panic:kernel=adpcm,io:cache-write@2,torn:results`.
//!
//! Known sites: `cache-write` (the profile cache / `profiles.json`),
//! `results` (CSV/SVG/markdown artifacts), `run-summary`
//! (`run-<bin>.json`), `obs.trace` (`MICA_TRACE`), `obs.events`
//! (`MICA_EVENTS`), `tinyisa.trace` (binary trace dumps), `serve-index`
//! (the server's sharded profile index), `serve-drain` (the server's
//! drain summary), `serve.request` (request execution, `slow:` only) and
//! `respond` (the server's response writes, `io:`/`slow:`).

pub mod io;
pub mod metrics;
pub mod plan;

pub use io::{atomic_write, atomic_write_retry, atomic_write_with_retries, retries, tmp_path};
pub use plan::{FaultPlan, IoFaultKind, PlanParseError};

//! Atomic, retried artifact writes.
//!
//! Every artifact the pipeline produces (profile cache, CSV/SVG results,
//! run summaries, trace files) used to be a raw `fs::write` — a crash or
//! `ENOSPC` mid-write left a torn file that poisoned the next run. The
//! helpers here follow the classic write-to-temp-then-rename protocol:
//!
//! 1. the payload is written to `.<file>.tmp` next to the destination,
//! 2. the temp file is `rename(2)`d over the destination.
//!
//! Rename is atomic on POSIX filesystems, so at every instant the
//! destination holds either the complete old content or the complete new
//! content — never a prefix. [`atomic_write_retry`] adds bounded retry
//! with an exponential 1, 2, 4, … ms schedule plus **deterministic
//! jitter** seeded from the retry site name (no wall-clock randomness,
//! so faulting runs reproduce, but two sites retrying the same artifact
//! directory no longer thunder in lockstep), capped at `MICA_RETRY_CAP_MS`
//! (default 32): `MICA_RETRIES` (default 3) extra attempts after the
//! first.
//!
//! Both helpers consult the installed [`crate::plan`] first, keyed by the
//! caller-supplied `site` name, so CI can deterministically inject write
//! errors (`io:SITE`) and simulated kill-mid-write tears (`torn:SITE`)
//! at any adopter.

use crate::metrics;
use crate::plan::{self, IoFaultKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Extra attempts after the first failed write: `MICA_RETRIES` if set to a
/// non-negative integer, else 3.
pub fn retries() -> u32 {
    match std::env::var("MICA_RETRIES") {
        Err(_) => 3,
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("warning: ignoring invalid MICA_RETRIES={v:?}; using 3");
                3
            }
        },
    }
}

/// Backoff cap in milliseconds: `MICA_RETRY_CAP_MS` if set to a positive
/// integer, else 32.
pub fn backoff_cap_ms() -> u64 {
    match std::env::var("MICA_RETRY_CAP_MS") {
        Err(_) => 32,
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring invalid MICA_RETRY_CAP_MS={v:?}; using 32");
                32
            }
        },
    }
}

/// FNV-1a hash of a site name — the seed for deterministic backoff jitter.
fn site_seed(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Backoff before retry attempt `attempt` (1-based) at `site`: the
/// exponential base 1, 2, 4, … ms plus a jitter in `[0, base)` derived
/// from the site name and the attempt number (splitmix64 of the FNV
/// seed), the sum capped at [`backoff_cap_ms`]. No wall-clock randomness
/// enters the schedule, so a given `(site, attempt)` pair always waits the
/// same amount — runs reproduce — while distinct sites desynchronize.
pub fn backoff_ms(site: &str, attempt: u32) -> u64 {
    let base = 1u64 << attempt.saturating_sub(1).min(5);
    let mut x = site_seed(site) ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (base + x % base).min(backoff_cap_ms())
}

/// The sibling temp path the atomic protocol stages into:
/// `dir/.<file>.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
    path.with_file_name(format!(".{name}.tmp"))
}

fn injected_error(site: &str, what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what} at site {site} (MICA_FAULTS)"))
}

/// Write `bytes` to `path` atomically: stage into [`tmp_path`], then
/// rename over the destination. Parent directories are created as needed.
///
/// An installed fault plan may fail the attempt (`io:SITE`, nothing
/// written) or tear it (`torn:SITE`, a partial temp file is left behind as
/// a simulated kill mid-write) — in both cases the destination is
/// untouched.
///
/// # Errors
///
/// Propagates filesystem errors and injected faults.
pub fn atomic_write(site: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)?;
    }
    if let Some(ms) = plan::slow_fault(site) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    match plan::io_fault(site) {
        Some(IoFaultKind::Error) => {
            metrics::incr(&metrics::INJECTED_IO);
            return Err(injected_error(site, "write error"));
        }
        Some(IoFaultKind::Torn) => {
            metrics::incr(&metrics::INJECTED_TORN);
            // A kill mid-write tears the *temp* file; the destination is
            // protected by the rename that never happens.
            let _ = fs::write(tmp_path(path), &bytes[..bytes.len() / 2]);
            return Err(injected_error(site, "torn write (simulated crash mid-write)"));
        }
        None => {}
    }
    let tmp = tmp_path(path);
    if let Err(e) = fs::write(&tmp, bytes) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fs::rename(&tmp, path)?;
    metrics::incr(&metrics::ATOMIC_WRITES);
    Ok(())
}

/// [`atomic_write`] with up to `retries` extra attempts, sleeping the
/// deterministic site-jittered [`backoff_ms`] schedule between attempts.
///
/// # Errors
///
/// The last attempt's error once the budget is exhausted.
pub fn atomic_write_with_retries(
    site: &str,
    path: &Path,
    bytes: &[u8],
    retries: u32,
) -> io::Result<()> {
    let mut attempt = 0u32;
    loop {
        match atomic_write(site, path, bytes) {
            Ok(()) => {
                if attempt > 0 {
                    metrics::incr(&metrics::SURVIVED_IO);
                    eprintln!(
                        "mica-fault: write to {} (site {site}) succeeded after {attempt} retr{}",
                        path.display(),
                        if attempt == 1 { "y" } else { "ies" }
                    );
                }
                return Ok(());
            }
            Err(e) => {
                if attempt >= retries {
                    return Err(e);
                }
                attempt += 1;
                metrics::incr(&metrics::IO_RETRIES);
                eprintln!(
                    "warning: write to {} (site {site}) failed ({e}); retry {attempt}/{retries}",
                    path.display()
                );
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms(site, attempt)));
            }
        }
    }
}

/// [`atomic_write_with_retries`] with the environment's [`retries`]
/// budget — the form the pipeline's artifact writers use.
///
/// # Errors
///
/// See [`atomic_write_with_retries`].
pub fn atomic_write_retry(site: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with_retries(site, path, bytes, retries())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use std::sync::Mutex;

    /// Plan mutations are process-global; serialize the tests that touch
    /// them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mica_fault_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_creates_parents_and_leaves_no_tmp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("deep/nested/out.json");
        atomic_write("test.atomic", &path, b"{\"ok\":true}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"ok\":true}");
        assert!(!tmp_path(&path).exists(), "temp file renamed away");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn atomic_write_replaces_existing_content_completely() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.txt");
        atomic_write("test.replace", &path, b"old old old old").unwrap();
        atomic_write("test.replace", &path, b"new").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn injected_error_fails_without_touching_destination() {
        let _g = LOCK.lock().unwrap();
        let dir = tmp_dir("injected");
        let path = dir.join("out.txt");
        fs::write(&path, b"old").unwrap();
        plan::install(FaultPlan::parse("io:test.site").unwrap());
        let err = atomic_write("test.site", &path, b"new").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert_eq!(fs::read(&path).unwrap(), b"old");
        plan::clear();
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_write_leaves_old_or_new_never_partial() {
        let _g = LOCK.lock().unwrap();
        let dir = tmp_dir("torn");
        let path = dir.join("out.json");
        let old = b"{\"version\":\"old\"}".to_vec();
        let new = b"{\"version\":\"new-and-longer\"}".to_vec();
        atomic_write("test.torn", &path, &old).unwrap();

        // Kill-during-write: with a zero retry budget the tear is fatal,
        // but the destination still holds the complete old content.
        plan::install(FaultPlan::parse("torn:test.torn").unwrap());
        atomic_write_with_retries("test.torn", &path, &new, 0).unwrap_err();
        assert_eq!(fs::read(&path).unwrap(), old, "old content intact after tear");
        let partial = fs::read(tmp_path(&path)).unwrap();
        assert_eq!(partial, new[..new.len() / 2], "the tear hit the temp file only");

        // The rewrite after the injected tear replaces it atomically.
        plan::clear();
        atomic_write_retry("test.torn", &path, &new).unwrap();
        assert_eq!(fs::read(&path).unwrap(), new);
        assert!(!tmp_path(&path).exists());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn retry_survives_a_bounded_fault_budget() {
        let _g = LOCK.lock().unwrap();
        let dir = tmp_dir("retry");
        let path = dir.join("out.txt");
        plan::install(FaultPlan::parse("io:test.retry@2").unwrap());
        let survived_before = metrics::get(&metrics::SURVIVED_IO);
        atomic_write_with_retries("test.retry", &path, b"payload", 3).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        assert_eq!(metrics::get(&metrics::SURVIVED_IO), survived_before + 1);

        // A budget smaller than the fault count exhausts and fails.
        plan::install(FaultPlan::parse("io:test.retry@5").unwrap());
        atomic_write_with_retries("test.retry", &path, b"other", 2).unwrap_err();
        assert_eq!(fs::read(&path).unwrap(), b"payload", "failed write changed nothing");
        plan::clear();
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_site() {
        let _g = LOCK.lock().unwrap();
        let a: Vec<u64> = (1..=8).map(|n| backoff_ms("cache-write", n)).collect();
        let b: Vec<u64> = (1..=8).map(|n| backoff_ms("cache-write", n)).collect();
        assert_eq!(a, b, "same site, same schedule — no wall-clock randomness");
    }

    #[test]
    fn backoff_stays_between_base_and_cap() {
        let _g = LOCK.lock().unwrap();
        for site in ["cache-write", "results", "run-summary", "serve-index", "serve-client"] {
            for attempt in 1..=10u32 {
                let base = 1u64 << attempt.saturating_sub(1).min(5);
                let ms = backoff_ms(site, attempt);
                assert!(ms >= base.min(32), "{site} attempt {attempt}: {ms} below base {base}");
                assert!(ms < (2 * base).max(33), "{site} attempt {attempt}: {ms} past jitter range");
                assert!(ms <= 32, "{site} attempt {attempt}: {ms} above the default cap");
            }
        }
        // Attempt 1 has base 1 and an empty jitter range: exactly 1 ms.
        assert_eq!(backoff_ms("anything", 1), 1);
    }

    #[test]
    fn backoff_jitter_separates_sites() {
        let _g = LOCK.lock().unwrap();
        // With a 16 ms base and jitter in [0, 16), five distinct sites
        // colliding on the identical schedule would mean the seed is dead.
        let sites = ["cache-write", "results", "run-summary", "serve-index", "trace"];
        let at5: Vec<u64> = sites.iter().map(|s| backoff_ms(s, 5)).collect();
        let distinct: std::collections::BTreeSet<u64> = at5.iter().copied().collect();
        assert!(distinct.len() > 1, "all sites share one schedule: {at5:?}");
    }

    #[test]
    fn backoff_cap_is_configurable() {
        let _g = LOCK.lock().unwrap();
        assert_eq!(backoff_cap_ms(), 32);
        std::env::set_var("MICA_RETRY_CAP_MS", "4");
        assert!((1..=8).all(|n| backoff_ms("cache-write", n) <= 4));
        std::env::set_var("MICA_RETRY_CAP_MS", "bogus");
        assert_eq!(backoff_cap_ms(), 32);
        std::env::remove_var("MICA_RETRY_CAP_MS");
    }

    #[test]
    fn tmp_path_is_a_hidden_sibling() {
        assert_eq!(
            tmp_path(Path::new("results/profiles.json")),
            Path::new("results/.profiles.json.tmp")
        );
    }
}

//! Atomic, retried artifact writes.
//!
//! Every artifact the pipeline produces (profile cache, CSV/SVG results,
//! run summaries, trace files) used to be a raw `fs::write` — a crash or
//! `ENOSPC` mid-write left a torn file that poisoned the next run. The
//! helpers here follow the classic write-to-temp-then-rename protocol:
//!
//! 1. the payload is written to `.<file>.tmp` next to the destination,
//! 2. the temp file is `rename(2)`d over the destination.
//!
//! Rename is atomic on POSIX filesystems, so at every instant the
//! destination holds either the complete old content or the complete new
//! content — never a prefix. [`atomic_write_retry`] adds bounded retry
//! with a **fixed** backoff schedule (1, 2, 4, … ms, capped at 32 ms —
//! no wall-clock randomness, so faulting runs reproduce): `MICA_RETRIES`
//! (default 3) extra attempts after the first.
//!
//! Both helpers consult the installed [`crate::plan`] first, keyed by the
//! caller-supplied `site` name, so CI can deterministically inject write
//! errors (`io:SITE`) and simulated kill-mid-write tears (`torn:SITE`)
//! at any adopter.

use crate::metrics;
use crate::plan::{self, IoFaultKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Extra attempts after the first failed write: `MICA_RETRIES` if set to a
/// non-negative integer, else 3.
pub fn retries() -> u32 {
    match std::env::var("MICA_RETRIES") {
        Err(_) => 3,
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("warning: ignoring invalid MICA_RETRIES={v:?}; using 3");
                3
            }
        },
    }
}

/// Fixed backoff before retry attempt `attempt` (1-based): 1, 2, 4, … ms,
/// capped at 32 ms. Deterministic by construction.
pub(crate) fn backoff_ms(attempt: u32) -> u64 {
    1u64 << attempt.saturating_sub(1).min(5)
}

/// The sibling temp path the atomic protocol stages into:
/// `dir/.<file>.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
    path.with_file_name(format!(".{name}.tmp"))
}

fn injected_error(site: &str, what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what} at site {site} (MICA_FAULTS)"))
}

/// Write `bytes` to `path` atomically: stage into [`tmp_path`], then
/// rename over the destination. Parent directories are created as needed.
///
/// An installed fault plan may fail the attempt (`io:SITE`, nothing
/// written) or tear it (`torn:SITE`, a partial temp file is left behind as
/// a simulated kill mid-write) — in both cases the destination is
/// untouched.
///
/// # Errors
///
/// Propagates filesystem errors and injected faults.
pub fn atomic_write(site: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)?;
    }
    match plan::io_fault(site) {
        Some(IoFaultKind::Error) => {
            metrics::incr(&metrics::INJECTED_IO);
            return Err(injected_error(site, "write error"));
        }
        Some(IoFaultKind::Torn) => {
            metrics::incr(&metrics::INJECTED_TORN);
            // A kill mid-write tears the *temp* file; the destination is
            // protected by the rename that never happens.
            let _ = fs::write(tmp_path(path), &bytes[..bytes.len() / 2]);
            return Err(injected_error(site, "torn write (simulated crash mid-write)"));
        }
        None => {}
    }
    let tmp = tmp_path(path);
    if let Err(e) = fs::write(&tmp, bytes) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fs::rename(&tmp, path)?;
    metrics::incr(&metrics::ATOMIC_WRITES);
    Ok(())
}

/// [`atomic_write`] with up to `retries` extra attempts, sleeping the
/// fixed [`backoff_ms`] schedule between attempts.
///
/// # Errors
///
/// The last attempt's error once the budget is exhausted.
pub fn atomic_write_with_retries(
    site: &str,
    path: &Path,
    bytes: &[u8],
    retries: u32,
) -> io::Result<()> {
    let mut attempt = 0u32;
    loop {
        match atomic_write(site, path, bytes) {
            Ok(()) => {
                if attempt > 0 {
                    metrics::incr(&metrics::SURVIVED_IO);
                    eprintln!(
                        "mica-fault: write to {} (site {site}) succeeded after {attempt} retr{}",
                        path.display(),
                        if attempt == 1 { "y" } else { "ies" }
                    );
                }
                return Ok(());
            }
            Err(e) => {
                if attempt >= retries {
                    return Err(e);
                }
                attempt += 1;
                metrics::incr(&metrics::IO_RETRIES);
                eprintln!(
                    "warning: write to {} (site {site}) failed ({e}); retry {attempt}/{retries}",
                    path.display()
                );
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms(attempt)));
            }
        }
    }
}

/// [`atomic_write_with_retries`] with the environment's [`retries`]
/// budget — the form the pipeline's artifact writers use.
///
/// # Errors
///
/// See [`atomic_write_with_retries`].
pub fn atomic_write_retry(site: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with_retries(site, path, bytes, retries())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use std::sync::Mutex;

    /// Plan mutations are process-global; serialize the tests that touch
    /// them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mica_fault_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_creates_parents_and_leaves_no_tmp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("deep/nested/out.json");
        atomic_write("test.atomic", &path, b"{\"ok\":true}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"ok\":true}");
        assert!(!tmp_path(&path).exists(), "temp file renamed away");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn atomic_write_replaces_existing_content_completely() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.txt");
        atomic_write("test.replace", &path, b"old old old old").unwrap();
        atomic_write("test.replace", &path, b"new").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn injected_error_fails_without_touching_destination() {
        let _g = LOCK.lock().unwrap();
        let dir = tmp_dir("injected");
        let path = dir.join("out.txt");
        fs::write(&path, b"old").unwrap();
        plan::install(FaultPlan::parse("io:test.site").unwrap());
        let err = atomic_write("test.site", &path, b"new").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert_eq!(fs::read(&path).unwrap(), b"old");
        plan::clear();
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_write_leaves_old_or_new_never_partial() {
        let _g = LOCK.lock().unwrap();
        let dir = tmp_dir("torn");
        let path = dir.join("out.json");
        let old = b"{\"version\":\"old\"}".to_vec();
        let new = b"{\"version\":\"new-and-longer\"}".to_vec();
        atomic_write("test.torn", &path, &old).unwrap();

        // Kill-during-write: with a zero retry budget the tear is fatal,
        // but the destination still holds the complete old content.
        plan::install(FaultPlan::parse("torn:test.torn").unwrap());
        atomic_write_with_retries("test.torn", &path, &new, 0).unwrap_err();
        assert_eq!(fs::read(&path).unwrap(), old, "old content intact after tear");
        let partial = fs::read(tmp_path(&path)).unwrap();
        assert_eq!(partial, new[..new.len() / 2], "the tear hit the temp file only");

        // The rewrite after the injected tear replaces it atomically.
        plan::clear();
        atomic_write_retry("test.torn", &path, &new).unwrap();
        assert_eq!(fs::read(&path).unwrap(), new);
        assert!(!tmp_path(&path).exists());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn retry_survives_a_bounded_fault_budget() {
        let _g = LOCK.lock().unwrap();
        let dir = tmp_dir("retry");
        let path = dir.join("out.txt");
        plan::install(FaultPlan::parse("io:test.retry@2").unwrap());
        let survived_before = metrics::get(&metrics::SURVIVED_IO);
        atomic_write_with_retries("test.retry", &path, b"payload", 3).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        assert_eq!(metrics::get(&metrics::SURVIVED_IO), survived_before + 1);

        // A budget smaller than the fault count exhausts and fails.
        plan::install(FaultPlan::parse("io:test.retry@5").unwrap());
        atomic_write_with_retries("test.retry", &path, b"other", 2).unwrap_err();
        assert_eq!(fs::read(&path).unwrap(), b"payload", "failed write changed nothing");
        plan::clear();
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn backoff_schedule_is_fixed_and_capped() {
        assert_eq!(
            (1..=8).map(backoff_ms).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16, 32, 32, 32]
        );
    }

    #[test]
    fn tmp_path_is_a_hidden_sibling() {
        assert_eq!(
            tmp_path(Path::new("results/profiles.json")),
            Path::new("results/.profiles.json.tmp")
        );
    }
}

//! End-to-end robustness envelope: one in-process server, driven through
//! every admission/deadline/quarantine/drain path the crate promises.
//!
//! One `#[test]` on purpose: the scenario owns the process environment
//! (`MICA_RESULTS_DIR`, `MICA_SCALE`, `MICA_THREADS`) and the global
//! fault plan, neither of which tolerates a concurrent sibling test.

use mica_serve::client;
use mica_serve::protocol::{parse_request, render_response, status, Request, RequestKind, Response};
use mica_serve::server::{spawn, DrainSummary};
use mica_serve::ServeConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A raw (non-retrying) connection: write request lines, read response
/// lines, in whatever order the server produces them.
struct RawConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn open(addr: &str) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        RawConn { stream, reader }
    }

    fn send(&mut self, req: &Request) {
        let mut line = client::render_request(req);
        line.push('\n');
        self.stream.write_all(line.as_bytes()).expect("send");
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed connection unexpectedly");
        serde_json::from_str(line.trim_end()).expect("parseable response")
    }
}

fn asm_request(id: &str, text: &str) -> Request {
    let mut req = Request::new(id, RequestKind::Asm);
    req.asm = Some(text.to_string());
    req
}

/// A finite countdown kernel: distinct per `n`, so each is a distinct
/// (expensive, uncached) submission.
fn countdown_asm(n: u64) -> String {
    format!("li x7, {n}\nloop:\naddi x7, x7, -1\nbne x7, x0, loop\nhalt")
}

fn install(plan: &str) {
    mica_fault::plan::install(mica_fault::plan::FaultPlan::parse(plan).expect("valid fault plan"));
}

#[test]
fn robustness_envelope_end_to_end() {
    // -- environment: isolated results dir, tiny budgets, 2 workers ------
    let results = std::env::temp_dir().join(format!("mica-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&results);
    std::fs::create_dir_all(&results).unwrap();
    std::env::set_var("MICA_RESULTS_DIR", &results);
    std::env::set_var("MICA_SCALE", "0.000000001");
    std::env::set_var("MICA_THREADS", "2");

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        queue_cap: 8,
        watermark: 6,
        default_deadline_ms: 10_000,
        max_deadline_ms: 30_000,
        // Generous: deadline tests below rely on wall-clock cancellation,
        // not on the fuel allowance tripping first.
        fuel_per_ms: 10_000_000,
        slice: 50_000,
        retry_ms: 5,
        slo_ms: 30_000,
        slo_target: 0.5,
    };
    mica_fault::plan::clear();
    let handle = spawn(cfg).expect("server boots");
    let addr = handle.addr().to_string();

    // The server's boot wrote (or reused) the batch pipeline's cache;
    // read it back from disk as the independent reference.
    let reference =
        mica_experiments::profile::load_or_profile_all(&results.join("profiles.json"), 1e-9)
            .expect("reference profiles")
            .set;

    // -- deadline: injected latency pushes a request past its deadline ---
    install("slow:serve.request=600@1");
    let mut conn = RawConn::open(&addr);
    let mut req = asm_request("slowpoke", &countdown_asm(50));
    req.deadline_ms = Some(100);
    conn.send(&req);
    let resp = conn.recv();
    assert_eq!(resp.status, status::DEADLINE, "slow-faulted request: {resp:?}");
    assert!(resp.result.is_none());

    // -- deadline: watchdog cancels genuinely long-running work ----------
    mica_fault::plan::clear();
    let mut req = asm_request("longrun", "loop:\njmp loop");
    req.deadline_ms = Some(150);
    conn.send(&req);
    let resp = conn.recv();
    assert_eq!(resp.status, status::DEADLINE, "runaway loop: {resp:?}");
    assert!(
        resp.error.as_deref().unwrap_or("").contains("cancelled"),
        "expected a watchdog cancellation, got {resp:?}"
    );

    // -- deadline: infeasible budgets are refused before running ---------
    let mut req = asm_request("infeasible", &countdown_asm(10));
    req.budget = Some(u64::MAX / 2);
    req.deadline_ms = Some(100);
    conn.send(&req);
    let resp = conn.recv();
    assert_eq!(resp.status, status::DEADLINE, "infeasible budget: {resp:?}");
    assert!(resp.error.as_deref().unwrap_or("").contains("allowance"));

    // -- quarantine: an injected request panic is one structured reply ---
    install("panic:request=1");
    conn.send(&asm_request("boom", &countdown_asm(10)));
    let resp = conn.recv();
    assert_eq!(resp.status, status::PANIC, "injected panic: {resp:?}");
    assert!(resp.error.as_deref().unwrap_or("").contains("quarantined"));

    // ...and the server still answers on the very same connection.
    mica_fault::plan::clear();
    conn.send(&asm_request("after-boom", &countdown_asm(10)));
    assert_eq!(conn.recv().status, status::OK);

    // -- bad lines get structured errors with salvaged ids ---------------
    conn.stream.write_all(b"{\"id\":\"mangled\",\"kind\":\"nope\"}\n").unwrap();
    let resp = conn.recv();
    assert_eq!(resp.id, "mangled");
    assert_eq!(resp.status, status::ERROR);

    // -- dropped responses: the retrying client survives io:respond ------
    install("io:respond@1");
    let table_name = reference.records[0].name.clone();
    let mut req = Request::new("flaky", RequestKind::Table);
    req.name = Some(table_name.clone());
    let resp = client::query(&addr, &req, 4).expect("client retries through a dropped response");
    assert_eq!(resp.status, status::OK);
    mica_fault::plan::clear();

    // -- table answers are byte-identical to the batch pipeline ----------
    let picks: Vec<usize> =
        vec![0, 20, 40, 60, 80, 100].into_iter().filter(|&i| i < reference.records.len()).collect();
    let answers: Vec<(usize, Response)> = std::thread::scope(|scope| {
        let handles: Vec<_> = picks
            .iter()
            .map(|&i| {
                let addr = addr.clone();
                let name = reference.records[i].name.clone();
                scope.spawn(move || {
                    let mut req = Request::new(format!("tbl-{i}"), RequestKind::Table);
                    req.name = Some(name);
                    req.k = Some(3);
                    (i, client::query(&addr, &req, 6).expect("table query"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Fingerprints once: each call re-assembles all 122 reference kernels.
    let table_fp = mica_workloads::table_fingerprint();
    let profile_fp = mica_experiments::profile::profile_fingerprint();
    for (i, resp) in answers {
        assert_eq!(resp.status, status::OK, "table answer {i}: {resp:?}");
        let result = resp.result.expect("ok carries a result");
        let rec = &reference.records[i];
        assert_eq!(result.vector, rec.mica.values().to_vec(), "vector for {} differs", rec.name);
        assert_eq!(result.executed_instructions, rec.executed_instructions);
        assert!(result.cached);
        assert_eq!(result.neighbors.len(), 3);
        assert!(result.neighbors[0].distance.abs() < 1e-9, "self should be distance ~0");
        let prov = resp.provenance.expect("ok carries provenance");
        assert_eq!(prov.table_fingerprint, table_fp);
        assert_eq!(prov.profile_fingerprint, profile_fp);
        assert_eq!(prov.selected_metrics.len(), 8);
        assert!(prov.env.iter().any(|e| e.name == "MICA_SCALE"));
    }

    // -- zoo: parameterized instances simulate once, then hit the index --
    let zoo_name = reference.records[1].name.clone();
    let mut req = Request::new("zoo-1", RequestKind::Zoo);
    req.name = Some(zoo_name.clone());
    req.seed = Some(12345);
    let first = client::query(&addr, &req, 4).expect("zoo query");
    assert_eq!(first.status, status::OK, "{first:?}");
    let first = first.result.unwrap();
    assert!(!first.cached);
    assert!(first.executed_instructions > 0);
    req.id = "zoo-2".into();
    let second = client::query(&addr, &req, 4).expect("repeat zoo query").result.unwrap();
    assert!(second.cached, "identical zoo submission should hit the index");
    assert_eq!(second.vector, first.vector, "cached answer must be bit-identical");

    // -- admission control: full queue rejects, watermark sheds ----------
    // Two workers sleep 400ms per job (slow fault), so everything below
    // lands while the burst still occupies the queue+inflight budget:
    // six expensive jobs take depth exactly to the watermark.
    install("slow:serve.request=400@64");
    let mut burst: Vec<RawConn> = (0..6u64)
        .map(|i| {
            let mut c = RawConn::open(&addr);
            let mut req = asm_request(&format!("burst-{i}"), &countdown_asm(1000 + i));
            req.deadline_ms = Some(20_000);
            c.send(&req);
            c
        })
        .collect();
    // Give the reader threads a beat to admit all six.
    std::thread::sleep(Duration::from_millis(100));

    // At the watermark, expensive (simulation-needing) work is shed...
    let mut shed_conn = RawConn::open(&addr);
    shed_conn.send(&asm_request("shed-me", &countdown_asm(9999)));
    let resp = shed_conn.recv();
    assert_eq!(resp.status, status::OVERLOADED, "expensive work above watermark: {resp:?}");
    assert!(resp.retry_after_ms.is_some(), "backpressure must hint a retry");
    assert!(resp.error.as_deref().unwrap_or("").contains("shedding"));

    // ...while cheap cache-served lookups still pass, filling the queue
    // to its hard capacity...
    let mut cheap: Vec<RawConn> = (0..2)
        .map(|i| {
            let mut c = RawConn::open(&addr);
            let mut req = Request::new(format!("cheap-{i}"), RequestKind::Table);
            req.name = Some(table_name.clone());
            req.deadline_ms = Some(20_000);
            c.send(&req);
            c
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    // ...at which point the next request bounces no matter how cheap.
    let mut full = RawConn::open(&addr);
    let mut req = Request::new("one-too-many", RequestKind::Table);
    req.name = Some(table_name.clone());
    full.send(&req);
    let resp = full.recv();
    assert_eq!(resp.status, status::OVERLOADED, "queue at capacity: {resp:?}");
    assert!(resp.retry_after_ms.is_some());
    assert!(resp.error.as_deref().unwrap_or("").contains("full"));

    // The retrying client rides the backpressure out to an answer.
    let mut req = Request::new("patient", RequestKind::Table);
    req.name = Some(table_name.clone());
    let resp = client::query(&addr, &req, 60).expect("backpressure drains eventually");
    assert_eq!(resp.status, status::OK);

    for (i, c) in cheap.iter_mut().enumerate() {
        assert_eq!(c.recv().status, status::OK, "admitted cheap lookup {i} completes");
    }
    for (i, c) in burst.iter_mut().enumerate() {
        assert_eq!(c.recv().status, status::OK, "burst job {i} completes");
    }
    mica_fault::plan::clear();

    // -- graceful drain: in-flight finishes, new work is refused ---------
    install("slow:serve.request=300@1");
    let mut drain_conn = RawConn::open(&addr);
    let mut req = asm_request("in-flight", &countdown_asm(777));
    req.deadline_ms = Some(20_000);
    drain_conn.send(&req);
    std::thread::sleep(Duration::from_millis(100)); // let it reach a worker
    handle.shutdown();
    let mut req = Request::new("too-late", RequestKind::Table);
    req.name = Some(table_name.clone());
    drain_conn.send(&req);

    let refusal = drain_conn.recv();
    assert_eq!(refusal.id, "too-late");
    assert_eq!(refusal.status, status::DRAINING, "{refusal:?}");
    let inflight = drain_conn.recv();
    assert_eq!(inflight.id, "in-flight");
    assert_eq!(inflight.status, status::OK, "in-flight work must drain, not drop: {inflight:?}");

    let summary = handle.join().expect("clean drain");

    // -- the drain summary accounts for everything above ------------------
    assert!(summary.accepted >= 15, "accepted {summary:?}");
    assert!(summary.ok >= 12);
    assert_eq!(summary.panics, 1);
    assert_eq!(summary.deadline_exceeded, 3);
    assert!(summary.rejected_overloaded >= 2);
    assert!(summary.shed >= 1);
    assert!(summary.rejected_draining >= 1);
    assert_eq!(summary.bad_lines, 1);
    assert!(summary.drained_in_flight >= 1);
    assert_eq!(summary.index_shards, 4);
    assert!(summary.index_entries >= 5, "index entries {summary:?}");
    assert!(summary.wall_s > 0.0);

    // Written summary == returned summary, via the public schema.
    let on_disk = std::fs::read_to_string(results.join("serve-drain.json")).unwrap();
    let parsed: DrainSummary = serde_json::from_str(&on_disk).expect("schema-valid drain summary");
    assert_eq!(parsed.accepted, summary.accepted);
    assert_eq!(parsed.provenance, summary.provenance);

    // Index shards exist and no torn temp files were left anywhere.
    for shard in 0..4 {
        assert!(
            results.join("serve-index").join(format!("shard-{shard}.json")).exists(),
            "missing index shard {shard}"
        );
    }
    let mut stack = vec![results.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let name = entry.file_name().to_string_lossy().into_owned();
                assert!(!name.ends_with(".tmp"), "torn temp file left behind: {}", path.display());
            }
        }
    }

    // Protocol smoke for the doc examples (keep them honest).
    let doc = r#"{"id":"q1","kind":"table","name":"MiBench/sha/large","k":3}"#;
    let parsed = parse_request(doc).unwrap();
    assert!(!render_response(&Response::refusal(&parsed.id, status::DRAINING, "x")).is_empty());

    std::env::remove_var("MICA_RESULTS_DIR");
    std::env::remove_var("MICA_SCALE");
    std::env::remove_var("MICA_THREADS");
    let _ = std::fs::remove_dir_all(&results);
}

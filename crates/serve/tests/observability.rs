//! End-to-end observability: one in-process server with a Chrome-trace
//! sink, driven through data-plane queries and ops scrapes, then drained
//! — verifying the tentpole promises from the *artifacts*:
//!
//! - every response echoes a 16-hex trace id, and one request's spans
//!   form one connected tree under that id in the written Chrome trace
//!   (root `request` span, `queue` span, engine spans — no orphans);
//! - the ops plane answers `health`/`ready`/`metrics`/`stats`, keeps
//!   answering mid-drain, and flips `ready` to false while draining;
//! - observation is pure: a traced, scraped `table` answer is
//!   byte-identical to the batch pipeline's profile of the same kernel;
//! - the access log records every request line with the schema-stable
//!   [`AccessEntry`] shape, and the drain summary's SLO accounting
//!   matches what was served.
//!
//! One `#[test]` on purpose: the scenario owns the process environment
//! (`MICA_RESULTS_DIR`, `MICA_SCALE`, `MICA_THREADS`), which does not
//! tolerate a concurrent sibling test.

use mica_serve::client;
use mica_serve::protocol::{status, Request, RequestKind, Response};
use mica_serve::server::{spawn, AccessEntry};
use mica_serve::ServeConfig;
use serde::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

struct RawConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn open(addr: &str) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        RawConn { stream, reader }
    }

    fn roundtrip(&mut self, req: &Request) -> Response {
        let mut line = client::render_request(req);
        line.push('\n');
        self.stream.write_all(line.as_bytes()).expect("send");
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).expect("recv");
        assert!(n > 0, "server closed connection unexpectedly");
        serde_json::from_str(reply.trim_end()).expect("parseable response")
    }
}

fn ops_request(id: &str, op: &str) -> Request {
    let mut req = Request::new(id, RequestKind::Ops);
    req.op = Some(op.to_string());
    req
}

fn assert_trace_hex(resp: &Response) -> u64 {
    let hex = resp.trace.as_deref().unwrap_or_else(|| panic!("{} has no trace id", resp.id));
    assert_eq!(hex.len(), 16, "trace id must be 16 hex digits: {hex:?}");
    let id = u64::from_str_radix(hex, 16)
        .unwrap_or_else(|_| panic!("trace id must be hex: {hex:?}"));
    assert_ne!(id, 0, "trace id 0 is reserved for untraced");
    id
}

/// One span as parsed back out of the Chrome trace's `args`.
struct TraceSpan {
    name: String,
    trace: u64,
    span: u64,
    parent: u64,
}

fn load_chrome_spans(path: &std::path::Path) -> Vec<TraceSpan> {
    let doc: Value =
        serde_json::from_str(&std::fs::read_to_string(path).expect("trace file written"))
            .expect("trace parses");
    let events = doc.field("traceEvents").and_then(Value::as_array).expect("traceEvents");
    let mut spans = Vec::new();
    for ev in events {
        let Some(Value::String(ph)) = ev.field("ph") else { continue };
        if ph.as_str() != "X" {
            continue;
        }
        let args = ev.field("args").expect("span args");
        let num = |obj: &Value, key: &str| -> u64 {
            match obj.field(key) {
                Some(Value::Number(n)) => n.as_u64().expect("id fits u64"),
                other => panic!("span {key} missing or non-numeric: {other:?}"),
            }
        };
        let Some(Value::String(name)) = ev.field("name") else { panic!("span name") };
        spans.push(TraceSpan {
            name: name.clone(),
            trace: num(args, "trace"),
            span: num(args, "span"),
            parent: num(args, "parent"),
        });
    }
    spans
}

/// Assert the spans of `trace_id` form one connected tree whose root is
/// the `request` span (parent 0), with at least a `queue` span and one
/// engine span beneath it.
fn assert_connected_request_tree(spans: &[TraceSpan], trace_id: u64) {
    let mine: Vec<&TraceSpan> = spans.iter().filter(|s| s.trace == trace_id).collect();
    assert!(
        mine.len() >= 3,
        "expected at least request+queue+engine spans for trace {trace_id:x}, got {}",
        mine.len()
    );
    let roots: Vec<&&TraceSpan> = mine.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "trace {trace_id:x} must have exactly one root");
    assert_eq!(roots[0].name, "request", "the root span is the synthetic request span");
    let ids: BTreeSet<u64> = mine.iter().map(|s| s.span).collect();
    assert_eq!(ids.len(), mine.len(), "span ids must be unique within a trace");
    for s in &mine {
        assert!(
            s.parent == 0 || ids.contains(&s.parent),
            "span {} ({}) of trace {trace_id:x} is orphaned (parent {})",
            s.span,
            s.name,
            s.parent
        );
    }
    let names: Vec<&str> = mine.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"queue"), "queue span missing: {names:?}");
}

#[test]
fn observability_end_to_end() {
    // -- environment: isolated results dir, tiny budgets, 2 workers ------
    let results = std::env::temp_dir().join(format!("mica-serve-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&results);
    std::fs::create_dir_all(&results).unwrap();
    std::env::set_var("MICA_RESULTS_DIR", &results);
    std::env::set_var("MICA_SCALE", "0.000000001");
    std::env::set_var("MICA_THREADS", "2");

    // The Chrome sink is installed programmatically (not via MICA_TRACE)
    // so this test controls its lifecycle regardless of prior obs init.
    let trace_path = results.join("trace.json");
    let sink = mica_obs::add_sink(Box::new(mica_obs::ChromeTraceSink::create(trace_path.clone())));

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        queue_cap: 8,
        watermark: 6,
        default_deadline_ms: 10_000,
        max_deadline_ms: 30_000,
        fuel_per_ms: 10_000_000,
        slice: 50_000,
        retry_ms: 5,
        slo_ms: 30_000,
        slo_target: 0.5,
    };
    let handle = spawn(cfg).expect("server boots");
    let addr = handle.addr().to_string();
    let mut conn = RawConn::open(&addr);

    // -- every outcome echoes a distinct trace id ------------------------
    let mut table = Request::new("t1", RequestKind::Table);
    table.name = Some("MiBench/sha/large".into());
    let resp_table = conn.roundtrip(&table);
    assert_eq!(resp_table.status, status::OK, "{resp_table:?}");
    let table_trace = assert_trace_hex(&resp_table);

    let mut asm = Request::new("a1", RequestKind::Asm);
    asm.asm = Some("li x7, 99\nloop:\naddi x7, x7, -1\nbne x7, x0, loop\nhalt".into());
    let resp_asm = conn.roundtrip(&asm);
    assert_eq!(resp_asm.status, status::OK, "{resp_asm:?}");
    let asm_trace = assert_trace_hex(&resp_asm);
    assert_ne!(table_trace, asm_trace, "each request gets its own trace");

    // A nameless table query is *answered* with `error` — it passes
    // admission, so it counts against the SLO denominator below.
    let resp_bad = conn.roundtrip(&Request::new("b1", RequestKind::Table));
    assert_eq!(resp_bad.status, status::ERROR, "table without a name: {resp_bad:?}");
    assert_trace_hex(&resp_bad);

    // -- the ops plane ---------------------------------------------------
    let health = conn.roundtrip(&ops_request("o1", "health"));
    assert_eq!(health.status, status::OK);
    assert_trace_hex(&health);
    assert!(health.ops.as_deref().unwrap_or("").contains("\"status\":\"ok\""), "{health:?}");

    let ready = conn.roundtrip(&ops_request("o2", "ready"));
    assert_eq!(ready.ops.as_deref(), Some("{\"ready\":true}"), "{ready:?}");

    let stats = conn.roundtrip(&ops_request("o3", "stats"));
    let stats_doc: Value =
        serde_json::from_str(stats.ops.as_deref().expect("stats payload")).expect("stats is JSON");
    assert_eq!(
        stats_doc.field("draining"),
        Some(&Value::Bool(false)),
        "not draining yet: {stats:?}"
    );
    assert!(stats_doc.field("slo_attainment_1m").is_some(), "{stats:?}");

    let metrics = conn.roundtrip(&ops_request("o4", "metrics"));
    let exposition = metrics.ops.as_deref().expect("metrics payload");
    for needle in
        ["serve_accepted_total", "serve_ok_1m", "serve_latency_us_p99", "serve_slo_attainment_1m"]
    {
        assert!(exposition.contains(needle), "metrics exposition lacks {needle}:\n{exposition}");
    }

    let unknown = conn.roundtrip(&ops_request("o5", "nonsense"));
    assert_eq!(unknown.status, status::ERROR, "{unknown:?}");

    // -- observation is pure: the traced, scraped answer equals the batch
    //    pipeline's own profile of the same kernel ------------------------
    let reference =
        mica_experiments::profile::load_or_profile_all(&results.join("profiles.json"), 1e-9)
            .expect("reference profiles")
            .set;
    let reference_vec = reference
        .records
        .iter()
        .find(|r| r.name == "MiBench/sha/large")
        .expect("reference record")
        .mica
        .values()
        .to_vec();
    let served_vec = &resp_table.result.as_ref().expect("table result").vector;
    assert_eq!(
        serde_json::to_string(served_vec).unwrap(),
        serde_json::to_string(&reference_vec).unwrap(),
        "serving under tracing + scrapes changed the answer bytes"
    );

    // -- drain: ready flips false while ops stays answerable -------------
    handle.shutdown();
    let ready = conn.roundtrip(&ops_request("o6", "ready"));
    assert_eq!(ready.ops.as_deref(), Some("{\"ready\":false}"), "mid-drain: {ready:?}");
    let rejected = conn.roundtrip(&Request::new("late", RequestKind::Table));
    assert_eq!(rejected.status, status::DRAINING, "{rejected:?}");
    assert_trace_hex(&rejected);
    drop(conn);

    let summary = handle.join().expect("clean drain");

    // -- SLO accounting: 3 data-plane answers (t1 ok, a1 ok, b1 error);
    //    ops scrapes and the `draining` refusal of `late` are excluded ---
    assert_eq!(summary.slo_total, 3, "{summary:?}");
    assert_eq!(summary.slo_good, 2, "{summary:?}");
    assert!((summary.slo_attainment - 2.0 / 3.0).abs() < 1e-12, "{summary:?}");
    let expected_burn = (1.0 - 2.0 / 3.0) / (1.0 - 0.5);
    assert!((summary.slo_burn_rate - expected_burn).abs() < 1e-12, "{summary:?}");
    assert_eq!(summary.slo_ms, 30_000);
    assert_eq!(summary.errors, 1);
    assert_eq!(summary.rejected_draining, 1);

    // -- the access log: one line per request line, schema-stable --------
    let access_text =
        std::fs::read_to_string(results.join("serve-access.jsonl")).expect("access log written");
    let entries: Vec<AccessEntry> = access_text
        .lines()
        .map(|l| serde_json::from_str(l).expect("access entry parses strictly"))
        .collect();
    assert_eq!(entries.len() as u64, summary.access_log_lines);
    let by_kind: BTreeMap<&str, usize> =
        entries.iter().fold(BTreeMap::new(), |mut m, e| {
            *m.entry(e.kind.as_str()).or_insert(0) += 1;
            m
        });
    assert_eq!(by_kind.get("ops"), Some(&6), "o1-o6 (unknown op included): {by_kind:?}");
    assert_eq!(by_kind.get("table"), Some(&3), "t1, b1, late: {by_kind:?}");
    assert_eq!(by_kind.get("asm"), Some(&1), "{by_kind:?}");
    let t1 = entries.iter().find(|e| e.id == "t1").expect("t1 logged");
    assert_eq!(t1.outcome, "ok");
    assert_eq!(t1.trace, resp_table.trace.as_deref().unwrap());
    assert!(t1.deadline_slack_ms > 0, "t1 finished well before its deadline: {t1:?}");
    let a1 = entries.iter().find(|e| e.id == "a1").expect("a1 logged");
    assert!(a1.fuel > 0, "a1 simulated fresh work: {a1:?}");

    // -- the tentpole: one request = one connected span tree -------------
    mica_obs::flush();
    mica_obs::remove_sink(sink);
    let spans = load_chrome_spans(&trace_path);
    assert_connected_request_tree(&spans, table_trace);
    assert_connected_request_tree(&spans, asm_trace);
    // The two requests' trees never share a span.
    let table_ids: BTreeSet<u64> =
        spans.iter().filter(|s| s.trace == table_trace).map(|s| s.span).collect();
    let asm_ids: BTreeSet<u64> =
        spans.iter().filter(|s| s.trace == asm_trace).map(|s| s.span).collect();
    assert!(table_ids.is_disjoint(&asm_ids), "cross-wired spans");

    std::fs::remove_dir_all(&results).ok();
}
